#!/usr/bin/env python3
"""Forensic investigation of a slow, camouflaged (timing) attack.

A patient sample encrypts one file per batch over many simulated days
while hiding behind ordinary user traffic.  The in-device window
detector never fires -- but the hardware-assisted log caught everything,
so the offloaded analysis identifies the attacker, bounds the attack
window, and backtracks the history of any victim page.

The device and the victim environment come from :mod:`repro.api`, the
stable public facade.

Run with::

    python examples/forensic_investigation.py
"""

from repro.api import RSSD, RSSDConfig, provision_environment
from repro.attacks.timing_attack import TimingAttack
from repro.sim import format_duration
from repro.workloads.replay import TraceReplayer
from repro.workloads.synthetic import ZipfianWorkload


def main() -> None:
    rssd = RSSD(config=RSSDConfig.small())
    env = provision_environment(rssd, victim_files=20, file_size_bytes=8_192)

    # Ordinary user activity runs alongside the attack.
    background = ZipfianWorkload(
        capacity_pages=rssd.capacity_pages // 4,
        iops=300,
        write_fraction=0.55,
        stream_id=env.user_stream,
        seed=42,
    )
    TraceReplayer(rssd, honor_timestamps=False).replay(background.generate(1.0))

    print("launching the timing attack (one file per batch, 12h apart)...")
    outcome = TimingAttack(files_per_batch=1).execute(env)
    print(f"attack ran for {format_duration(outcome.duration_us)} of simulated time, "
          f"encrypting {outcome.pages_encrypted} pages")

    local = rssd.local_detector.report()
    print(f"\nin-device window detector fired: {local.detected} "
          f"(the attack paced itself below its radar)")

    rssd.drain_offload_queue()
    remote = rssd.detect()
    print(f"offloaded full-history detector fired: {remote.detected}, "
          f"suspected streams: {remote.suspected_streams} "
          f"(attacker stream is {env.attacker_stream})")

    print("\nbuilding the trusted evidence chain...")
    report = rssd.investigate()
    print(f"  log entries          : {report.total_entries}")
    print(f"  sealed segments      : {report.sealed_segments} "
          f"({report.offloaded_segments} already on the remote tier)")
    print(f"  chain verified       : {report.chain_verified}")
    print(f"  reconstruction time  : {report.reconstruction_seconds:.3f}s (simulated)")
    if report.attack_window_us:
        start, end = report.attack_window_us
        print(f"  attack window        : {format_duration(end - start)} "
              f"starting at t={format_duration(start)}")

    profile = report.stream_profiles[env.attacker_stream]
    print(f"  attacker profile     : {profile.writes} writes, "
          f"{profile.high_entropy_fraction:.0%} encrypted-looking, "
          f"{profile.read_then_overwrite} read-then-overwrite chains, "
          f"{profile.trims} trims")

    # Backtrack one victim page end to end.
    victim_file = outcome.victim_files[0]
    victim_lba = outcome.original_extents[victim_file][0]
    history = rssd.analyzer().backtrack_lba(victim_lba)
    print(f"\nper-page history of LBA {victim_lba} ({victim_file}):")
    for entry in history[-6:]:
        print(f"  t={entry.timestamp_us:>14}us  {entry.op_type.value:<6} "
              f"stream={entry.stream_id}  entropy={entry.entropy:.2f}")

    analyzer = rssd.analyzer()
    clean_ts = analyzer.last_clean_timestamp(victim_lba, report.suspected_streams)
    recovery = rssd.recover_to(clean_ts, lbas=outcome.original_extents[victim_file])
    restored = env.fs.read_file(victim_file) if env.fs.exists(victim_file) else b""
    print(f"\nrolled {victim_file} back to its last clean version: "
          f"{recovery.pages_restored} pages restored, "
          f"content intact: {restored == outcome.original_contents[victim_file]}")


if __name__ == "__main__":
    main()
