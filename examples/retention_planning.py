#!/usr/bin/env python3
"""Retention planning: how long can each deployment retain stale data?

Reproduces the Figure-2 analysis interactively: for every traced volume
the script reports how long an unmodified SSD, an SSD with in-place
compression, and RSSD can retain every superseded page -- and then
explores how the answer changes with the NVMe-oE link speed and the
remote storage budget.

Run with::

    python examples/retention_planning.py
"""

from repro.api import format_table
from repro.analysis.retention import (
    RetentionScenario,
    figure2_rows,
    lookup_volume,
    retention_days_rssd,
    stale_gb_per_day,
)
from repro.workloads.fiu import figure2_volumes


def print_figure2(scenario: RetentionScenario) -> None:
    rows = figure2_rows(scenario=scenario)
    print(
        format_table(
            ["volume", "LocalSSD (d)", "+Compression (d)", "RSSD (d)", "RSSD advantage"],
            [
                [row.volume, row.local_days, row.local_compressed_days, row.rssd_days,
                 f"{row.rssd_advantage:.1f}x"]
                for row in rows
            ],
        )
    )
    over_200 = sum(1 for row in rows if row.rssd_days >= 200)
    print(f"\nvolumes where RSSD retains >= 200 days: {over_200}/{len(rows)}")


def main() -> None:
    base = RetentionScenario()
    print("== Figure 2: retention time per volume (1 TB drive, 1 GbE, 2 TB remote budget) ==\n")
    print_figure2(base)

    print("\n== sensitivity: remote budget ==")
    rows = []
    for budget_gb in (256, 512, 1024, 2048, 4096):
        scenario = RetentionScenario(remote_budget_gb=budget_gb, horizon_days=10_000)
        worst = min(retention_days_rssd(lookup_volume(v), scenario) for v in figure2_volumes())
        rows.append([f"{budget_gb} GB", round(worst, 1)])
    print(format_table(["remote budget", "worst-case RSSD retention (days)"], rows))

    print("\n== sensitivity: NVMe-oE link bandwidth ==")
    rows = []
    for gbps in (0.1, 1.0, 10.0):
        scenario = RetentionScenario(link_bandwidth_gbps=gbps)
        heaviest = lookup_volume("email")
        produced = stale_gb_per_day(heaviest, scenario) * heaviest.mean_compress_ratio
        headroom = scenario.link_capacity_gb_per_day / produced
        rows.append([f"{gbps} Gb/s", round(produced, 2), f"{headroom:,.0f}x"])
    print(
        format_table(
            ["link", "email stale GB/day (compressed)", "link headroom"],
            rows,
        )
    )
    print("\nEven a 100 Mb/s link has ample headroom over the heaviest volume's")
    print("stale-data production, which is why retention is bounded by the remote")
    print("budget rather than by the network.")


if __name__ == "__main__":
    main()
