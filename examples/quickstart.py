#!/usr/bin/env python3
"""Quickstart: build an RSSD, write data, lose it, get it back.

Everything imported here comes from :mod:`repro.api`, the stable public
facade.

Run with::

    python examples/quickstart.py
"""

from repro.api import RSSDConfig, build_rssd


def main() -> None:
    # An RSSD with a small simulated flash array, an embedded NIC on a
    # 1 GbE NVMe-oE link, and a tiered remote (storage server + cloud).
    rssd = build_rssd(RSSDConfig.small())

    print("== write some user data ==")
    rssd.write(lba=0, data=b"family-photos.tar: irreplaceable bytes")
    rssd.write(lba=1, data=b"thesis-draft.docx: three years of work")
    for lba in range(2, 12):
        rssd.write(lba=lba, data=b"spreadsheet row data, quite compressible " * 90)
    print("lba 0:", rssd.read(0)[:38])
    print("lba 1:", rssd.read(1)[:38])

    # Remember the clean point in (simulated) time.
    clean_point_us = rssd.clock.now_us
    rssd.clock.advance(1_000)

    print("\n== ransomware strikes: read, encrypt, overwrite, trim ==")
    from repro.crypto.cipher import StreamCipher

    cipher = StreamCipher.from_passphrase("pay 1.5 BTC")
    for lba in range(12):
        if lba == 1:
            continue
        plaintext = rssd.read(lba)
        rssd.write(lba=lba, data=cipher.encrypt(plaintext, nonce=lba), stream_id=13)
    rssd.trim(lba=1, npages=1, stream_id=13)  # physically erase the original
    print("lba 0 now:", rssd.read(0)[:12], "...")
    print("lba 1 now:", rssd.read(1)[:12], "(trimmed reads as zeroes)")

    print("\n== but nothing was actually lost ==")
    print("retained locally:", rssd.retained_pages_local,
          "| offloaded remotely:", rssd.retained_pages_remote,
          "| data loss pages:", rssd.data_loss_pages)

    report = rssd.recover_to(clean_point_us)
    print(f"recovery restored {report.pages_restored} pages "
          f"({report.pages_restored_remote} fetched over NVMe-oE), "
          f"unrecoverable: {report.pages_unrecoverable}")
    print("lba 0:", rssd.read(0)[:38])
    print("lba 1:", rssd.read(1)[:38])

    print("\n== and the whole incident is on the record ==")
    investigation = rssd.investigate()
    print("evidence chain verified:", investigation.chain_verified,
          "| logged operations:", investigation.total_entries,
          "| suspected streams:", investigation.suspected_streams)

    print("\ndevice summary:", rssd.summary())


if __name__ == "__main__":
    main()
