#!/usr/bin/env python3
"""The scenario facade end to end: spec -> session -> events -> forensics.

Declares a scenario as a :class:`repro.api.ScenarioSpec`, round-trips it
through JSON (the form you would ship to a fleet), executes it through a
:class:`repro.api.Session` while watching the typed event bus, and then
interrogates the session's lazily-built views.  This is the programmatic
equivalent of ``python -m repro run --spec scenario.json``.

Run with::

    python examples/scenario_session.py
"""

import json

from repro.api import (
    DetectionEvent,
    GCEvent,
    HostOpEvent,
    OffloadEvent,
    RetentionEvictEvent,
    ScenarioSpec,
    Session,
    record_events,
)


def main() -> None:
    # -- declare the scenario ------------------------------------------------
    spec = ScenarioSpec(
        defense="RSSD",
        attack="trimming-attack",
        workload="office-edit",
        device="tiny",
        victim_files=12,
        user_activity_hours=6.0,
        seed=71,
    )
    print("scenario :", spec.scenario_key)
    print("spec hash:", spec.spec_hash())

    # The JSON form is self-contained (seeds resolved) and rebuilds
    # bit-identically -- this is what gets shipped to workers and fleets.
    shipped = ScenarioSpec.from_json(spec.to_json())
    assert shipped.spec_hash() == spec.spec_hash()
    print("spec JSON round-trips bit-identically; fields:",
          ", ".join(sorted(json.loads(spec.to_json()))))

    # -- execute it, watching the event bus ----------------------------------
    session = Session(spec)
    events, _ = record_events(
        session.bus, HostOpEvent, GCEvent, OffloadEvent, RetentionEvictEvent,
        DetectionEvent,
    )
    result = session.run()

    print("\n== outcome ==")
    print(f"recovery fraction : {result.recovery_fraction:.3f} "
          f"({'DEFENDED' if result.defended else 'COMPROMISED'})")
    print(f"detected          : {result.detected} "
          f"(latency {result.detection_latency_us}us)")
    print(f"forensic pattern  : {result.forensic_pattern} "
          f"(exact recovery: {result.recovery_exact})")

    print("\n== event bus ==")
    for name, count in sorted(session.bus.published_counts.items()):
        print(f"{name:<20} {count:>6}")
    offloads = [e for e in events if isinstance(e, OffloadEvent)]
    print(f"NVMe-oE capsules shipped: {len(offloads)} "
          f"({sum(e.wire_bytes for e in offloads):,} wire bytes)")

    print("\n== lazily-built views ==")
    metrics = session.metrics()
    print(f"host commands     : {metrics.host_commands} "
          f"(WA {metrics.write_amplification:.2f})")
    detection = session.detection()
    print(f"detectors         : "
          + ", ".join(f"{e.detector}={'fired' if e.detected else 'quiet'}"
                      for e in detection.events))
    forensics = session.forensics()
    status = forensics.verify_chain()
    print(f"evidence chain    : verified={status.chain_verified}, "
          f"{status.total_entries} entries, "
          f"remote order ok={status.remote_time_order_ok}")


if __name__ == "__main__":
    main()
