#!/usr/bin/env python3
"""Ransomware recovery scenario: a file server attacked by two samples.

A victim file system is populated with documents, attacked first by a
WannaCry-like in-place encryptor and then by a trim-eraser sample, and
finally recovered from RSSD's retained history -- byte for byte.

The device and the victim environment come from :mod:`repro.api`, the
stable public facade; the attack-sample profiles are the attack layer's
own surface.

Run with::

    python examples/ransomware_recovery.py

Set ``REPRO_SMOKE=1`` to run a single small scenario (the CI examples
smoke job uses this).
"""

import os

from repro.api import RSSD, RSSDConfig, provision_environment
from repro.attacks.samples import ATTACK_PROFILES, make_attack


def attack_and_recover(family: str, victim_files: int = 30) -> None:
    print(f"\n=== sample: {family} ===")
    profile = ATTACK_PROFILES[family]
    print("behaviour:", profile.description)

    rssd = RSSD(config=RSSDConfig.small())
    env = provision_environment(rssd, victim_files=victim_files, file_size_bytes=16_384)
    print(f"victim file system: {env.fs.file_count} files, "
          f"{env.fs.used_pages} pages in use")

    attack = make_attack(profile)
    outcome = attack.execute(env)
    print(f"attack encrypted {outcome.pages_encrypted} pages, "
          f"trimmed {outcome.pages_trimmed}, wrote {outcome.junk_pages_written} junk pages, "
          f"ransom notes: {outcome.ransom_note_files}")

    encrypted_now = sum(
        1
        for name in outcome.victim_files
        if env.fs.exists(name) and env.fs.read_file(name) != outcome.original_contents[name]
    )
    missing_now = sum(1 for name in outcome.victim_files if not env.fs.exists(name))
    print(f"damage as seen by the host: {encrypted_now} files encrypted, "
          f"{missing_now} files deleted")

    # Detection (offloaded, over the full operation log).
    detection = rssd.detect()
    print(f"offloaded detection: detected={detection.detected} "
          f"suspected streams={detection.suspected_streams}")

    # Recovery: roll back everything the malicious streams touched.
    report = rssd.recovery_engine().undo_attack(outcome.start_us, outcome.malicious_streams)
    print(f"recovery: {report.pages_restored} pages restored "
          f"({report.pages_restored_remote} from the remote tier), "
          f"{report.pages_unrecoverable} unrecoverable, "
          f"{report.duration_seconds:.3f}s of simulated device time")

    # Verify every file byte-for-byte (rebuilding deleted namespace entries
    # from the recovered extents).
    intact = 0
    for name, original in outcome.original_contents.items():
        if env.fs.exists(name):
            data = env.fs.read_file(name)
        else:
            extent = outcome.original_extents[name]
            data = b"".join(rssd.read(lba) for lba in extent)[: len(original)]
        intact += data == original
    print(f"verified: {intact}/{len(outcome.original_contents)} files identical to pre-attack state")
    print(f"retention invariant: data_loss_pages={rssd.data_loss_pages}")


def main() -> None:
    if os.environ.get("REPRO_SMOKE"):
        attack_and_recover("wannacry-like", victim_files=8)
        return
    for family in ("wannacry-like", "trim-eraser", "capacity-flooder"):
        attack_and_recover(family)


if __name__ == "__main__":
    main()
