"""Coverage accounting over the scenario space.

The fuzzer explores a combinatorially large :class:`~repro.api.spec.ScenarioSpec`
space; nobody can track which exact specs ran, but everyone wants to
know *which kinds* of scenario have been exercised.  This module bins
every executed ``spec_hash`` into a **region lattice** -- the coarse
product of defense x attack family x workload family x device x
ablation state x victim-scale -- and persists the mapping as a
versioned JSON **coverage ledger** that merges across runs.

Regions are deliberately coarser than specs: two specs that differ only
in seed or file size land in the same region, so coverage answers "has
any RSSD / classic-family / trace-workload / tiny scenario ever run?"
rather than "has this exact spec run?".  The ledger is a plain union of
per-region spec-hash sets, which makes merging associative, commutative
and idempotent -- two partial fuzz sessions merge to exactly the ledger
one full session would have written (pinned by test).

The fuzzer consumes a ledger snapshot to steer new draws toward
uncovered regions (:meth:`~repro.scenarios.fuzzer.SpecFuzzer.generate`
with ``toward_uncovered=True``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.api.spec import ScenarioSpec

#: Bump when the ledger schema changes; readers refuse newer versions.
LEDGER_VERSION = 1

#: Separator between the region key's dimensions.
REGION_SEPARATOR = "|"

#: Evasion-strength suffixes collapsed into their base attack family.
_STRENGTH_SUFFIXES: Tuple[str, ...] = ("-strong", "-sparse")


def attack_family(attack: str) -> str:
    """The coarse family of an attack registry name.

    Evasion-strength variants (``-strong`` / ``-sparse``) collapse into
    their base attack, and the classic destruction modes
    (``classic-delete`` / ``classic-trim``) collapse into ``classic`` --
    the region lattice tracks *families*, not every variant.
    """
    base = attack
    for suffix in _STRENGTH_SUFFIXES:
        if base.endswith(suffix):
            base = base[: -len(suffix)]
    if base.startswith("classic"):
        return "classic"
    return base


def workload_family(workload: str) -> str:
    """The coarse family of a workload registry name.

    Every ``trace-<volume>`` replay workload maps to the single
    ``trace`` family; the synthetic activities keep their own names.
    """
    if workload.startswith("trace-"):
        return "trace"
    return workload


def scale_bin(victim_files: int) -> str:
    """Bin the victim-file count into a coarse scale label."""
    if victim_files <= 8:
        return "files-small"
    if victim_files <= 32:
        return "files-medium"
    return "files-large"


def ablation_bin(ablation: Sequence[str]) -> str:
    """Bin the ablation tuple: the full design vs any ablated variant."""
    return "ablated" if ablation else "full"


def region_of(spec: "ScenarioSpec") -> str:
    """The region-lattice key one spec falls into.

    The key is the ``|``-joined product of defense, attack family,
    workload family, device, ablation state and victim-scale bin --
    coarse enough that coverage is meaningful, fine enough that "we
    never ran an ablated RSSD under a trace workload" is visible.
    """
    return REGION_SEPARATOR.join(
        (
            spec.defense,
            attack_family(spec.attack),
            workload_family(spec.workload),
            spec.device,
            ablation_bin(spec.ablation),
            scale_bin(spec.victim_files),
        )
    )


@dataclass
class CoverageLedger:
    """Executed spec hashes, grouped by scenario region.

    ``regions`` maps each region key to the sorted, de-duplicated list
    of ``spec_hash`` values executed in it.  All mutation goes through
    :meth:`record_hash` / :meth:`merge`, which preserve that canonical
    form, so serialization is execution-order independent and merging
    is a plain set union (associative, commutative, idempotent).
    """

    regions: Dict[str, List[str]] = field(default_factory=dict)
    version: int = LEDGER_VERSION

    def __post_init__(self) -> None:
        """Canonicalize: sorted unique hashes under every region key."""
        self.regions = {
            region: sorted(set(hashes)) for region, hashes in self.regions.items()
        }

    # -- recording ---------------------------------------------------------

    def record(self, spec: "ScenarioSpec") -> str:
        """Record one executed spec; returns the region it landed in."""
        region = region_of(spec)
        self.record_hash(region, spec.spec_hash())
        return region

    def record_hash(self, region: str, spec_hash: str) -> None:
        """Record one executed ``spec_hash`` under ``region``."""
        hashes = self.regions.setdefault(region, [])
        if spec_hash not in hashes:
            hashes.append(spec_hash)
            hashes.sort()

    def merge(self, other: "CoverageLedger") -> "CoverageLedger":
        """Union ``other`` into this ledger in place; returns ``self``.

        Merging is idempotent and order independent: any interleaving
        of partial ledgers converges to the same canonical form as one
        ledger that saw every execution directly.
        """
        for region, hashes in other.regions.items():
            for spec_hash in hashes:
                self.record_hash(region, spec_hash)
        return self

    # -- queries -----------------------------------------------------------

    @property
    def covered_regions(self) -> List[str]:
        """Region keys with at least one executed spec, sorted."""
        return sorted(region for region, hashes in self.regions.items() if hashes)

    @property
    def total_specs(self) -> int:
        """Distinct executed spec hashes across every region."""
        seen = set()
        for hashes in self.regions.values():
            seen.update(hashes)
        return len(seen)

    def uncovered(self, universe: Iterable[str]) -> List[str]:
        """Regions of ``universe`` with no executed spec, sorted."""
        covered = set(self.covered_regions)
        return sorted(set(universe) - covered)

    def coverage_fraction(self, universe: Iterable[str]) -> float:
        """Fraction of ``universe`` regions with at least one spec."""
        regions = set(universe)
        if not regions:
            return 0.0
        return len(regions & set(self.covered_regions)) / len(regions)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: version plus the canonical region mapping."""
        return {
            "version": self.version,
            "regions": {
                region: list(hashes)
                for region, hashes in sorted(self.regions.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoverageLedger":
        """Rebuild a ledger, refusing versions newer than this reader."""
        version = int(data.get("version", -1))  # type: ignore[arg-type]
        if version > LEDGER_VERSION:
            raise ValueError(
                f"coverage ledger version {version} is newer than supported "
                f"version {LEDGER_VERSION}"
            )
        regions = data.get("regions", {})
        if not isinstance(regions, dict):
            raise ValueError(
                f"coverage ledger 'regions' must be an object, got {regions!r}"
            )
        return cls(
            regions={
                str(region): [str(h) for h in hashes]
                for region, hashes in regions.items()
            },
            version=version,
        )

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CoverageLedger":
        """Parse a ledger from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "CoverageLedger":
        """Read a ledger previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
