"""Deterministic, seeded fuzzer over the registry-validated spec space.

A :class:`SpecFuzzer` random-walks the
:class:`~repro.api.spec.ScenarioSpec` space described by a
:class:`FuzzConfig` -- defense x attack x workload x device plus the
geometry and ablation knobs.  Every generated spec is reproducible from
``(fuzz_seed, index)`` alone: the per-index rng is seeded through the
campaign's SHA-256 derivation
(:func:`repro.campaign.seeding.derive_seed`), so spec ``index`` of seed
``S`` is the same spec on every host, backend and Python version, and
is independent of every other index.

Invalid candidates are not special-cased away: the fuzzer constructs
real :class:`~repro.api.spec.ScenarioSpec` objects and relies on the
spec's own :class:`~repro.api.spec.SpecValidationError` / registry
``KeyError`` rejection machinery, redrawing (deterministically, inside
the same per-index rng) until a candidate validates.  This keeps the
fuzzer honest: whatever the spec constructor accepts is by definition a
runnable scenario.

With a :class:`~repro.scenarios.coverage.CoverageLedger` snapshot the
walk becomes coverage-guided: each index redraws a bounded number of
times preferring regions the ledger has not seen, falling back to the
last valid draw when the config's whole lattice is already covered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api.spec import ScenarioSpec, SpecValidationError
from repro.campaign import registries
from repro.campaign.seeding import derive_seed
from repro.scenarios.coverage import ablation_bin, attack_family, region_of
from repro.scenarios.coverage import scale_bin as _scale_bin
from repro.scenarios.coverage import workload_family

#: Salt for the per-index rng derivation (``derive_seed(seed, SALT, index)``).
FUZZ_SALT = "scenario-fuzz"

#: Bound on redraws per index -- both for invalid candidates and for
#: coverage-guided redraws -- so generation always terminates.
MAX_DRAW_ATTEMPTS = 64


def _default_defenses() -> Tuple[str, ...]:
    return tuple(sorted(registries.DEFENSES))


def _default_attacks() -> Tuple[str, ...]:
    return tuple(sorted(registries.ATTACKS))


def _default_workloads() -> Tuple[str, ...]:
    return tuple(sorted(registries.WORKLOADS))


def _default_devices() -> Tuple[str, ...]:
    return tuple(sorted(registries.DEVICE_CONFIGS))


@dataclass(frozen=True)
class FuzzConfig:
    """The slice of the spec space a fuzz session walks.

    Every dimension is a finite candidate pool; the defaults cover the
    full registries.  Candidate pools are *allowed to contain invalid
    values* (the fuzzer counts the rejections), but at least one valid
    combination must exist or generation fails after
    :data:`MAX_DRAW_ATTEMPTS` redraws.  Ablation draws only attach to
    specs whose defense exposes the RSSD component toggles.
    """

    defenses: Tuple[str, ...] = field(default_factory=_default_defenses)
    attacks: Tuple[str, ...] = field(default_factory=_default_attacks)
    workloads: Tuple[str, ...] = field(default_factory=_default_workloads)
    devices: Tuple[str, ...] = field(default_factory=_default_devices)
    victim_files_choices: Tuple[int, ...] = (4, 8, 16, 24, 48)
    file_size_choices: Tuple[int, ...] = (4096, 8192, 16384)
    hours_choices: Tuple[float, ...] = (0.5, 1.0, 2.0, 8.0)
    recent_edit_choices: Tuple[float, ...] = (0.1, 0.3, 0.5)
    #: Most features one ablated draw disables (0 disables ablation draws).
    ablation_max_features: int = 2
    #: Probability an RSSD draw carries an ablation at all.
    ablation_fraction: float = 0.25

    def __post_init__(self) -> None:
        """Coerce dimension pools to tuples and reject empty ones."""
        for name in (
            "defenses", "attacks", "workloads", "devices",
            "victim_files_choices", "file_size_choices",
            "hours_choices", "recent_edit_choices",
        ):
            object.__setattr__(self, name, tuple(getattr(self, name)))
            if not getattr(self, name):
                raise ValueError(f"FuzzConfig.{name} must not be empty")
        if self.ablation_max_features < 0:
            raise ValueError("ablation_max_features must be non-negative")
        if not 0.0 <= self.ablation_fraction <= 1.0:
            raise ValueError("ablation_fraction must be within [0, 1]")

    @classmethod
    def tiny(cls) -> "FuzzConfig":
        """The CI smoke slice: cheap scenarios, every region kind reachable.

        Three defenses, four attack families, the synthetic workloads
        plus one trace volume, the tiny device only -- small enough
        that a budgeted fuzz session finishes inside the smoke job,
        rich enough to exercise ablation, trace and no-attack regions.
        """
        return cls(
            defenses=("FlashGuard", "LocalSSD", "RSSD"),
            attacks=("classic", "gc-attack", "none", "trimming-attack"),
            workloads=("idle", "office-edit", "trace-hm"),
            devices=("tiny",),
            victim_files_choices=(4, 8),
            file_size_choices=(4096, 8192),
            hours_choices=(0.5, 1.0, 2.0),
            recent_edit_choices=(0.1, 0.3),
            ablation_max_features=1,
            ablation_fraction=0.25,
        )

    def universe(self) -> List[str]:
        """Every region key reachable from this config's pools, sorted.

        The product of the config's defenses, attack families, workload
        families, devices, reachable ablation bins and victim-scale
        bins -- the denominator for coverage fractions and the search
        target for ``toward_uncovered`` generation.  Invalid pool
        entries (unknown registry names, out-of-range sizes) are
        excluded: they can never produce an executed spec.
        """
        defenses = [d for d in self.defenses if d in registries.DEFENSES]
        families = sorted(
            {attack_family(a) for a in self.attacks if a in registries.ATTACKS}
        )
        workload_fams = sorted(
            {workload_family(w) for w in self.workloads if w in registries.WORKLOADS}
        )
        devices = [d for d in self.devices if d in registries.DEVICE_CONFIGS]
        ablation_bins = [ablation_bin(())]
        if self.ablation_max_features > 0 and self.ablation_fraction > 0 and (
            "RSSD" in defenses
        ):
            ablation_bins.append(ablation_bin(("x",)))
        scale_bins = sorted(
            {_scale_bin(n) for n in self.victim_files_choices
             if isinstance(n, int) and not isinstance(n, bool) and n >= 1}
        )
        regions = []
        for defense in defenses:
            for family in families:
                for workload_fam in workload_fams:
                    for device in devices:
                        for abl in ablation_bins:
                            if abl == "ablated" and defense != "RSSD":
                                continue
                            for scale in scale_bins:
                                regions.append(
                                    "|".join(
                                        (defense, family, workload_fam,
                                         device, abl, scale)
                                    )
                                )
        return sorted(regions)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of every pool and knob (stable field order)."""
        out: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            out[spec_field.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzConfig":
        """Rebuild a config from its :meth:`to_dict` form."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown FuzzConfig fields: {unknown}")
        payload = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in data.items()
        }
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class FuzzStats:
    """Counting accountant for one generation pass (deterministic)."""

    #: Specs returned to the caller.
    generated: int = 0
    #: Candidates rejected by spec validation (redrawn).
    rejected: int = 0
    #: Valid candidates redrawn because their region was already covered.
    guided_redraws: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready view for artifacts and reports."""
        return {
            "generated": self.generated,
            "rejected": self.rejected,
            "guided_redraws": self.guided_redraws,
        }


class SpecFuzzer:
    """A seeded random walk over a :class:`FuzzConfig`'s spec space.

    ``spec_at(index)`` is a pure function of ``(seed, config, index)``
    (plus the optional covered-region snapshot): the walk can be
    evaluated sparsely, in any order, on any host, and always agrees.
    ``stats`` accumulates rejection accounting across calls.
    """

    def __init__(self, seed: int, config: Optional[FuzzConfig] = None) -> None:
        """Create a fuzzer walking ``config`` (default: full registries)."""
        self.seed = seed
        self.config = config if config is not None else FuzzConfig()
        self.stats = FuzzStats()

    # -- drawing -----------------------------------------------------------

    def _draw(self, rng: random.Random) -> Dict[str, object]:
        """One candidate field set (fixed draw order for determinism)."""
        config = self.config
        candidate: Dict[str, object] = {
            "defense": rng.choice(config.defenses),
            "attack": rng.choice(config.attacks),
            "workload": rng.choice(config.workloads),
            "device": rng.choice(config.devices),
            "victim_files": rng.choice(config.victim_files_choices),
            "file_size_bytes": rng.choice(config.file_size_choices),
            "user_activity_hours": rng.choice(config.hours_choices),
            "recent_edit_fraction": rng.choice(config.recent_edit_choices),
            "seed": rng.randrange(1 << 31),
        }
        if (
            candidate["defense"] == "RSSD"
            and config.ablation_max_features > 0
            and rng.random() < config.ablation_fraction
        ):
            from repro.ablation.registry import FEATURES

            count = rng.randint(
                1, min(config.ablation_max_features, len(FEATURES))
            )
            candidate["ablation"] = tuple(rng.sample(sorted(FEATURES), count))
        return candidate

    def spec_at(
        self, index: int, covered: Optional[Set[str]] = None
    ) -> ScenarioSpec:
        """The spec at one walk index, reproducible from ``(seed, index)``.

        Draws candidates from a ``random.Random`` seeded by
        ``derive_seed(seed, FUZZ_SALT, index)`` until one validates;
        with a ``covered`` region snapshot, keeps redrawing (within
        :data:`MAX_DRAW_ATTEMPTS`) for an *uncovered* region, falling
        back to the last valid draw.  Raises ``RuntimeError`` when the
        config cannot produce a valid spec within the attempt bound.
        """
        rng = random.Random(derive_seed(self.seed, FUZZ_SALT, index))
        fallback: Optional[ScenarioSpec] = None
        for _ in range(MAX_DRAW_ATTEMPTS):
            candidate = self._draw(rng)
            try:
                spec = ScenarioSpec(**candidate)  # type: ignore[arg-type]
            except (SpecValidationError, KeyError, TypeError, ValueError):
                self.stats.rejected += 1
                continue
            if covered is None or region_of(spec) not in covered:
                self.stats.generated += 1
                return spec
            self.stats.guided_redraws += 1
            fallback = spec
        if fallback is None:
            raise RuntimeError(
                f"no valid ScenarioSpec within {MAX_DRAW_ATTEMPTS} draws at "
                f"index {index}; every candidate in the FuzzConfig pools was "
                "rejected by spec validation"
            )
        self.stats.generated += 1
        return fallback

    def generate(
        self,
        budget: int,
        covered: Optional[Sequence[str]] = None,
        toward_uncovered: bool = False,
    ) -> List[ScenarioSpec]:
        """The first ``budget`` specs of the walk, in index order.

        With ``toward_uncovered=True`` the walk is steered by the
        ``covered`` region snapshot *plus* the regions generated earlier
        in this same call, so a single session spreads across the
        lattice instead of revisiting its own regions.  Without it,
        ``covered`` is ignored and the walk depends only on
        ``(seed, index)``.
        """
        covered_set: Optional[Set[str]] = None
        if toward_uncovered:
            covered_set = set(covered or ())
        specs: List[ScenarioSpec] = []
        for index in range(budget):
            spec = self.spec_at(index, covered=covered_set)
            specs.append(spec)
            if covered_set is not None:
                covered_set.add(region_of(spec))
        return specs
