"""The fuzz-session runner and its versioned JSON artifact.

A fuzz session is an ordinary sweep wearing a generated grid: the
:class:`~repro.scenarios.fuzzer.SpecFuzzer` expands ``(fuzz_seed,
budget)`` into a deterministic spec sequence, and every spec executes
through the campaign :class:`~repro.campaign.runner.ExperimentRunner`
with the full persistence layer riding along -- the content-addressed
:class:`~repro.campaign.cache.ResultCache` serves repeated specs, the
:class:`~repro.campaign.checkpoint.CheckpointJournal` makes interrupted
sessions resumable, and the artifact is canonical JSON, bit-identical
across the sequential, thread and process backends.

The artifact's ``spec_hashes`` list is the determinism pin: it records
the walk in index order (duplicates included), so two runs with the
same ``(fuzz_seed, budget, config)`` can be compared byte-for-byte.
Executed cells are stored once per distinct spec, sorted by hash, and
the session's own :class:`~repro.scenarios.coverage.CoverageLedger` is
embedded for merging into a persistent ledger.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.scenarios.coverage import CoverageLedger, region_of
from repro.scenarios.fuzzer import FuzzConfig, SpecFuzzer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.spec import ScenarioSpec
    from repro.campaign.cache import CacheStats, ResultCache
    from repro.campaign.checkpoint import CheckpointJournal

#: Bump when the fuzz artifact schema changes; readers refuse newer.
FUZZ_ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class FuzzCellResult:
    """Scored outcome of one distinct fuzzed spec.

    Deliberately index-free: the same spec drawn at two walk indices is
    one cell (the artifact's ``spec_hashes`` list keeps the per-index
    record), which is what lets the content-addressed cache serve
    repeats without lying about where they came from.
    """

    #: SHA-256 of the spec's canonical JSON -- the cell's identity.
    spec_hash: str
    scenario_key: str
    #: The coverage-lattice region the spec falls in.
    region: str
    #: The full generated spec (its ``to_dict`` form).
    spec: Dict[str, object]
    # -- recovery ---------------------------------------------------------
    recovery_fraction: float
    pages_recovered: int
    defended: bool
    # -- detection --------------------------------------------------------
    detected: bool
    detection_latency_us: Optional[int]
    # -- I/O overhead -----------------------------------------------------
    write_amplification: float
    host_commands: int
    # -- provenance -------------------------------------------------------
    #: Hex head of the device's oplog hash chain; pins the exact command
    #: stream, which is how backend determinism is asserted.
    oplog_hash: Optional[str]
    #: ``"ok"``, or ``"capacity-exhausted"`` when the drawn scenario's
    #: sustained ingest ran the device out of flash mid-workload -- a
    #: modeled outcome of retention-pinning defenses on small
    #: geometries, recorded instead of aborting the walk.
    status: str = "ok"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the cell (field names preserved verbatim)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCellResult":
        """Rebuild a cell from its :meth:`to_dict` form."""
        return cls(**data)  # type: ignore[arg-type]


def _fuzz_cell_key(spec: "ScenarioSpec") -> str:
    """The journal/cache key of one fuzz cell: the spec's own hash.

    Scenario keys collide across fuzzed specs (two draws can share
    defense/attack/workload/device but differ in geometry), so the
    canonical spec hash is the only safe identity.
    """
    return spec.spec_hash()


def run_fuzz_cell(spec: "ScenarioSpec") -> FuzzCellResult:
    """Execute one fuzzed spec and reduce it to a picklable record.

    Module-level (and taking only a picklable
    :class:`~repro.api.spec.ScenarioSpec`) so the process backend can
    ship it to workers.
    """
    from repro.api import Session
    from repro.ssd.errors import CapacityExhaustedError

    try:
        result = Session(spec).run()
    except CapacityExhaustedError:
        # Deterministic, modeled behavior (retention pinning on a small
        # geometry under sustained ingest), not an execution fault: the
        # fuzzer's job is to record what the drawn scenario does.
        return FuzzCellResult(
            spec_hash=spec.spec_hash(),
            scenario_key=spec.scenario_key,
            region=region_of(spec),
            spec=spec.to_dict(),
            recovery_fraction=0.0,
            pages_recovered=0,
            defended=False,
            detected=False,
            detection_latency_us=None,
            write_amplification=0.0,
            host_commands=0,
            oplog_hash=None,
            status="capacity-exhausted",
        )
    return FuzzCellResult(
        spec_hash=spec.spec_hash(),
        scenario_key=spec.scenario_key,
        region=region_of(spec),
        spec=spec.to_dict(),
        recovery_fraction=result.recovery_fraction,
        pages_recovered=result.pages_recovered,
        defended=result.defended,
        detected=result.detected,
        detection_latency_us=result.detection_latency_us,
        write_amplification=result.write_amplification,
        host_commands=result.host_commands,
        oplog_hash=result.oplog_hash,
        status="ok",
    )


@dataclass
class FuzzArtifact:
    """A completed fuzz session: the walk, its cells and its coverage."""

    fuzz_seed: int
    budget: int
    toward_uncovered: bool
    #: The :meth:`FuzzConfig.to_dict` form of the space walked.
    config: Dict[str, object] = field(default_factory=dict)
    #: Spec hashes in walk-index order, duplicates included -- the
    #: determinism pin for the whole session.
    spec_hashes: List[str] = field(default_factory=list)
    #: The fuzzer's rejection accounting for this session.
    stats: Dict[str, int] = field(default_factory=dict)
    #: One result per distinct spec, sorted by spec hash.
    cells: List[FuzzCellResult] = field(default_factory=list)
    #: This session's coverage ledger (its ``to_dict`` form).
    coverage: Dict[str, object] = field(default_factory=dict)
    version: int = FUZZ_ARTIFACT_VERSION
    #: Cache accounting for the run that built this artifact; in-memory
    #: provenance only, excluded from serialization and comparison so
    #: warm-cache runs stay bit-identical to cold ones.
    cache_stats: Optional["CacheStats"] = field(
        default=None, compare=False, repr=False
    )
    #: Cells served from a resumed checkpoint journal (provenance only,
    #: excluded from serialization and comparison like ``cache_stats``).
    cells_resumed: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        """Sort cells by hash so serialization is execution-order independent."""
        self.cells = sorted(self.cells, key=lambda cell: cell.spec_hash)

    def cell(self, spec_hash: str) -> FuzzCellResult:
        """The result for one spec hash (raises ``KeyError`` if absent)."""
        for result in self.cells:
            if result.spec_hash == spec_hash:
                return result
        raise KeyError(f"no cell with spec hash {spec_hash!r} in this artifact")

    @property
    def ledger(self) -> CoverageLedger:
        """This session's coverage as a live :class:`CoverageLedger`."""
        return CoverageLedger.from_dict(self.coverage)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: version, walk parameters, cells, coverage."""
        return {
            "version": self.version,
            "fuzz_seed": self.fuzz_seed,
            "budget": self.budget,
            "toward_uncovered": self.toward_uncovered,
            "config": self.config,
            "spec_hashes": list(self.spec_hashes),
            "stats": dict(self.stats),
            "cells": [result.to_dict() for result in self.cells],
            "coverage": self.coverage,
        }

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzArtifact":
        """Rebuild an artifact, refusing versions newer than this reader."""
        version = int(data.get("version", -1))  # type: ignore[arg-type]
        if version > FUZZ_ARTIFACT_VERSION:
            raise ValueError(
                f"fuzz artifact version {version} is newer than supported "
                f"version {FUZZ_ARTIFACT_VERSION}"
            )
        return cls(
            fuzz_seed=int(data.get("fuzz_seed", 0)),  # type: ignore[arg-type]
            budget=int(data.get("budget", 0)),  # type: ignore[arg-type]
            toward_uncovered=bool(data.get("toward_uncovered", False)),
            config=dict(data.get("config", {})),  # type: ignore[arg-type]
            spec_hashes=list(data.get("spec_hashes", [])),  # type: ignore[arg-type]
            stats=dict(data.get("stats", {})),  # type: ignore[arg-type]
            cells=[
                FuzzCellResult.from_dict(cell)  # type: ignore[arg-type]
                for cell in data.get("cells", [])  # type: ignore[union-attr]
            ],
            coverage=dict(data.get("coverage", {})),  # type: ignore[arg-type]
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "FuzzArtifact":
        """Parse an artifact from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FuzzArtifact":
        """Read an artifact previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def diff(self, baseline: "FuzzArtifact") -> List[str]:
        """Human-readable differences against ``baseline`` (empty if equal)."""
        differences: List[str] = []
        if self.spec_hashes != baseline.spec_hashes:
            differences.append(
                f"spec_hashes diverge: {len(baseline.spec_hashes)} baseline vs "
                f"{len(self.spec_hashes)} here"
            )
        ours = {cell.spec_hash: cell for cell in self.cells}
        theirs = {cell.spec_hash: cell for cell in baseline.cells}
        for key in sorted(set(theirs) - set(ours)):
            differences.append(f"missing cell: {key}")
        for key in sorted(set(ours) - set(theirs)):
            differences.append(f"extra cell: {key}")
        for key in sorted(set(ours) & set(theirs)):
            mine, other = ours[key].to_dict(), theirs[key].to_dict()
            for fname in sorted(mine):
                if mine[fname] != other[fname]:
                    differences.append(
                        f"{key}: {fname} {other[fname]!r} -> {mine[fname]!r}"
                    )
        if self.coverage != baseline.coverage:
            differences.append("coverage ledgers differ")
        return differences


def run_fuzz(
    seed: int,
    budget: int,
    config: Optional[FuzzConfig] = None,
    *,
    backend: str = "sequential",
    jobs: int = 0,
    ledger: Optional[CoverageLedger] = None,
    toward_uncovered: bool = False,
    cache: Optional["ResultCache"] = None,
    journal: Optional["CheckpointJournal"] = None,
    resume: bool = False,
    after_cell: Optional[Callable] = None,
) -> FuzzArtifact:
    """Run one budgeted fuzz session and collect its artifact.

    The spec sequence is generated up front, sequentially, before any
    backend is involved -- the walk depends only on ``(seed, config,
    budget)`` plus (under ``toward_uncovered``) the covered-region
    snapshot of ``ledger``, never on execution order.  Distinct specs
    then execute through :func:`~repro.campaign.cache.map_with_cache`
    exactly like campaign cells: cache hits are served, journalled
    cells survive crashes, and ``resume=True`` re-runs only what the
    journal is missing.  The returned artifact embeds this session's
    own coverage; the caller merges it into a persistent ledger
    (:meth:`CoverageLedger.merge`) -- ``ledger`` is read, not written.
    """
    from repro.campaign.cache import map_with_cache
    from repro.campaign.checkpoint import build_header, verify_header
    from repro.campaign.runner import ExperimentRunner

    if budget < 0:
        raise ValueError(f"fuzz budget must be non-negative, got {budget}")
    fuzz_config = config if config is not None else FuzzConfig()
    fuzzer = SpecFuzzer(seed, fuzz_config)
    covered = ledger.covered_regions if ledger is not None else []
    specs = fuzzer.generate(
        budget, covered=covered, toward_uncovered=toward_uncovered
    )
    spec_hashes = [spec.spec_hash() for spec in specs]
    unique_specs: List["ScenarioSpec"] = []
    seen = set()
    for spec, spec_hash in zip(specs, spec_hashes):
        if spec_hash not in seen:
            seen.add(spec_hash)
            unique_specs.append(spec)

    runner = ExperimentRunner(backend=backend, jobs=jobs)
    completed = None
    if journal is not None:
        header = build_header(
            "fuzz",
            FUZZ_ARTIFACT_VERSION,
            seed,
            {
                "budget": budget,
                "config": fuzz_config.to_dict(),
                "toward_uncovered": toward_uncovered,
                "covered_snapshot": sorted(covered),
            },
            fingerprint=cache.fingerprint if cache is not None else None,
        )
        if resume:
            found, completed = journal.load()
            verify_header(found, header)
            journal.resume()
        else:
            journal.start(header)
    elif resume:
        raise ValueError("resume=True needs a checkpoint journal")
    try:
        cells = map_with_cache(
            runner,
            run_fuzz_cell,
            unique_specs,
            kind="fuzz-cell",
            artifact_version=FUZZ_ARTIFACT_VERSION,
            key_fn=_fuzz_cell_key,
            hash_fn=lambda spec: spec.spec_hash(),
            encode=lambda result: result.to_dict(),
            decode=FuzzCellResult.from_dict,
            cache=cache,
            journal=journal,
            completed=completed,
            after_cell=after_cell,
        )
    finally:
        if journal is not None:
            journal.close()

    session_ledger = CoverageLedger()
    for cell in cells:
        session_ledger.record_hash(cell.region, cell.spec_hash)
    artifact = FuzzArtifact(
        fuzz_seed=seed,
        budget=budget,
        toward_uncovered=toward_uncovered,
        config=fuzz_config.to_dict(),
        spec_hashes=spec_hashes,
        stats=fuzzer.stats.to_dict(),
        cells=list(cells),
        coverage=session_ledger.to_dict(),
    )
    artifact.cache_stats = cache.stats if cache is not None else None
    if completed:
        artifact.cells_resumed = sum(
            1 for spec in unique_specs if _fuzz_cell_key(spec) in completed
        )
    return artifact
