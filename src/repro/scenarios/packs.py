"""Curated, versioned scenario packs: named suites with pinned expectations.

A **pack** is a JSON file bundling named scenarios -- plain
:class:`~repro.api.spec.ScenarioSpec` entries and compound
:class:`~repro.api.compound.CompoundScenarioSpec` entries -- each with
an ``expect`` mapping of result fields to pinned values.  Packs are the
shareable unit of regression coverage: ``repro run --pack packs/foo.json``
replays every entry and compares the executed results field-by-field
against the pins, and ``repro fuzz --emit-pack`` freezes a fuzz
session's discoveries into a new pack.

Because every simulation value round-trips through JSON exactly
(Python floats serialize losslessly), pinned expectations compare with
plain equality -- no tolerances, no flakes.  The pack format is
schema-versioned (:data:`PACK_VERSION`) with the same
refuse-newer-versions discipline as every other artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.compound import CompoundScenarioSpec, run_compound
from repro.api.spec import ScenarioSpec, SpecValidationError
from repro.scenarios.runner import run_fuzz_cell

#: Bump when the pack schema changes; readers refuse newer versions.
PACK_VERSION = 1


@dataclass(frozen=True)
class PackEntry:
    """One named scenario of a pack, plus its pinned expectations.

    Exactly one of ``spec`` (a plain scenario) and ``compound`` (a
    compound scenario) is set; both are stored in their ``to_dict``
    JSON form so the pack file is self-contained.  ``expect`` maps
    result-payload field names to the exact values a run must produce.
    """

    name: str
    spec: Optional[Dict[str, object]] = None
    compound: Optional[Dict[str, object]] = None
    expect: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecValidationError(
                f"pack entry name must be a non-empty string, got {self.name!r}",
                field="name",
            )
        if (self.spec is None) == (self.compound is None):
            raise SpecValidationError(
                f"pack entry {self.name!r} must set exactly one of 'spec' "
                "and 'compound'",
                field="spec",
            )
        # Validate eagerly so a broken pack fails at load, not mid-run.
        self.scenario()

    def scenario(self) -> object:
        """The entry's parsed scenario object (plain or compound spec)."""
        if self.spec is not None:
            return ScenarioSpec.from_dict(self.spec)
        assert self.compound is not None
        return CompoundScenarioSpec.from_dict(self.compound)

    def execute(self) -> Dict[str, object]:
        """Run the entry's scenario; returns the result payload dict."""
        scenario = self.scenario()
        if isinstance(scenario, ScenarioSpec):
            return run_fuzz_cell(scenario).to_dict()
        assert isinstance(scenario, CompoundScenarioSpec)
        return run_compound(scenario).to_dict()

    def check(self, payload: Dict[str, object]) -> List[str]:
        """Expectation failures of one executed payload (empty if ok)."""
        failures = []
        for key in sorted(self.expect):
            if key not in payload:
                failures.append(
                    f"{self.name}: expected field {key!r} missing from result"
                )
            elif payload[key] != self.expect[key]:
                failures.append(
                    f"{self.name}: {key} expected {self.expect[key]!r}, "
                    f"got {payload[key]!r}"
                )
        return failures

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (unset scenario kind omitted)."""
        out: Dict[str, object] = {"name": self.name}
        if self.spec is not None:
            out["spec"] = self.spec
        if self.compound is not None:
            out["compound"] = self.compound
        out["expect"] = dict(self.expect)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PackEntry":
        """Rebuild an entry, refusing unknown fields."""
        known = {"name", "spec", "compound", "expect"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecValidationError(
                f"unknown pack entry fields: {unknown}", field=unknown[0]
            )
        return cls(
            name=data.get("name", ""),  # type: ignore[arg-type]
            spec=data.get("spec"),  # type: ignore[arg-type]
            compound=data.get("compound"),  # type: ignore[arg-type]
            expect=dict(data.get("expect", {})),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ScenarioPack:
    """A named, versioned bundle of scenarios with pinned expectations."""

    name: str
    description: str = ""
    entries: Tuple[PackEntry, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecValidationError(
                f"pack name must be a non-empty string, got {self.name!r}",
                field="name",
            )
        entries = tuple(self.entries)
        object.__setattr__(self, "entries", entries)
        names = [entry.name for entry in entries]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise SpecValidationError(
                f"pack {self.name!r} has duplicate entry names: {duplicates}",
                field="name",
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: version, identity, entries in pack order."""
        return {
            "version": PACK_VERSION,
            "name": self.name,
            "description": self.description,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioPack":
        """Rebuild a pack, refusing newer schema versions."""
        raw_version = data.get("version", 1)
        if not isinstance(raw_version, int) or isinstance(raw_version, bool):
            raise SpecValidationError(
                f"pack version must be an integer, got {raw_version!r}",
                version=raw_version,
            )
        if raw_version > PACK_VERSION:
            raise SpecValidationError(
                f"pack version {raw_version} is newer than supported "
                f"version {PACK_VERSION}",
                version=raw_version,
            )
        unknown = sorted(set(data) - {"version", "name", "description", "entries"})
        if unknown:
            raise SpecValidationError(
                f"unknown pack fields: {unknown}", field=unknown[0]
            )
        entries = data.get("entries", [])
        if not isinstance(entries, (list, tuple)):
            raise SpecValidationError(
                f"pack field 'entries' must be a list, got {entries!r}",
                field="entries",
            )
        return cls(
            name=data.get("name", ""),  # type: ignore[arg-type]
            description=data.get("description", ""),  # type: ignore[arg-type]
            entries=tuple(PackEntry.from_dict(entry) for entry in entries),
        )

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioPack":
        """Parse a pack from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ScenarioPack":
        """Read a pack previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


@dataclass
class PackEntryReport:
    """One pack entry's executed outcome against its pins."""

    name: str
    ok: bool
    failures: List[str] = field(default_factory=list)
    #: The executed result payload (plain-cell or compound ``to_dict``).
    payload: Dict[str, object] = field(default_factory=dict)


@dataclass
class PackReport:
    """A full pack run: per-entry outcomes plus the overall verdict."""

    pack: str
    entries: List[PackEntryReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every entry matched its pinned expectations."""
        return all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> List[str]:
        """Every expectation failure across the pack, in entry order."""
        out: List[str] = []
        for entry in self.entries:
            out.extend(entry.failures)
        return out


def run_pack(pack: ScenarioPack) -> PackReport:
    """Execute every entry of a pack and compare against its pins.

    Entries run in pack order (each is an independent deterministic
    scenario); an entry that raises is reported as a failure rather
    than aborting the rest of the pack.
    """
    report = PackReport(pack=pack.name)
    for entry in pack.entries:
        try:
            payload = entry.execute()
        except Exception as error:  # noqa: BLE001 - reported, not swallowed
            report.entries.append(
                PackEntryReport(
                    name=entry.name,
                    ok=False,
                    failures=[f"{entry.name}: execution failed: {error}"],
                )
            )
            continue
        failures = entry.check(payload)
        report.entries.append(
            PackEntryReport(
                name=entry.name,
                ok=not failures,
                failures=failures,
                payload=payload,
            )
        )
    return report
