"""Scenario generation: coverage-guided fuzzing, packs and ledgers.

The scenario-generation subsystem turns the hand-written spec grids of
the campaign layer into a searchable space.  It has three parts:

* :mod:`repro.scenarios.fuzzer` -- a deterministic, seeded
  :class:`SpecFuzzer` random-walking the registry-validated
  :class:`~repro.api.spec.ScenarioSpec` space; every spec is
  reproducible from ``(fuzz_seed, index)`` alone.
* :mod:`repro.scenarios.coverage` -- the region lattice and the
  versioned, mergeable :class:`CoverageLedger` recording which kinds of
  scenario have ever executed; snapshots steer the fuzzer toward
  unexplored regions.
* :mod:`repro.scenarios.runner` / :mod:`repro.scenarios.packs` -- the
  budgeted :func:`run_fuzz` session (riding the campaign cache and
  checkpoint journal, resumable and backend bit-identical) and curated
  :class:`ScenarioPack` files with pinned expectations, runnable via
  ``repro run --pack``.

Compound multi-tenant scenarios themselves live in
:mod:`repro.api.compound`; this package consumes them as pack entries.
"""

from repro.scenarios.coverage import (
    LEDGER_VERSION,
    CoverageLedger,
    ablation_bin,
    attack_family,
    region_of,
    scale_bin,
    workload_family,
)
from repro.scenarios.fuzzer import (
    FUZZ_SALT,
    MAX_DRAW_ATTEMPTS,
    FuzzConfig,
    FuzzStats,
    SpecFuzzer,
)
from repro.scenarios.packs import (
    PACK_VERSION,
    PackEntry,
    PackEntryReport,
    PackReport,
    ScenarioPack,
    run_pack,
)
from repro.scenarios.runner import (
    FUZZ_ARTIFACT_VERSION,
    FuzzArtifact,
    FuzzCellResult,
    run_fuzz,
    run_fuzz_cell,
)

__all__ = [
    "LEDGER_VERSION",
    "CoverageLedger",
    "ablation_bin",
    "attack_family",
    "region_of",
    "scale_bin",
    "workload_family",
    "FUZZ_SALT",
    "MAX_DRAW_ATTEMPTS",
    "FuzzConfig",
    "FuzzStats",
    "SpecFuzzer",
    "PACK_VERSION",
    "PackEntry",
    "PackEntryReport",
    "PackReport",
    "ScenarioPack",
    "run_pack",
    "FUZZ_ARTIFACT_VERSION",
    "FuzzArtifact",
    "FuzzCellResult",
    "run_fuzz",
    "run_fuzz_cell",
]
