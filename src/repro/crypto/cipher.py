"""A keystream cipher used both by RSSD's offload path and by attack models.

The cipher XORs plaintext with a SHA-256-derived keystream in counter
mode.  It is symmetric (encrypt == decrypt with the same key and nonce),
deterministic, and produces high-entropy output, which is all the
simulation requires of it.
"""

from __future__ import annotations

import hashlib
from typing import Iterator


def keystream_bytes(key: bytes, nonce: int, length: int) -> bytes:
    """Generate ``length`` keystream bytes for (``key``, ``nonce``)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if not key:
        raise ValueError("key must not be empty")
    blocks = []
    counter = 0
    produced = 0
    while produced < length:
        block = hashlib.sha256(
            key + nonce.to_bytes(16, "big", signed=False) + counter.to_bytes(8, "big")
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


class StreamCipher:
    """Counter-mode XOR cipher with a per-message nonce."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must not be empty")
        self._key = bytes(key)

    @property
    def key_fingerprint(self) -> str:
        """Short identifier of the key (safe to log)."""
        return hashlib.sha256(self._key).hexdigest()[:16]

    def encrypt(self, plaintext: bytes, nonce: int) -> bytes:
        """Encrypt ``plaintext`` under the given message nonce."""
        if nonce < 0:
            raise ValueError("nonce must be non-negative")
        stream = keystream_bytes(self._key, nonce, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def decrypt(self, ciphertext: bytes, nonce: int) -> bytes:
        """Decrypt ``ciphertext`` (identical to :meth:`encrypt` for XOR)."""
        return self.encrypt(ciphertext, nonce)

    def encrypt_stream(self, chunks: Iterator[bytes], nonce: int) -> Iterator[bytes]:
        """Encrypt an iterator of chunks under one logical message nonce."""
        offset_nonce = nonce
        for chunk in chunks:
            yield self.encrypt(chunk, offset_nonce)
            offset_nonce += 1

    @classmethod
    def from_passphrase(cls, passphrase: str) -> "StreamCipher":
        """Derive a cipher from a human passphrase (attack-sample convenience)."""
        return cls(hashlib.sha256(passphrase.encode("utf-8")).digest())
