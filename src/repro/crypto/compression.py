"""Compression substrate.

Two layers are provided:

* :class:`Compressor` -- a real, self-contained byte-level compressor
  (run-length + dictionary back-references, LZ77-flavoured) used when
  actual payloads are present (file-system examples, recovery tests).
* :class:`CompressionModel` -- a ratio model used for descriptor-only
  pages during trace-driven runs, where carrying real bytes for
  terabytes of traffic would be impossible.  It maps a page's entropy
  class to the compression ratio RSSD's offload engine would achieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ssd.flash import PageContent


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one payload or page descriptor."""

    original_size: int
    compressed_size: int

    def __post_init__(self) -> None:
        if self.original_size < 0 or self.compressed_size < 0:
            raise ValueError("sizes must be non-negative")

    @property
    def ratio(self) -> float:
        """Compressed / original size (1.0 means incompressible)."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def savings_bytes(self) -> int:
        return max(0, self.original_size - self.compressed_size)


class Compressor:
    """A small LZ77-style compressor for real payloads.

    Format (per token):
    * literal run: ``0x00 | length(2) | bytes``
    * back-reference: ``0x01 | distance(2) | length(2)``

    The implementation favours clarity over speed -- it is only used on
    small working sets.
    """

    _LITERAL = 0
    _MATCH = 1

    def __init__(self, window_size: int = 4096, min_match: int = 4) -> None:
        if window_size < 16:
            raise ValueError("window_size must be at least 16 bytes")
        if min_match < 3:
            raise ValueError("min_match must be at least 3 bytes")
        self.window_size = window_size
        self.min_match = min_match

    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; the result always round-trips via :meth:`decompress`."""
        if not data:
            return b""
        tokens: List[bytes] = []
        literals = bytearray()
        position = 0
        length = len(data)
        while position < length:
            match_distance, match_length = self._find_match(data, position)
            if match_length >= self.min_match:
                if literals:
                    tokens.append(self._literal_token(bytes(literals)))
                    literals.clear()
                tokens.append(self._match_token(match_distance, match_length))
                position += match_length
            else:
                literals.append(data[position])
                position += 1
                if len(literals) == 0xFFFF:
                    tokens.append(self._literal_token(bytes(literals)))
                    literals.clear()
        if literals:
            tokens.append(self._literal_token(bytes(literals)))
        return b"".join(tokens)

    def decompress(self, compressed: bytes) -> bytes:
        """Reverse :meth:`compress`."""
        output = bytearray()
        position = 0
        length = len(compressed)
        while position < length:
            token_type = compressed[position]
            position += 1
            if token_type == self._LITERAL:
                run_length = int.from_bytes(compressed[position : position + 2], "big")
                position += 2
                output.extend(compressed[position : position + run_length])
                position += run_length
            elif token_type == self._MATCH:
                distance = int.from_bytes(compressed[position : position + 2], "big")
                match_length = int.from_bytes(
                    compressed[position + 2 : position + 4], "big"
                )
                position += 4
                if distance == 0 or distance > len(output):
                    raise ValueError("corrupt stream: invalid back-reference")
                start = len(output) - distance
                for offset in range(match_length):
                    output.append(output[start + offset])
            else:
                raise ValueError(f"corrupt stream: unknown token type {token_type}")
        return bytes(output)

    def measure(self, data: bytes) -> CompressionResult:
        """Compress and report sizes without keeping the output."""
        return CompressionResult(
            original_size=len(data), compressed_size=len(self.compress(data))
        )

    # -- token helpers -------------------------------------------------------

    def _literal_token(self, literals: bytes) -> bytes:
        return bytes([self._LITERAL]) + len(literals).to_bytes(2, "big") + literals

    def _match_token(self, distance: int, length: int) -> bytes:
        return (
            bytes([self._MATCH])
            + distance.to_bytes(2, "big")
            + length.to_bytes(2, "big")
        )

    def _find_match(self, data: bytes, position: int) -> tuple:
        """Longest match for ``data[position:]`` inside the sliding window."""
        best_distance = 0
        best_length = 0
        window_start = max(0, position - self.window_size)
        max_length = min(len(data) - position, 0xFFFF)
        if max_length < self.min_match:
            return 0, 0
        probe = data[position : position + self.min_match]
        search_from = window_start
        while True:
            candidate = data.find(probe, search_from, position)
            if candidate == -1:
                break
            length = self.min_match
            while (
                length < max_length
                and data[candidate + length] == data[position + length]
            ):
                length += 1
            if length > best_length:
                best_length = length
                best_distance = position - candidate
            search_from = candidate + 1
        return best_distance, best_length


class CompressionModel:
    """Ratio model for descriptor-only pages.

    The per-page ``compress_ratio`` attribute already encodes the
    expected ratio (derived from entropy for real payloads, or set by
    the workload generators for synthetic pages).  The model adds a
    fixed per-page metadata overhead, mirroring the container format the
    offload engine uses.
    """

    def __init__(self, per_page_overhead_bytes: int = 32) -> None:
        if per_page_overhead_bytes < 0:
            raise ValueError("per_page_overhead_bytes must be non-negative")
        self.per_page_overhead_bytes = per_page_overhead_bytes

    def compress_page(self, content: PageContent) -> CompressionResult:
        """Estimated compression outcome for one page."""
        compressed = content.compressed_size() + self.per_page_overhead_bytes
        compressed = min(compressed, content.length + self.per_page_overhead_bytes)
        return CompressionResult(
            original_size=content.length, compressed_size=compressed
        )

    def compress_pages(self, contents: List[PageContent]) -> CompressionResult:
        """Aggregate compression outcome for a batch of pages."""
        original = sum(content.length for content in contents)
        compressed = sum(self.compress_page(content).compressed_size for content in contents)
        return CompressionResult(original_size=original, compressed_size=compressed)
