"""Entropy estimation used by ransomware detectors.

Detection baselines (UNVEIL, CryptoDrop, SSDInsider) flag writes whose
content entropy jumps relative to the data being replaced.  The
classifier here works on either real payloads or descriptor-only pages
(which carry a pre-computed entropy estimate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.ssd.flash import PageContent, shannon_entropy

#: Entropy (bits/byte) at or above which a write looks encrypted; the
#: deployed default shared by the classifier, the forensic profiler and
#: the detection-quality sweeps.
DEFAULT_ENCRYPTED_THRESHOLD = 7.2
#: Entropy rise over the replaced data that counts as a jump; shared the
#: same way, so tuning it re-tunes every consumer together.
DEFAULT_JUMP_THRESHOLD = 2.0


@dataclass(frozen=True)
class EntropyVerdict:
    """Result of classifying one write."""

    entropy: float
    looks_encrypted: bool
    delta_vs_previous: Optional[float] = None


class EntropyClassifier:
    """Classify page contents as plausibly-encrypted or not.

    Two triggers are combined when the replaced data is available:

    * **absolute** -- the write's entropy reaches ``encrypted_threshold``
      (and did not *drop* relative to the data it replaces);
    * **jump** -- the write's entropy rose by at least ``jump_threshold``
      over the replaced data, even if the absolute level stays under the
      threshold.  This is what catches entropy-mimicry attacks that
      deliberately hold their output just below the absolute line.
    """

    def __init__(
        self,
        encrypted_threshold: float = DEFAULT_ENCRYPTED_THRESHOLD,
        jump_threshold: float = DEFAULT_JUMP_THRESHOLD,
    ) -> None:
        if not 0.0 < encrypted_threshold <= 8.0:
            raise ValueError("encrypted_threshold must be within (0, 8]")
        if jump_threshold < 0.0:
            raise ValueError("jump_threshold must be non-negative")
        self.encrypted_threshold = encrypted_threshold
        self.jump_threshold = jump_threshold

    def entropy_of(self, content: PageContent) -> float:
        """Entropy of a page, computed from bytes when available."""
        if content.payload is not None:
            return shannon_entropy(content.payload)
        return content.entropy

    def classify(
        self, content: PageContent, previous: Optional[PageContent] = None
    ) -> EntropyVerdict:
        """Classify a write, optionally comparing against the data it replaces."""
        entropy = self.entropy_of(content)
        delta = None
        looks_encrypted = entropy >= self.encrypted_threshold
        if previous is not None:
            delta = entropy - self.entropy_of(previous)
            if delta < 0.0:
                # Entropy dropped relative to the replaced data: whatever
                # this write is, it is not an encryption of it.
                looks_encrypted = False
            else:
                looks_encrypted = looks_encrypted or delta >= self.jump_threshold
        return EntropyVerdict(
            entropy=entropy, looks_encrypted=looks_encrypted, delta_vs_previous=delta
        )


class EntropyJumpTracker:
    """Per-LBA write-entropy memory for jump detection.

    Both the live detection-quality observer and the post-attack
    profiler need the same cross-stream view: what entropy did the
    previous write to this page carry, whoever wrote it.  One tracker
    implementation keeps their delta semantics identical.
    """

    def __init__(self) -> None:
        self._last_entropy: Dict[int, float] = {}

    def observe(self, lba: int, entropy: float) -> Optional[float]:
        """Record a write and return its entropy rise over the page's
        previous write (``None`` for the first write to the page)."""
        previous = self._last_entropy.get(lba)
        self._last_entropy[lba] = entropy
        return None if previous is None else entropy - previous


class EntropyWindow:
    """Sliding window over recent write entropies.

    Detectors use the window to distinguish a burst of high-entropy
    writes (ransomware encrypting files) from occasional compressed or
    media writes in normal workloads.
    """

    def __init__(self, window_size: int = 128) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.window_size = window_size
        self._window: Deque[float] = deque(maxlen=window_size)

    def observe(self, entropy: float) -> None:
        """Add one write's entropy to the window."""
        if not 0.0 <= entropy <= 8.0:
            raise ValueError("entropy must be within [0, 8]")
        self._window.append(entropy)

    @property
    def count(self) -> int:
        return len(self._window)

    @property
    def mean(self) -> float:
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def high_entropy_fraction(self, threshold: float = 7.2) -> float:
        """Fraction of windowed writes that exceed ``threshold``."""
        if not self._window:
            return 0.0
        high = sum(1 for value in self._window if value >= threshold)
        return high / len(self._window)

    def is_suspicious(
        self, fraction_threshold: float = 0.6, entropy_threshold: float = 7.2
    ) -> bool:
        """True when the window is dominated by encrypted-looking writes."""
        if len(self._window) < self.window_size // 2:
            return False
        return self.high_entropy_fraction(entropy_threshold) >= fraction_threshold
