"""Entropy estimation used by ransomware detectors.

Detection baselines (UNVEIL, CryptoDrop, SSDInsider) flag writes whose
content entropy jumps relative to the data being replaced.  The
classifier here works on either real payloads or descriptor-only pages
(which carry a pre-computed entropy estimate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.ssd.flash import PageContent, shannon_entropy


@dataclass(frozen=True)
class EntropyVerdict:
    """Result of classifying one write."""

    entropy: float
    looks_encrypted: bool
    delta_vs_previous: Optional[float] = None


class EntropyClassifier:
    """Classify page contents as plausibly-encrypted or not."""

    def __init__(self, encrypted_threshold: float = 7.2, jump_threshold: float = 2.0) -> None:
        if not 0.0 < encrypted_threshold <= 8.0:
            raise ValueError("encrypted_threshold must be within (0, 8]")
        if jump_threshold < 0.0:
            raise ValueError("jump_threshold must be non-negative")
        self.encrypted_threshold = encrypted_threshold
        self.jump_threshold = jump_threshold

    def entropy_of(self, content: PageContent) -> float:
        """Entropy of a page, computed from bytes when available."""
        if content.payload is not None:
            return shannon_entropy(content.payload)
        return content.entropy

    def classify(
        self, content: PageContent, previous: Optional[PageContent] = None
    ) -> EntropyVerdict:
        """Classify a write, optionally comparing against the data it replaces."""
        entropy = self.entropy_of(content)
        delta = None
        looks_encrypted = entropy >= self.encrypted_threshold
        if previous is not None:
            delta = entropy - self.entropy_of(previous)
            looks_encrypted = looks_encrypted and delta >= 0
        return EntropyVerdict(
            entropy=entropy, looks_encrypted=looks_encrypted, delta_vs_previous=delta
        )


class EntropyWindow:
    """Sliding window over recent write entropies.

    Detectors use the window to distinguish a burst of high-entropy
    writes (ransomware encrypting files) from occasional compressed or
    media writes in normal workloads.
    """

    def __init__(self, window_size: int = 128) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.window_size = window_size
        self._window: Deque[float] = deque(maxlen=window_size)

    def observe(self, entropy: float) -> None:
        """Add one write's entropy to the window."""
        if not 0.0 <= entropy <= 8.0:
            raise ValueError("entropy must be within [0, 8]")
        self._window.append(entropy)

    @property
    def count(self) -> int:
        return len(self._window)

    @property
    def mean(self) -> float:
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def high_entropy_fraction(self, threshold: float = 7.2) -> float:
        """Fraction of windowed writes that exceed ``threshold``."""
        if not self._window:
            return 0.0
        high = sum(1 for value in self._window if value >= threshold)
        return high / len(self._window)

    def is_suspicious(
        self, fraction_threshold: float = 0.6, entropy_threshold: float = 7.2
    ) -> bool:
        """True when the window is dominated by encrypted-looking writes."""
        if len(self._window) < self.window_size // 2:
            return False
        return self.high_entropy_fraction(entropy_threshold) >= fraction_threshold
