"""Cryptographic and compression substrates.

RSSD compresses and encrypts retained pages before shipping them over
NVMe-oE, and folds every logged storage operation into a hash chain so
the post-attack evidence chain is tamper-evident.  Ransomware samples
also use the cipher here to encrypt victim files in the attack models.

Nothing in this package is intended to be cryptographically strong --
the simulation only needs (a) ciphertext that is indistinguishable from
random to the entropy detectors, (b) realistic compression *ratios*,
and (c) collision-resistant hashing for the evidence chain, for which
the standard library's SHA-256 is used.
"""

from repro.crypto.cipher import StreamCipher, keystream_bytes
from repro.crypto.compression import CompressionModel, Compressor, CompressionResult
from repro.crypto.entropy import (
    DEFAULT_ENCRYPTED_THRESHOLD,
    DEFAULT_JUMP_THRESHOLD,
    EntropyClassifier,
    EntropyJumpTracker,
    EntropyWindow,
)
from repro.crypto.hashing import HashChain, MerkleTree, chain_digest

__all__ = [
    "CompressionModel",
    "CompressionResult",
    "Compressor",
    "DEFAULT_ENCRYPTED_THRESHOLD",
    "DEFAULT_JUMP_THRESHOLD",
    "EntropyClassifier",
    "EntropyJumpTracker",
    "EntropyWindow",
    "HashChain",
    "MerkleTree",
    "StreamCipher",
    "chain_digest",
    "keystream_bytes",
]
