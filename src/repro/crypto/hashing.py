"""Hash chains and Merkle trees for the trusted evidence chain.

RSSD folds every logged storage operation into a SHA-256 hash chain and
periodically seals checkpoints.  During post-attack analysis the chain
is re-computed from the retained log; any tampering (entry removal,
reordering, modification) breaks the chain at the tampered position.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

GENESIS = b"rssd-evidence-chain-genesis"


def chain_digest(previous_digest: bytes, entry: bytes) -> bytes:
    """Digest of one chain link: H(previous || entry)."""
    return hashlib.sha256(previous_digest + entry).digest()


@dataclass(frozen=True)
class ChainCheckpoint:
    """A sealed point in the hash chain (index of last covered entry + digest)."""

    entry_index: int
    digest: bytes


class HashChain:
    """An append-only SHA-256 hash chain with periodic sealed checkpoints."""

    def __init__(self, checkpoint_interval: int = 1024) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        self.checkpoint_interval = checkpoint_interval
        self._head = hashlib.sha256(GENESIS).digest()
        self._length = 0
        self._checkpoints: List[ChainCheckpoint] = []

    @property
    def head(self) -> bytes:
        """Current chain head digest."""
        return self._head

    @property
    def length(self) -> int:
        """Number of entries folded into the chain."""
        return self._length

    @property
    def checkpoints(self) -> List[ChainCheckpoint]:
        return list(self._checkpoints)

    def append(self, entry: bytes) -> bytes:
        """Fold ``entry`` into the chain and return the new head."""
        self._head = chain_digest(self._head, entry)
        self._length += 1
        if self._length % self.checkpoint_interval == 0:
            self._checkpoints.append(
                ChainCheckpoint(entry_index=self._length - 1, digest=self._head)
            )
        return self._head

    @staticmethod
    def replay(entries: Sequence[bytes]) -> bytes:
        """Recompute the head digest from scratch over ``entries``."""
        head = hashlib.sha256(GENESIS).digest()
        for entry in entries:
            head = chain_digest(head, entry)
        return head

    def verify(self, entries: Sequence[bytes]) -> bool:
        """Check that ``entries`` reproduce the current head digest."""
        return len(entries) == self._length and self.replay(entries) == self._head

    def find_divergence(self, entries: Sequence[bytes]) -> Optional[int]:
        """Index of the first entry where ``entries`` diverge from a checkpoint.

        Returns ``None`` if every checkpoint is consistent with the
        provided entries (the tail beyond the last checkpoint is checked
        by :meth:`verify`).
        """
        head = hashlib.sha256(GENESIS).digest()
        checkpoint_map = {cp.entry_index: cp.digest for cp in self._checkpoints}
        for index, entry in enumerate(entries):
            head = chain_digest(head, entry)
            expected = checkpoint_map.get(index)
            if expected is not None and expected != head:
                return index
        return None


class MerkleTree:
    """A binary Merkle tree over a list of leaf payloads.

    Used to seal offload containers: the remote tier stores the root so
    individual retained pages can later be proven to belong to the
    container without shipping the whole container back.
    """

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self._leaf_digests = [hashlib.sha256(leaf).digest() for leaf in leaves]
        self._levels: List[List[bytes]] = [list(self._leaf_digests)]
        current = self._levels[0]
        while len(current) > 1:
            parents: List[bytes] = []
            for index in range(0, len(current), 2):
                left = current[index]
                right = current[index + 1] if index + 1 < len(current) else left
                parents.append(hashlib.sha256(left + right).digest())
            self._levels.append(parents)
            current = parents

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_digests)

    def proof(self, index: int) -> List[Tuple[bytes, bool]]:
        """Inclusion proof for leaf ``index`` as (sibling digest, sibling-is-right)."""
        if not 0 <= index < self.leaf_count:
            raise IndexError("leaf index out of range")
        proof: List[Tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position + 1 if position % 2 == 0 else position - 1
            if sibling_index >= len(level):
                sibling_index = position
            sibling_is_right = sibling_index > position
            proof.append((level[sibling_index], sibling_is_right))
            position //= 2
        return proof

    @staticmethod
    def verify_proof(
        leaf: bytes, proof: Sequence[Tuple[bytes, bool]], root: bytes
    ) -> bool:
        """Check an inclusion proof produced by :meth:`proof`."""
        digest = hashlib.sha256(leaf).digest()
        for sibling, sibling_is_right in proof:
            if sibling_is_right:
                digest = hashlib.sha256(digest + sibling).digest()
            else:
                digest = hashlib.sha256(sibling + digest).digest()
        return digest == root
