"""Warn-once deprecation plumbing for the legacy entry points.

The :mod:`repro.api` facade is the stable, semver-promised surface; the
constructors it replaced keep working through shims that call
:func:`warn_once`.  Each distinct (old, new) pair warns exactly once per
process, so a campaign that builds thousands of environments through a
legacy path produces one actionable line, not a wall of noise.

This module sits at the package root (below every other layer) so the
shims in ``repro.attacks``, ``repro.workloads`` and ``repro.campaign``
can import it without creating a cycle through ``repro.api``.
"""

from __future__ import annotations

import warnings
from typing import Set

#: (old, new) pairs that have already warned in this process.
_warned: Set[str] = set()


def warn_once(old: str, new: str, *, stacklevel: int = 3) -> bool:
    """Emit one :class:`DeprecationWarning` pointing ``old`` users at ``new``.

    Returns ``True`` if the warning was emitted, ``False`` if this
    (old, new) pair already warned earlier in the process.  The message
    always names the :mod:`repro.api` replacement so a caller can fix
    the import without consulting the changelog.
    """
    key = f"{old}\x1f{new}"
    if key in _warned:
        return False
    _warned.add(key)
    warnings.warn(
        f"{old} is deprecated and will keep working through this shim; "
        f"migrate to {new} (the stable repro.api surface)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return True


def reset_warned() -> None:
    """Forget which pairs have warned (test isolation only)."""
    _warned.clear()
