"""Ransomware detection: local lightweight and remote offloaded.

RSSD's position is that the device itself only needs *retention* to
guarantee recovery; detection can therefore be conservative locally and
thorough remotely, where the offloaded log and powerful servers allow
long-horizon analysis that in-device detectors cannot afford.  Two
detectors are provided:

* :class:`LocalDetector` -- an in-firmware sliding-window detector in
  the spirit of SSDInsider: cheap, looks at a short window of recent
  writes, good at catching fast bulk encryption, easy to evade by
  pacing the attack (the timing attack).
* :class:`RemoteDetector` -- runs on the remote servers over the full
  offloaded log; profiles each stream over its whole history, so pacing
  does not help the attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.forensics import PostAttackAnalyzer
from repro.core.oplog import OperationLog
from repro.crypto.entropy import (
    DEFAULT_ENCRYPTED_THRESHOLD,
    DEFAULT_JUMP_THRESHOLD,
    EntropyJumpTracker,
    EntropyWindow,
)
from repro.ssd.device import HostOp, HostOpType


@dataclass
class DetectionReport:
    """Outcome of running a detector."""

    detector: str
    detected: bool
    detection_time_us: Optional[int] = None
    suspected_streams: List[int] = field(default_factory=list)
    trigger: str = ""
    operations_analyzed: int = 0


class LocalDetector:
    """In-device sliding-window detector (SSDInsider-style).

    Registered as a device observer.  It flags the workload when, inside
    a short window of recent writes, the fraction of encrypted-looking
    overwrites exceeds a threshold at a sufficient rate.
    """

    def __init__(
        self,
        window_size: int = 64,
        high_entropy_fraction: float = 0.7,
        min_writes_per_second: float = 50.0,
    ) -> None:
        if not 0.0 < high_entropy_fraction <= 1.0:
            raise ValueError("high_entropy_fraction must be within (0, 1]")
        if min_writes_per_second <= 0:
            raise ValueError("min_writes_per_second must be positive")
        self.window = EntropyWindow(window_size=window_size)
        self.high_entropy_fraction = high_entropy_fraction
        self.min_writes_per_second = min_writes_per_second
        self._window_timestamps: List[int] = []
        self._window_size = window_size
        self._detected_at: Optional[int] = None
        self._ops_seen = 0
        self._recent_streams: Dict[int, int] = {}

    # -- observer interface ---------------------------------------------------------

    def on_host_op(self, op: HostOp) -> None:
        self._ops_seen += 1
        if op.op_type is not HostOpType.WRITE or op.content is None:
            return
        self.window.observe(op.content.entropy)
        self._window_timestamps.append(op.timestamp_us)
        if len(self._window_timestamps) > self._window_size:
            self._window_timestamps.pop(0)
        self._recent_streams[op.stream_id] = self._recent_streams.get(op.stream_id, 0) + 1
        if self._detected_at is None and self._window_is_suspicious():
            self._detected_at = op.timestamp_us

    def _window_is_suspicious(self) -> bool:
        if not self.window.is_suspicious(
            fraction_threshold=self.high_entropy_fraction
        ):
            return False
        if len(self._window_timestamps) < 2:
            return False
        span_us = self._window_timestamps[-1] - self._window_timestamps[0]
        if span_us <= 0:
            return True
        writes_per_second = len(self._window_timestamps) / (span_us / 1_000_000.0)
        # A paced (timing) attack keeps the windowed write rate below the
        # threshold, which is exactly how it evades this detector.
        return writes_per_second >= self.min_writes_per_second

    # -- reporting ----------------------------------------------------------------------

    def report(self) -> DetectionReport:
        suspects = []
        if self._detected_at is not None:
            total = sum(self._recent_streams.values())
            suspects = [
                stream
                for stream, count in self._recent_streams.items()
                if total and count / total >= 0.2
            ]
        return DetectionReport(
            detector="local-window",
            detected=self._detected_at is not None,
            detection_time_us=self._detected_at,
            suspected_streams=sorted(suspects),
            trigger="entropy-window" if self._detected_at is not None else "",
            operations_analyzed=self._ops_seen,
        )


class RemoteDetector:
    """Offloaded, full-history detector running on the remote servers."""

    def __init__(
        self,
        oplog: OperationLog,
        analyzer: Optional[PostAttackAnalyzer] = None,
        entropy_fraction: float = 0.5,
        min_writes: int = 8,
    ) -> None:
        self.oplog = oplog
        self.analyzer = analyzer
        self.entropy_fraction = entropy_fraction
        self.min_writes = min_writes

    def analyze(self) -> DetectionReport:
        """Profile every stream over the full log and flag ransomware-like ones."""
        entries = self.oplog.all_entries()
        if self.analyzer is not None:
            profiles = self.analyzer.profile_streams(entries)
            suspects = self.analyzer.suspect_streams(
                profiles,
                min_writes=self.min_writes,
                entropy_fraction=self.entropy_fraction,
            )
        else:
            profiles = {}
            suspects = []
        detection_time = None
        trigger = ""
        if suspects:
            suspect_entries = [e for e in entries if e.stream_id in suspects]
            detection_time = min(e.timestamp_us for e in suspect_entries)
            trigger = "full-history-profile"
        return DetectionReport(
            detector="remote-offloaded",
            detected=bool(suspects),
            detection_time_us=detection_time,
            suspected_streams=suspects,
            trigger=trigger,
            operations_analyzed=len(entries),
        )


# ---------------------------------------------------------------------------
# Detection quality: labelled observation + confusion matrices + sweeps
# ---------------------------------------------------------------------------
#
# Detection *latency* (above) says when a detector fired; it says nothing
# about how well its trigger separates malicious writes from benign
# ones.  The classes below add that second axis: an observer records the
# labelled write stream a scenario produced, and per-detector scorers
# replay primitive detectors over it at many thresholds, yielding the
# confusion matrices the ROC pipeline (repro.campaign.roc) turns into
# TPR/FPR trade-off curves -- the evaluation methodology of SSDInsider
# and FlashGuard, applied to every defense x attack cell.


@dataclass
class ConfusionMatrix:
    """Counts of predicted-vs-actual verdicts over labelled operations."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    def record(self, predicted: bool, actual: bool) -> None:
        """Tally one (prediction, ground truth) pair."""
        if actual:
            if predicted:
                self.true_positives += 1
            else:
                self.false_negatives += 1
        elif predicted:
            self.false_positives += 1
        else:
            self.true_negatives += 1

    @property
    def total(self) -> int:
        """Number of labelled operations scored."""
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def true_positive_rate(self) -> float:
        """Recall: flagged malicious ops / all malicious ops (0 if none)."""
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else 0.0

    @property
    def false_positive_rate(self) -> float:
        """Flagged benign ops / all benign ops (0 if none)."""
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0

    @property
    def precision(self) -> float:
        """Truly malicious fraction of everything flagged (0 if nothing flagged)."""
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def youden_j(self) -> float:
        """TPR - FPR: the threshold-quality score ROC operating points maximise."""
        return self.true_positive_rate - self.false_positive_rate


@dataclass(frozen=True)
class DetectionSample:
    """One labelled write, as the detector primitives see it.

    ``delta_entropy`` is the rise over the previous write to the same
    LBA (``None`` for the first write -- jump detectors cannot fire
    without a displaced version).  ``malicious`` is ground truth from
    the scenario's stream labels, never from the detector under test.
    """

    timestamp_us: int
    stream_id: int
    lba: int
    entropy: float
    delta_entropy: Optional[float]
    malicious: bool


class DetectionTraceObserver:
    """Device observer recording the labelled write stream of a scenario.

    Attach it to the raw SSD before the workload runs; afterwards,
    :meth:`samples` labels each recorded write against the attack's
    ground-truth malicious stream set.  Multi-page writes are recorded
    once, under their first LBA, mirroring what the operation log
    carries (single-page traffic is everything the scenarios issue).
    """

    def __init__(self) -> None:
        self._writes: List[Tuple[int, int, int, float, Optional[float]]] = []
        self._jump_tracker = EntropyJumpTracker()

    def on_host_op(self, op: HostOp) -> None:
        """Observer hook: record completed writes with their entropy delta."""
        if op.op_type is not HostOpType.WRITE or op.content is None:
            return
        entropy = op.content.entropy
        delta = self._jump_tracker.observe(op.lba, entropy)
        self._writes.append((op.timestamp_us, op.stream_id, op.lba, entropy, delta))

    @property
    def writes_recorded(self) -> int:
        """Number of write operations captured so far."""
        return len(self._writes)

    def samples(self, malicious_streams: Iterable[int]) -> List[DetectionSample]:
        """Label the recorded writes against ``malicious_streams``."""
        malicious: Set[int] = set(malicious_streams)
        return [
            DetectionSample(
                timestamp_us=timestamp_us,
                stream_id=stream_id,
                lba=lba,
                entropy=entropy,
                delta_entropy=delta,
                malicious=stream_id in malicious,
            )
            for timestamp_us, stream_id, lba, entropy, delta in self._writes
        ]


def entropy_confusion(
    samples: Sequence[DetectionSample], threshold: float
) -> ConfusionMatrix:
    """Score the absolute-entropy detector: flag writes at or above ``threshold``."""
    matrix = ConfusionMatrix()
    for sample in samples:
        matrix.record(sample.entropy >= threshold, sample.malicious)
    return matrix


def jump_confusion(
    samples: Sequence[DetectionSample], threshold: float
) -> ConfusionMatrix:
    """Score the entropy-jump detector: flag rises of at least ``threshold``.

    Writes with no displaced version (``delta_entropy is None``) are
    scored as not-flagged: a jump detector has nothing to compare
    against, which is exactly its blind spot on fresh allocations.
    """
    matrix = ConfusionMatrix()
    for sample in samples:
        predicted = sample.delta_entropy is not None and (
            sample.delta_entropy >= threshold
        )
        matrix.record(predicted, sample.malicious)
    return matrix


def window_confusion(
    samples: Sequence[DetectionSample],
    fraction_threshold: float,
    window_size: int = 64,
    entropy_threshold: float = DEFAULT_ENCRYPTED_THRESHOLD,
) -> ConfusionMatrix:
    """Score the sliding-window detector at one fraction threshold.

    Replays an :class:`~repro.crypto.entropy.EntropyWindow` over the
    write stream; each write's prediction is the alarm state *at that
    write* (window at least half full and the high-entropy fraction at
    or above ``fraction_threshold``), matching how the in-firmware
    detectors sample their window.
    """
    matrix = ConfusionMatrix()
    window = EntropyWindow(window_size=window_size)
    for sample in samples:
        window.observe(min(8.0, max(0.0, sample.entropy)))
        predicted = window.count >= window_size // 2 and (
            window.high_entropy_fraction(entropy_threshold) >= fraction_threshold
        )
        matrix.record(predicted, sample.malicious)
    return matrix


#: Threshold grids swept per detector; each includes a permissive and a
#: prohibitive endpoint so every ROC curve is anchored near (1,1)/(0,0).
DETECTOR_THRESHOLDS: Dict[str, Tuple[float, ...]] = {
    "entropy": (0.0, 4.0, 5.0, 5.5, 6.0, 6.5, 6.8, 7.0, 7.2, 7.5, 7.9, 8.5),
    "jump": (-1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 8.5),
    "window": (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0, 1.1),
}

#: The thresholds the deployed detectors actually run at; ROC quality
#: tables report the operating point alongside the full curve.  The
#: entropy and jump defaults are the shared ``repro.crypto.entropy``
#: constants, so the live classifier, the forensic profiler and the
#: sweeps stay in lockstep when tuned.
DETECTOR_DEFAULTS: Dict[str, float] = {
    "entropy": DEFAULT_ENCRYPTED_THRESHOLD,
    "jump": DEFAULT_JUMP_THRESHOLD,
    "window": 0.6,
}

_DETECTOR_SCORERS = {
    "entropy": entropy_confusion,
    "jump": jump_confusion,
    "window": window_confusion,
}


def detector_names() -> List[str]:
    """The detector primitives the quality pipeline sweeps, sorted."""
    return sorted(_DETECTOR_SCORERS)


def sweep_detector(
    samples: Sequence[DetectionSample],
    detector: str,
    thresholds: Optional[Sequence[float]] = None,
) -> List[Tuple[float, ConfusionMatrix]]:
    """Confusion matrix of ``detector`` at every swept threshold.

    ``detector`` is one of :func:`detector_names`; ``thresholds``
    defaults to the detector's :data:`DETECTOR_THRESHOLDS` grid.
    Results are ordered by threshold, ascending.
    """
    try:
        scorer = _DETECTOR_SCORERS[detector]
    except KeyError:
        raise ValueError(
            f"unknown detector {detector!r}; known: {detector_names()}"
        ) from None
    grid = thresholds if thresholds is not None else DETECTOR_THRESHOLDS[detector]
    return [(threshold, scorer(samples, threshold)) for threshold in sorted(grid)]
