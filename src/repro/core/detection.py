"""Ransomware detection: local lightweight and remote offloaded.

RSSD's position is that the device itself only needs *retention* to
guarantee recovery; detection can therefore be conservative locally and
thorough remotely, where the offloaded log and powerful servers allow
long-horizon analysis that in-device detectors cannot afford.  Two
detectors are provided:

* :class:`LocalDetector` -- an in-firmware sliding-window detector in
  the spirit of SSDInsider: cheap, looks at a short window of recent
  writes, good at catching fast bulk encryption, easy to evade by
  pacing the attack (the timing attack).
* :class:`RemoteDetector` -- runs on the remote servers over the full
  offloaded log; profiles each stream over its whole history, so pacing
  does not help the attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.forensics import PostAttackAnalyzer, StreamProfile
from repro.core.oplog import OperationLog
from repro.crypto.entropy import EntropyWindow
from repro.ssd.device import HostOp, HostOpType


@dataclass
class DetectionReport:
    """Outcome of running a detector."""

    detector: str
    detected: bool
    detection_time_us: Optional[int] = None
    suspected_streams: List[int] = field(default_factory=list)
    trigger: str = ""
    operations_analyzed: int = 0


class LocalDetector:
    """In-device sliding-window detector (SSDInsider-style).

    Registered as a device observer.  It flags the workload when, inside
    a short window of recent writes, the fraction of encrypted-looking
    overwrites exceeds a threshold at a sufficient rate.
    """

    def __init__(
        self,
        window_size: int = 64,
        high_entropy_fraction: float = 0.7,
        min_writes_per_second: float = 50.0,
    ) -> None:
        if not 0.0 < high_entropy_fraction <= 1.0:
            raise ValueError("high_entropy_fraction must be within (0, 1]")
        if min_writes_per_second <= 0:
            raise ValueError("min_writes_per_second must be positive")
        self.window = EntropyWindow(window_size=window_size)
        self.high_entropy_fraction = high_entropy_fraction
        self.min_writes_per_second = min_writes_per_second
        self._window_timestamps: List[int] = []
        self._window_size = window_size
        self._detected_at: Optional[int] = None
        self._ops_seen = 0
        self._recent_streams: Dict[int, int] = {}

    # -- observer interface ---------------------------------------------------------

    def on_host_op(self, op: HostOp) -> None:
        self._ops_seen += 1
        if op.op_type is not HostOpType.WRITE or op.content is None:
            return
        self.window.observe(op.content.entropy)
        self._window_timestamps.append(op.timestamp_us)
        if len(self._window_timestamps) > self._window_size:
            self._window_timestamps.pop(0)
        self._recent_streams[op.stream_id] = self._recent_streams.get(op.stream_id, 0) + 1
        if self._detected_at is None and self._window_is_suspicious():
            self._detected_at = op.timestamp_us

    def _window_is_suspicious(self) -> bool:
        if not self.window.is_suspicious(
            fraction_threshold=self.high_entropy_fraction
        ):
            return False
        if len(self._window_timestamps) < 2:
            return False
        span_us = self._window_timestamps[-1] - self._window_timestamps[0]
        if span_us <= 0:
            return True
        writes_per_second = len(self._window_timestamps) / (span_us / 1_000_000.0)
        # A paced (timing) attack keeps the windowed write rate below the
        # threshold, which is exactly how it evades this detector.
        return writes_per_second >= self.min_writes_per_second

    # -- reporting ----------------------------------------------------------------------

    def report(self) -> DetectionReport:
        suspects = []
        if self._detected_at is not None:
            total = sum(self._recent_streams.values())
            suspects = [
                stream
                for stream, count in self._recent_streams.items()
                if total and count / total >= 0.2
            ]
        return DetectionReport(
            detector="local-window",
            detected=self._detected_at is not None,
            detection_time_us=self._detected_at,
            suspected_streams=sorted(suspects),
            trigger="entropy-window" if self._detected_at is not None else "",
            operations_analyzed=self._ops_seen,
        )


class RemoteDetector:
    """Offloaded, full-history detector running on the remote servers."""

    def __init__(
        self,
        oplog: OperationLog,
        analyzer: Optional[PostAttackAnalyzer] = None,
        entropy_fraction: float = 0.5,
        min_writes: int = 8,
    ) -> None:
        self.oplog = oplog
        self.analyzer = analyzer
        self.entropy_fraction = entropy_fraction
        self.min_writes = min_writes

    def analyze(self) -> DetectionReport:
        """Profile every stream over the full log and flag ransomware-like ones."""
        entries = self.oplog.all_entries()
        if self.analyzer is not None:
            profiles = self.analyzer.profile_streams(entries)
            suspects = self.analyzer.suspect_streams(
                profiles,
                min_writes=self.min_writes,
                entropy_fraction=self.entropy_fraction,
            )
        else:
            profiles = {}
            suspects = []
        detection_time = None
        trigger = ""
        if suspects:
            suspect_entries = [e for e in entries if e.stream_id in suspects]
            detection_time = min(e.timestamp_us for e in suspect_entries)
            trigger = "full-history-profile"
        return DetectionReport(
            detector="remote-offloaded",
            detected=bool(suspects),
            detection_time_us=detection_time,
            suspected_streams=suspects,
            trigger=trigger,
            operations_analyzed=len(entries),
        )
