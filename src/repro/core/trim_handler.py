"""Enhanced trim handling.

The trim command lets the host tell an SSD that a range of logical
pages is dead, which normally makes the data immediately reclaimable --
exactly what the trimming attack wants.  RSSD does not disable trim (it
is important for performance); instead it *enhances* it: the trimmed
logical addresses are remapped so reads return zeroes, but the old
physical pages are retained like any other stale data and offloaded in
time order.

Three modes are provided so the ablation benchmark can compare them:

* ``ENHANCED`` -- RSSD's remap-and-retain (the default).
* ``NAIVE``    -- commodity behaviour: trimmed data is erased eagerly.
* ``DISABLED`` -- trim commands are rejected (a strawman defense that
  breaks TRIM-dependent software and still loses to overwrites).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Set

from repro.ssd.device import SSD
from repro.ssd.errors import SSDError
from repro.ssd.ftl import InvalidationCause, StalePage


class TrimMode(enum.Enum):
    """How the device responds to trim commands."""

    ENHANCED = "enhanced"
    NAIVE = "naive"
    DISABLED = "disabled"


class TrimRejectedError(SSDError):
    """Raised in ``DISABLED`` mode when the host issues a trim."""


@dataclass
class TrimStats:
    """Counters kept by the trim handler."""

    trim_commands: int = 0
    pages_trimmed: int = 0
    pages_retained: int = 0
    pages_rejected: int = 0
    remap_operations: int = 0


class EnhancedTrimHandler:
    """Implements RSSD's trim semantics on top of an :class:`SSD`."""

    #: Firmware cost charged per trimmed page for the remap bookkeeping.
    REMAP_US_PER_PAGE = 0.6

    def __init__(self, ssd: SSD, mode: TrimMode = TrimMode.ENHANCED) -> None:
        self.ssd = ssd
        self.mode = mode
        self.stats = TrimStats()
        self._trimmed_lbas: Set[int] = set()
        self._apply_mode()

    def _apply_mode(self) -> None:
        # Eager trim GC is the commodity behaviour the trimming attack
        # depends on; both ENHANCED and DISABLED turn it off.
        self.ssd.eager_trim_gc = self.mode is TrimMode.NAIVE

    def set_mode(self, mode: TrimMode) -> None:
        """Switch trim mode (used by the ablation benchmark)."""
        self.mode = mode
        self._apply_mode()

    def trim(self, lba: int, npages: int = 1, stream_id: int = 0) -> List[StalePage]:
        """Handle one trim command according to the configured mode."""
        self.stats.trim_commands += 1
        if self.mode is TrimMode.DISABLED:
            self.stats.pages_rejected += npages
            raise TrimRejectedError(
                "trim commands are administratively disabled on this device"
            )
        records = self.ssd.trim(lba, npages, stream_id=stream_id)
        self.stats.pages_trimmed += npages
        if self.mode is TrimMode.ENHANCED:
            self.stats.pages_retained += len(records)
            self.stats.remap_operations += len(records)
            self.ssd.clock.advance(int(self.REMAP_US_PER_PAGE * max(1, len(records))))
            for offset in range(npages):
                self._trimmed_lbas.add(lba + offset)
        return records

    # -- invariants used by tests and the trim ablation -----------------------------

    @property
    def trimmed_lbas(self) -> Set[int]:
        """Logical pages trimmed while in ENHANCED mode."""
        return set(self._trimmed_lbas)

    def trimmed_data_retained(self) -> bool:
        """True if every enhanced-trimmed page still has a retained old version.

        Checks the FTL's stale pool and the retention archive through
        the installed retention policy; in ENHANCED mode this must hold
        for every trimmed page that had data.
        """
        if self.mode is not TrimMode.ENHANCED:
            return False
        retained_lbas = set()
        for record in self.ssd.ftl.iter_stale():
            if record.cause is InvalidationCause.TRIM and not record.released:
                retained_lbas.add(record.lpn)
        policy = self.ssd.ftl.retention_policy
        archive_lookup = getattr(policy, "versions_for", None)
        for lba in self._trimmed_lbas:
            if lba in retained_lbas:
                continue
            if archive_lookup is not None and any(
                not version.released or version.offloaded
                for version in archive_lookup(lba)
            ):
                continue
            return False
        return True
