"""Enhanced trim handling.

The trim command lets the host tell an SSD that a range of logical
pages is dead, which normally makes the data immediately reclaimable --
exactly what the trimming attack wants.  RSSD does not disable trim (it
is important for performance); instead it *enhances* it: the trimmed
logical addresses are remapped so reads return zeroes, but the old
physical pages are retained like any other stale data and offloaded in
time order.

Three modes are provided so the ablation benchmark can compare them:

* ``ENHANCED`` -- RSSD's remap-and-retain (the default).
* ``NAIVE``    -- commodity behaviour: trimmed data is erased eagerly.
* ``DISABLED`` -- trim commands are rejected (a strawman defense that
  breaks TRIM-dependent software and still loses to overwrites).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Set

from repro.ssd.device import SSD
from repro.ssd.errors import SSDError
from repro.ssd.ftl import InvalidationCause, StalePage


class TrimMode(enum.Enum):
    """How the device responds to trim commands."""

    ENHANCED = "enhanced"
    NAIVE = "naive"
    DISABLED = "disabled"


class TrimRejectedError(SSDError):
    """Raised in ``DISABLED`` mode when the host issues a trim."""


@dataclass
class TrimStats:
    """Counters kept by the trim handler."""

    trim_commands: int = 0
    #: Pages that actually had a mapping and produced a stale record.
    pages_trimmed: int = 0
    #: Trimmed LBAs that were already unmapped (no data to invalidate).
    pages_unmapped: int = 0
    pages_retained: int = 0
    pages_rejected: int = 0
    remap_operations: int = 0


class EnhancedTrimHandler:
    """Implements RSSD's trim semantics on top of an :class:`SSD`."""

    #: Firmware cost charged per trimmed page for the remap bookkeeping.
    REMAP_US_PER_PAGE = 0.6

    def __init__(self, ssd: SSD, mode: TrimMode = TrimMode.ENHANCED) -> None:
        self.ssd = ssd
        self.mode = mode
        self.stats = TrimStats()
        self._trimmed_lbas: Set[int] = set()
        # Remap cost below 1 us per command must not truncate away:
        # fractional microseconds accumulate here and are charged to the
        # clock once they add up to whole microseconds.
        self._remap_cost_accum_us = 0.0
        self._apply_mode()

    def _apply_mode(self) -> None:
        # Eager trim GC is the commodity behaviour the trimming attack
        # depends on; both ENHANCED and DISABLED turn it off.
        self.ssd.eager_trim_gc = self.mode is TrimMode.NAIVE

    def set_mode(self, mode: TrimMode) -> None:
        """Switch trim mode (used by the ablation benchmark)."""
        self.mode = mode
        self._apply_mode()

    def trim(self, lba: int, npages: int = 1, stream_id: int = 0) -> List[StalePage]:
        """Handle one trim command according to the configured mode."""
        self._check_accepts_trim(npages)
        records = self.ssd.trim(lba, npages, stream_id=stream_id)
        self._account_trim(lba, npages, records)
        return records

    def trim_range(self, lba: int, npages: int = 1, stream_id: int = 0) -> List[StalePage]:
        """Batched form of :meth:`trim` built on the SSD's vectorized path.

        Semantics and accounting are identical to :meth:`trim`; only the
        per-page Python overhead differs.
        """
        self._check_accepts_trim(npages)
        records = self.ssd.trim_range(lba, npages, stream_id=stream_id)
        self._account_trim(lba, npages, records)
        return records

    def _check_accepts_trim(self, npages: int) -> None:
        self.stats.trim_commands += 1
        if self.mode is TrimMode.DISABLED:
            self.stats.pages_rejected += npages
            raise TrimRejectedError(
                "trim commands are administratively disabled on this device"
            )

    def _account_trim(self, lba: int, npages: int, records: List[StalePage]) -> None:
        self.stats.pages_trimmed += len(records)
        self.stats.pages_unmapped += npages - len(records)
        if self.mode is TrimMode.ENHANCED:
            self.stats.pages_retained += len(records)
            self.stats.remap_operations += len(records)
            self._charge_remap_cost(max(1, len(records)))
            self._trimmed_lbas.update(range(lba, lba + npages))

    def _charge_remap_cost(self, remapped_pages: int) -> None:
        """Advance the clock by the firmware remap cost, without truncation.

        The cost per page is sub-microsecond, so whole microseconds are
        charged as they accumulate across commands rather than being
        truncated away per command (a single-page trim used to charge 0).
        """
        self._remap_cost_accum_us += self.REMAP_US_PER_PAGE * remapped_pages
        whole_us = int(self._remap_cost_accum_us)
        if whole_us:
            self._remap_cost_accum_us -= whole_us
            self.ssd.clock.advance(whole_us)

    # -- invariants used by tests and the trim ablation -----------------------------

    @property
    def trimmed_lbas(self) -> Set[int]:
        """Logical pages trimmed while in ENHANCED mode."""
        return set(self._trimmed_lbas)

    def trimmed_data_retained(self) -> bool:
        """True if every enhanced-trimmed page still has a retained old version.

        Checks the FTL's stale pool and the retention archive through
        the installed retention policy; in ENHANCED mode this must hold
        for every trimmed page that had data.
        """
        if self.mode is not TrimMode.ENHANCED:
            return False
        retained_lbas = set()
        for record in self.ssd.ftl.iter_stale():
            if record.cause is InvalidationCause.TRIM and not record.released:
                retained_lbas.add(record.lpn)
        policy = self.ssd.ftl.retention_policy
        archive_lookup = getattr(policy, "versions_for", None)
        for lba in self._trimmed_lbas:
            if lba in retained_lbas:
                continue
            if archive_lookup is not None and any(
                not version.released or version.offloaded
                for version in archive_lookup(lba)
            ):
                continue
            return False
        return True
