"""RSSD core: the paper's primary contribution.

The core package layers the ransomware-aware machinery on top of the
SSD substrate:

* :mod:`repro.core.config` -- configuration of the whole device.
* :mod:`repro.core.oplog` -- hardware-assisted, hash-chained logging of
  every storage operation in arrival order.
* :mod:`repro.core.retention` -- conservative retention of *all* stale
  data (overwritten or trimmed) until it is safely offloaded.
* :mod:`repro.core.trim_handler` -- the enhanced trim command that
  retains trimmed data instead of releasing it.
* :mod:`repro.core.offload` -- hardware-isolated NVMe-oE offloading of
  retained pages and log segments (compressed + encrypted, time order).
* :mod:`repro.core.recovery` -- zero-data-loss recovery after attacks.
* :mod:`repro.core.forensics` -- trusted evidence chain construction
  and per-LBA backtracking for post-attack analysis.
* :mod:`repro.core.detection` -- local lightweight and remote offloaded
  ransomware detection.
* :mod:`repro.core.rssd` -- the :class:`RSSD` facade wiring it all up.
"""

from repro.core.config import RSSDConfig
from repro.core.detection import DetectionReport, LocalDetector, RemoteDetector
from repro.core.forensics import EvidenceChainReport, PostAttackAnalyzer
from repro.core.offload import OffloadEngine, OffloadStats
from repro.core.oplog import LogEntry, LogSegment, OperationLog
from repro.core.recovery import RecoveryEngine, RecoveryReport
from repro.core.retention import RetentionManager
from repro.core.rssd import RSSD, build_rssd
from repro.core.trim_handler import EnhancedTrimHandler

__all__ = [
    "DetectionReport",
    "EnhancedTrimHandler",
    "EvidenceChainReport",
    "LocalDetector",
    "LogEntry",
    "LogSegment",
    "OffloadEngine",
    "OffloadStats",
    "OperationLog",
    "PostAttackAnalyzer",
    "RSSD",
    "RSSDConfig",
    "RecoveryEngine",
    "RecoveryReport",
    "RemoteDetector",
    "RetentionManager",
    "build_rssd",
]
