"""Hardware-assisted operation log.

RSSD records every storage operation it receives, in arrival order, in
a log that lives inside the device (and is therefore hardware-isolated
from the host).  Entries are folded into a SHA-256 hash chain as they
are appended; every ``segment_entries`` entries the log seals a
segment, which becomes eligible for offloading to the remote tier.  The
chain plus the sealed segments form the *trusted evidence chain* that
post-attack analysis replays and verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.compat import DATACLASS_SLOTS
from repro.crypto.hashing import HashChain
from repro.ssd.device import HostOp, HostOpType
from repro.ssd.flash import PageContent


@dataclass(frozen=True, **DATACLASS_SLOTS)
class LogEntry:
    """One logged storage operation."""

    sequence: int
    timestamp_us: int
    op_type: HostOpType
    lba: int
    npages: int
    stream_id: int
    entropy: float
    fingerprint: int

    def to_bytes(self) -> bytes:
        """Canonical byte encoding used for hash chaining."""
        return (
            f"{self.sequence}|{self.timestamp_us}|{self.op_type.value}|"
            f"{self.lba}|{self.npages}|{self.stream_id}|"
            f"{self.entropy:.4f}|{self.fingerprint}"
        ).encode("utf-8")

    @classmethod
    def from_host_op(cls, sequence: int, op: HostOp) -> "LogEntry":
        """Build an entry from a completed host operation."""
        content: Optional[PageContent] = op.content
        return cls(
            sequence=sequence,
            timestamp_us=op.timestamp_us,
            op_type=op.op_type,
            lba=op.lba,
            npages=op.npages,
            stream_id=op.stream_id,
            entropy=content.entropy if content is not None else 0.0,
            fingerprint=content.fingerprint if content is not None else 0,
        )

    @property
    def estimated_bytes(self) -> int:
        """Approximate serialised size of the entry (for offload sizing)."""
        return 48


@dataclass
class LogSegment:
    """A sealed run of log entries, ready for offload."""

    segment_id: int
    entries: List[LogEntry]
    sealed_head: bytes
    offloaded: bool = False

    @property
    def entry_count(self) -> int:
        return len(self.entries)

    @property
    def estimated_bytes(self) -> int:
        return sum(entry.estimated_bytes for entry in self.entries)

    @property
    def first_sequence(self) -> int:
        return self.entries[0].sequence if self.entries else -1

    @property
    def last_sequence(self) -> int:
        return self.entries[-1].sequence if self.entries else -1


class OperationLog:
    """The in-device operation log.

    The log implements the SSD's observer interface, so registering it
    on a device captures every host command with no host cooperation.
    """

    def __init__(self, segment_entries: int = 512, checkpoint_interval: int = 256) -> None:
        if segment_entries < 1:
            raise ValueError("segment_entries must be at least 1")
        self.segment_entries = segment_entries
        self.chain = HashChain(checkpoint_interval=checkpoint_interval)
        self._open_entries: List[LogEntry] = []
        self._segments: List[LogSegment] = []
        self._sequence = 0
        # Struct-of-arrays append path: instead of expanding every
        # multi-page entry into per-page dict appends on the hot path,
        # the append records (lba, npages, sequence) into three int
        # columns; the per-LBA coverage dict is derived lazily from the
        # columns the first time a query needs it (and extended
        # incrementally on later queries).
        self._idx_lba = np.empty(1024, dtype=np.int64)
        self._idx_npages = np.empty(1024, dtype=np.int64)
        self._idx_seq = np.empty(1024, dtype=np.int64)
        self._idx_size = 0
        self._indexed_upto = 0
        self._lba_index: Dict[int, List[int]] = {}

    # -- observer interface --------------------------------------------------

    def on_host_op(self, op: HostOp) -> None:
        """Record one completed host operation."""
        entry = LogEntry.from_host_op(self._sequence, op)
        self.append(entry)

    def append(self, entry: LogEntry) -> None:
        """Append a pre-built entry (used by replay during verification)."""
        if entry.sequence != self._sequence:
            raise ValueError(
                f"log entries must be appended in order: expected sequence "
                f"{self._sequence}, got {entry.sequence}"
            )
        self.chain.append(entry.to_bytes())
        self._open_entries.append(entry)
        size = self._idx_size
        if size == len(self._idx_lba):
            for name in ("_idx_lba", "_idx_npages", "_idx_seq"):
                column = getattr(self, name)
                grown = np.empty(size * 2, dtype=np.int64)
                grown[:size] = column
                setattr(self, name, grown)
        self._idx_lba[size] = entry.lba
        self._idx_npages[size] = entry.npages
        self._idx_seq[size] = entry.sequence
        self._idx_size = size + 1
        self._sequence += 1
        if len(self._open_entries) >= self.segment_entries:
            self.seal_segment()

    # -- segments ---------------------------------------------------------------

    def seal_segment(self) -> Optional[LogSegment]:
        """Seal the currently open entries into an offloadable segment."""
        if not self._open_entries:
            return None
        segment = LogSegment(
            segment_id=len(self._segments),
            entries=list(self._open_entries),
            sealed_head=self.chain.head,
        )
        self._segments.append(segment)
        self._open_entries.clear()
        return segment

    def sealed_segments(self, unoffloaded_only: bool = False) -> List[LogSegment]:
        """All sealed segments, optionally only those not yet offloaded."""
        if unoffloaded_only:
            return [segment for segment in self._segments if not segment.offloaded]
        return list(self._segments)

    @property
    def sealed_segment_count(self) -> int:
        return len(self._segments)

    def sealed_segments_since(self, index: int) -> List[LogSegment]:
        """Sealed segments from position ``index`` on (in sealing order).

        Segments are append-only, so the offload engine polls for new
        work with a cursor instead of rescanning the whole list on every
        drain -- the scan made log offloading quadratic in trace length.
        """
        return self._segments[index:]

    # -- queries ---------------------------------------------------------------

    @property
    def total_entries(self) -> int:
        return self._sequence

    @property
    def open_entries(self) -> int:
        return len(self._open_entries)

    def all_entries(self) -> List[LogEntry]:
        """Every entry, sealed or not, in sequence order."""
        entries: List[LogEntry] = []
        for segment in self._segments:
            entries.extend(segment.entries)
        entries.extend(self._open_entries)
        return entries

    def _sync_lba_index(self) -> None:
        """Extend the per-LBA coverage dict from the unindexed column tail."""
        start = self._indexed_upto
        if start == self._idx_size:
            return
        lbas = self._idx_lba[start : self._idx_size].tolist()
        npages = self._idx_npages[start : self._idx_size].tolist()
        sequences = self._idx_seq[start : self._idx_size].tolist()
        index = self._lba_index
        for lba, count, sequence in zip(lbas, npages, sequences):
            for offset in range(max(1, count)):
                index.setdefault(lba + offset, []).append(sequence)
        self._indexed_upto = self._idx_size

    def entries_for_lba(self, lba: int) -> List[LogEntry]:
        """Every logged operation that touched ``lba``, in order."""
        self._sync_lba_index()
        sequences = self._lba_index.get(lba, [])
        by_sequence = {entry.sequence: entry for entry in self.all_entries()}
        return [by_sequence[seq] for seq in sequences if seq in by_sequence]

    def entries_between(
        self, start_us: Optional[int] = None, end_us: Optional[int] = None
    ) -> List[LogEntry]:
        """Entries whose timestamps fall in [start_us, end_us]."""
        selected = []
        for entry in self.all_entries():
            if start_us is not None and entry.timestamp_us < start_us:
                continue
            if end_us is not None and entry.timestamp_us > end_us:
                continue
            selected.append(entry)
        return selected

    def entries_for_stream(self, stream_id: int) -> List[LogEntry]:
        """Entries attributed to one host stream."""
        return [entry for entry in self.all_entries() if entry.stream_id == stream_id]

    # -- integrity ----------------------------------------------------------------

    def verify_integrity(self, entries: Optional[Iterable[LogEntry]] = None) -> bool:
        """Recompute the hash chain over ``entries`` and compare to the head."""
        entry_list = list(entries) if entries is not None else self.all_entries()
        return self.chain.verify([entry.to_bytes() for entry in entry_list])

    def find_tampering(self, entries: Iterable[LogEntry]) -> Optional[int]:
        """Sequence index of the first tampered entry, or ``None`` if clean."""
        return self.chain.find_divergence([entry.to_bytes() for entry in entries])
