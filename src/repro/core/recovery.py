"""Zero-data-loss recovery.

After an attack is identified (by detection, by the user, or by
forensic analysis), the recovery engine rolls affected logical pages
back to the newest version that existed *before* the attack window.
Versions are found in the retention archive; data that is still on
local flash is restored from flash, data whose local copy was already
reclaimed is fetched back from the remote tier over NVMe-oE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.core.offload import OffloadEngine
from repro.core.oplog import OperationLog
from repro.core.retention import RetentionManager
from repro.sim import SimClock
from repro.ssd.device import HostOpType, SSD
from repro.ssd.ftl import StalePage


@dataclass
class RecoveryReport:
    """Outcome of one recovery run."""

    target_timestamp_us: int
    pages_examined: int = 0
    pages_already_clean: int = 0
    pages_restored_local: int = 0
    pages_restored_remote: int = 0
    pages_reverted_to_unmapped: int = 0
    pages_unrecoverable: int = 0
    duration_us: float = 0.0
    restored_lbas: List[int] = field(default_factory=list)

    @property
    def pages_restored(self) -> int:
        return self.pages_restored_local + self.pages_restored_remote

    @property
    def recovered_everything(self) -> bool:
        """True when no affected page was lost (the paper's zero-data-loss claim)."""
        return self.pages_unrecoverable == 0

    @property
    def duration_seconds(self) -> float:
        return self.duration_us / 1_000_000.0


class RecoveryEngine:
    """Rolls user data back to a pre-attack point in time."""

    def __init__(
        self,
        ssd: SSD,
        retention: RetentionManager,
        oplog: OperationLog,
        offload: Optional[OffloadEngine] = None,
    ) -> None:
        self.ssd = ssd
        self.retention = retention
        self.oplog = oplog
        self.offload = offload
        self.clock: SimClock = ssd.clock

    # -- target selection -------------------------------------------------------

    def lbas_modified_since(self, timestamp_us: int) -> List[int]:
        """Logical pages written or trimmed at or after ``timestamp_us``."""
        touched: Set[int] = set()
        for entry in self.oplog.entries_between(start_us=timestamp_us):
            if entry.op_type in (HostOpType.WRITE, HostOpType.TRIM):
                for offset in range(max(1, entry.npages)):
                    touched.add(entry.lba + offset)
        return sorted(touched)

    def lbas_touched_by_stream(self, stream_id: int, since_us: int = 0) -> List[int]:
        """Logical pages a (malicious) stream wrote or trimmed."""
        touched: Set[int] = set()
        for entry in self.oplog.entries_for_stream(stream_id):
            if entry.timestamp_us < since_us:
                continue
            if entry.op_type in (HostOpType.WRITE, HostOpType.TRIM):
                for offset in range(max(1, entry.npages)):
                    touched.add(entry.lba + offset)
        return sorted(touched)

    # -- recovery ------------------------------------------------------------------

    def restore_to(
        self, timestamp_us: int, lbas: Optional[Iterable[int]] = None
    ) -> RecoveryReport:
        """Restore every affected page to its newest pre-``timestamp_us`` version.

        ``lbas`` limits the scope (e.g. to pages a malicious stream
        touched); by default every page modified since the timestamp is
        examined.
        """
        start_us = self.clock.now_us
        report = RecoveryReport(target_timestamp_us=timestamp_us)
        targets = list(lbas) if lbas is not None else self.lbas_modified_since(timestamp_us)
        remote_fetches: List[StalePage] = []
        restores: List[tuple] = []

        for lba in targets:
            report.pages_examined += 1
            live = self.ssd.ftl.lookup(lba)
            if live is not None and live.written_us <= timestamp_us:
                report.pages_already_clean += 1
                continue
            version = self.retention.latest_version_before(lba, timestamp_us)
            if version is None:
                # The page did not exist before the target time: the
                # correct rollback is to drop the attacker-written data.
                if live is not None:
                    self.ssd.trim(lba, 1)
                    report.pages_reverted_to_unmapped += 1
                else:
                    report.pages_already_clean += 1
                continue
            if version.released and not version.offloaded:
                report.pages_unrecoverable += 1
                continue
            needs_remote = version.released and version.offloaded
            restores.append((lba, version, needs_remote))
            if needs_remote:
                remote_fetches.append(version)

        # Fetch everything we need from the remote tier in one batched
        # request, then apply the restores locally.
        if remote_fetches and self.offload is not None:
            completion_us = self.offload.fetch_pages(len(remote_fetches))
            self.clock.advance_to(int(completion_us))

        for lba, version, needs_remote in restores:
            self.ssd.write(lba, version.content)
            report.restored_lbas.append(lba)
            if needs_remote:
                report.pages_restored_remote += 1
            else:
                report.pages_restored_local += 1

        report.duration_us = float(self.clock.now_us - start_us)
        return report

    def undo_attack(
        self, attack_start_us: int, malicious_streams: Iterable[int]
    ) -> RecoveryReport:
        """Convenience wrapper: undo everything the malicious streams did.

        Pages the attacker touched are rolled back to their newest
        version prior to ``attack_start_us``; pages other streams wrote
        are left alone.
        """
        targets: Set[int] = set()
        for stream_id in malicious_streams:
            targets.update(self.lbas_touched_by_stream(stream_id, since_us=attack_start_us))
        return self.restore_to(attack_start_us, lbas=sorted(targets))
