"""Configuration of an RSSD device."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssd.geometry import SSDGeometry
from repro.ssd.latency import LatencyModel


@dataclass(frozen=True)
class RSSDConfig:
    """All the knobs of an RSSD instance.

    Attributes
    ----------
    geometry, latency:
        SSD substrate parameters.
    link_bandwidth_gbps, link_propagation_us:
        NVMe-oE link to the remote tier.  The paper's prototype uses the
        board's Ethernet port (1 GbE); retention time scales with this.
    offload_batch_pages:
        Retained pages packed into one offload capsule.
    log_segment_entries:
        Log entries per sealed, offloadable log segment.
    checkpoint_interval:
        Hash-chain checkpoint frequency (entries).
    local_retention_fraction:
        Fraction of over-provisioned capacity RSSD allows the local
        stale-page pool to occupy before it starts throttling host
        writes to let the offload path catch up.
    storage_server_capacity_bytes:
        Capacity of the nearby storage server; overflow goes to the
        cloud object store.
    gc_threshold_blocks:
        Free-block threshold below which GC runs.
    encryption_passphrase:
        Key material for the offload path cipher (simulation only).
    """

    geometry: SSDGeometry = field(default_factory=SSDGeometry.small)
    latency: LatencyModel = field(default_factory=LatencyModel)
    link_bandwidth_gbps: float = 1.0
    link_propagation_us: float = 200.0
    offload_batch_pages: int = 64
    log_segment_entries: int = 512
    checkpoint_interval: int = 256
    local_retention_fraction: float = 0.6
    storage_server_capacity_bytes: int = 4 * 1024**4
    gc_threshold_blocks: int = 4
    encryption_passphrase: str = "rssd-offload-key"

    def __post_init__(self) -> None:
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("link_bandwidth_gbps must be positive")
        if self.offload_batch_pages < 1:
            raise ValueError("offload_batch_pages must be at least 1")
        if self.log_segment_entries < 1:
            raise ValueError("log_segment_entries must be at least 1")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if not 0.0 < self.local_retention_fraction <= 1.0:
            raise ValueError("local_retention_fraction must be within (0, 1]")
        if self.gc_threshold_blocks < 2:
            raise ValueError("gc_threshold_blocks must be at least 2")

    @classmethod
    def tiny(cls) -> "RSSDConfig":
        """Minimal configuration for unit tests."""
        return cls(
            geometry=SSDGeometry.tiny(),
            offload_batch_pages=8,
            log_segment_entries=32,
            checkpoint_interval=16,
        )

    @classmethod
    def small(cls) -> "RSSDConfig":
        """Small configuration for examples and integration tests."""
        return cls(geometry=SSDGeometry.small())

    @classmethod
    def paper_prototype(cls) -> "RSSDConfig":
        """Configuration approximating the paper's Cosmos+ OpenSSD prototype."""
        return cls(
            geometry=SSDGeometry.cosmos_openssd(),
            latency=LatencyModel.cosmos_openssd(),
            link_bandwidth_gbps=1.0,
            offload_batch_pages=256,
            log_segment_entries=4096,
            checkpoint_interval=1024,
        )
