"""Hardware-isolated NVMe-oE offload engine.

The offload engine drains retained stale pages and sealed log segments
to the remote tier:

1. pages are taken from the retention manager *in time order* (oldest
   invalidation first), preserving the ordering the evidence chain and
   recovery rely on;
2. each batch is compressed and encrypted inside the device;
3. the batch is packed into an NVMe-oE capsule and transmitted through
   the embedded NIC -- a path the host cannot touch;
4. on arrival the remote tier stores the capsule and the pages are
   marked offloaded, which finally makes their local copies releasable
   by garbage collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.oplog import LogSegment, OperationLog
from repro.core.retention import RetentionManager
from repro.crypto.cipher import StreamCipher
from repro.crypto.compression import CompressionModel
from repro.nvmeoe.nic import EmbeddedNIC, FirmwareToken
from repro.nvmeoe.protocol import NVMeOEProtocol
from repro.nvmeoe.remote import TieredRemote
from repro.sim import SimClock
from repro.ssd.ftl import StalePage


@dataclass
class OffloadStats:
    """Counters kept by the offload engine."""

    page_capsules: int = 0
    log_capsules: int = 0
    pages_offloaded: int = 0
    log_entries_offloaded: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    wire_bytes: int = 0
    last_arrival_us: float = 0.0

    @property
    def compression_ratio(self) -> float:
        """Compressed bytes / raw bytes across everything shipped so far."""
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes


class OffloadEngine:
    """Drains retained data and log segments over the NVMe-oE path."""

    def __init__(
        self,
        clock: SimClock,
        nic: EmbeddedNIC,
        remote: TieredRemote,
        retention: RetentionManager,
        batch_pages: int = 64,
        compression: Optional[CompressionModel] = None,
        cipher: Optional[StreamCipher] = None,
    ) -> None:
        if batch_pages < 1:
            raise ValueError("batch_pages must be at least 1")
        self.clock = clock
        self.nic = nic
        self.remote = remote
        self.retention = retention
        self.batch_pages = batch_pages
        self.compression = compression if compression is not None else CompressionModel()
        self.cipher = (
            cipher if cipher is not None else StreamCipher.from_passphrase("rssd-offload")
        )
        self.protocol = NVMeOEProtocol()
        self.stats = OffloadStats()
        #: The ``remote-offload`` ablation clears this; a disabled engine
        #: ships nothing (drains return 0) so retained data piles up
        #: locally and GC pressure must be resolved some other way.
        self.enabled = True
        # The engine is part of the firmware, so it holds the single
        # firmware capability for the embedded NIC.
        self._token: FirmwareToken = nic.issue_firmware_token()
        self._nonce = 0
        # Position of the next unexamined sealed log segment: segments
        # seal append-only, so everything before the cursor has already
        # been shipped and never needs rescanning.
        self._log_segment_cursor = 0
        #: Passive callbacks invoked once per shipped capsule with
        #: ``(kind, count, wire_bytes, arrival_us)``, where ``kind`` is
        #: ``"pages"`` or ``"log-segment"``.  The :mod:`repro.api` event
        #: bus taps this to publish typed ``OffloadEvent`` records;
        #: listeners must not mutate engine state.
        self.listeners: List[Callable[[str, int, int, int], None]] = []

    # -- page offloading ------------------------------------------------------

    def drain(self, max_pages: Optional[int] = None) -> int:
        """Offload up to ``max_pages`` pending stale pages.  Returns pages shipped."""
        if not self.enabled:
            return 0
        shipped = 0
        budget = max_pages if max_pages is not None else self.retention.pending_pages
        while budget > 0:
            batch = self.retention.take_pending(min(self.batch_pages, budget))
            if not batch:
                break
            shipped += self._ship_page_batch(batch)
            budget -= len(batch)
        return shipped

    def drain_all(self) -> int:
        """Offload every pending stale page."""
        if not self.enabled:
            return 0
        total = 0
        while self.retention.pending_pages > 0:
            shipped = self.drain(max_pages=self.retention.pending_pages)
            if shipped == 0:
                break
            total += shipped
        return total

    def _ship_page_batch(self, batch: List[StalePage]) -> int:
        contents = [record.content for record in batch]
        compression = self.compression.compress_pages(contents)
        # Encryption is length-preserving for the stream cipher, so the
        # capsule body is the compressed size; the cipher is exercised on
        # a representative sample so the code path stays honest.
        sample = contents[0]
        if sample.payload is not None:
            self.cipher.encrypt(sample.payload, self._nonce)
        self._nonce += 1
        capsule = self.protocol.offload_pages(
            compressed_bytes=compression.compressed_size,
            page_count=len(batch),
            first_version=batch[0].version,
            last_version=batch[-1].version,
        )
        arrival_us = self.nic.send_capsule(self._token, capsule.wire_payload_bytes)
        self.remote.store_capsule(capsule, arrival_us)
        self.retention.mark_offloaded(batch)
        self.stats.page_capsules += 1
        self.stats.pages_offloaded += len(batch)
        self.stats.raw_bytes += compression.original_size
        self.stats.compressed_bytes += compression.compressed_size
        self.stats.wire_bytes += capsule.wire_payload_bytes
        self.stats.last_arrival_us = max(self.stats.last_arrival_us, arrival_us)
        for listener in self.listeners:
            listener("pages", len(batch), capsule.wire_payload_bytes, arrival_us)
        return len(batch)

    # -- log segment offloading ---------------------------------------------------

    def offload_log_segments(self, oplog: OperationLog) -> int:
        """Ship every sealed-but-unoffloaded log segment.  Returns segments shipped."""
        if not self.enabled:
            return 0
        cursor = self._log_segment_cursor
        if cursor >= oplog.sealed_segment_count:
            return 0
        shipped = 0
        for segment in oplog.sealed_segments_since(cursor):
            if not segment.offloaded:
                self._ship_log_segment(segment)
                shipped += 1
        self._log_segment_cursor = oplog.sealed_segment_count
        return shipped

    def _ship_log_segment(self, segment: LogSegment) -> None:
        raw_bytes = segment.estimated_bytes
        compressed = max(1, int(raw_bytes * 0.5))
        capsule = self.protocol.offload_log_segment(
            compressed_bytes=compressed,
            record_count=segment.entry_count,
            segment_id=segment.segment_id,
        )
        arrival_us = self.nic.send_capsule(self._token, capsule.wire_payload_bytes)
        self.remote.store_capsule(capsule, arrival_us)
        segment.offloaded = True
        self.stats.log_capsules += 1
        self.stats.log_entries_offloaded += segment.entry_count
        self.stats.raw_bytes += raw_bytes
        self.stats.compressed_bytes += compressed
        self.stats.wire_bytes += capsule.wire_payload_bytes
        self.stats.last_arrival_us = max(self.stats.last_arrival_us, arrival_us)
        for listener in self.listeners:
            listener(
                "log-segment", segment.entry_count, capsule.wire_payload_bytes, arrival_us
            )

    # -- recovery-side fetch ---------------------------------------------------------

    def fetch_pages(self, page_count: int, mean_compressed_page_bytes: int = 2048) -> float:
        """Fetch ``page_count`` retained pages back from the remote tier.

        Returns the completion timestamp of the transfer; the recovery
        engine uses it to compute recovery time.
        """
        if page_count < 0:
            raise ValueError("page_count must be non-negative")
        if page_count == 0:
            return float(self.clock.now_us)
        request = self.protocol.fetch_pages(page_count)
        self.nic.send_capsule(self._token, request.wire_payload_bytes)
        response_bytes = page_count * mean_compressed_page_bytes
        return self.nic.receive_capsule(self._token, response_bytes)

    # -- link health ---------------------------------------------------------------------

    @property
    def link_backlog_us(self) -> float:
        """How far behind real time the offload link currently is."""
        return self.nic.link.backlog_us()
