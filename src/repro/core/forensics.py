"""Trusted post-attack analysis.

RSSD's hardware-assisted log captures every storage operation in
arrival order and chains it cryptographically, so after an attack an
investigator can (1) verify the log has not been tampered with,
(2) reconstruct the exact sequence of operations that led to the
attack, (3) backtrack the history of any logical page, and (4)
attribute the attack to the host streams that issued it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from collections import deque

from repro.core.offload import OffloadEngine
from repro.core.oplog import LogEntry, OperationLog
from repro.crypto.entropy import (
    DEFAULT_ENCRYPTED_THRESHOLD,
    DEFAULT_JUMP_THRESHOLD,
    EntropyJumpTracker,
)
from repro.sim import SimClock
from repro.ssd.device import HostOpType


@dataclass(frozen=True)
class StreamProfile:
    """Behavioural summary of one host stream, derived from the log."""

    stream_id: int
    operations: int
    writes: int
    trims: int
    reads: int
    high_entropy_writes: int
    read_then_overwrite: int
    first_us: int
    last_us: int
    #: Writes whose entropy rose by at least the jump threshold over the
    #: previous write to the same page (any stream's) -- the signal that
    #: survives entropy-shaped (mimicry) ciphertext.
    entropy_jump_writes: int = 0
    #: Trimmed pages that some stream had read shortly before the trim
    #: -- the read-then-destroy signature that separates a trim-wiping
    #: attacker from benign discard traffic.
    trims_of_read_data: int = 0

    @property
    def high_entropy_fraction(self) -> float:
        return self.high_entropy_writes / self.writes if self.writes else 0.0

    @property
    def jump_fraction(self) -> float:
        """Fraction of this stream's writes that were entropy jumps."""
        return self.entropy_jump_writes / self.writes if self.writes else 0.0

    @property
    def duration_us(self) -> int:
        return max(0, self.last_us - self.first_us)


@dataclass
class EvidenceChainReport:
    """Result of reconstructing and verifying the evidence chain."""

    total_entries: int
    sealed_segments: int
    offloaded_segments: int
    chain_verified: bool
    tampered_at: Optional[int]
    reconstruction_us: float
    attack_window_us: Optional[tuple]
    suspected_streams: List[int] = field(default_factory=list)
    stream_profiles: Dict[int, StreamProfile] = field(default_factory=dict)

    @property
    def reconstruction_seconds(self) -> float:
        return self.reconstruction_us / 1_000_000.0


class PostAttackAnalyzer:
    """Builds the trusted evidence chain and answers forensic queries."""

    #: Firmware/host-side cost of replaying one log entry during verification.
    REPLAY_US_PER_ENTRY = 2.0
    #: Entropy above which a logged write is counted as encrypted-looking.
    HIGH_ENTROPY_THRESHOLD = DEFAULT_ENCRYPTED_THRESHOLD
    #: Entropy rise over the replaced data that counts as a jump write.
    ENTROPY_JUMP_THRESHOLD = DEFAULT_JUMP_THRESHOLD
    #: Distinct recently-read pages remembered for read-then-trim attribution.
    RECENT_READ_PAGES = 512

    def __init__(
        self,
        oplog: OperationLog,
        clock: SimClock,
        offload: Optional[OffloadEngine] = None,
    ) -> None:
        self.oplog = oplog
        self.clock = clock
        self.offload = offload

    # -- stream profiling ----------------------------------------------------------

    def profile_streams(self, entries: Optional[List[LogEntry]] = None) -> Dict[int, StreamProfile]:
        """Summarise per-stream behaviour over ``entries`` (default: whole log)."""
        entries = entries if entries is not None else self.oplog.all_entries()
        per_stream: Dict[int, List[LogEntry]] = {}
        # Jump and read-then-trim detection need the cross-stream view:
        # the replaced (or wiped) data a malicious stream destroys was
        # usually written -- and read back -- under the user's stream.
        jump_writes: Dict[int, int] = {}
        trims_of_read: Dict[int, int] = {}
        jump_tracker = EntropyJumpTracker()
        recent_read_order: deque = deque()
        recent_read_pages: set = set()
        for entry in entries:
            per_stream.setdefault(entry.stream_id, []).append(entry)
            pages = range(entry.lba, entry.lba + max(1, entry.npages))
            if entry.op_type is HostOpType.WRITE:
                delta = jump_tracker.observe(entry.lba, entry.entropy)
                if delta is not None and delta >= self.ENTROPY_JUMP_THRESHOLD:
                    jump_writes[entry.stream_id] = jump_writes.get(entry.stream_id, 0) + 1
            elif entry.op_type is HostOpType.READ:
                for page in pages:
                    if page not in recent_read_pages:
                        recent_read_pages.add(page)
                        recent_read_order.append(page)
                        if len(recent_read_order) > self.RECENT_READ_PAGES:
                            recent_read_pages.discard(recent_read_order.popleft())
            elif entry.op_type is HostOpType.TRIM:
                hit = sum(1 for page in pages if page in recent_read_pages)
                if hit:
                    trims_of_read[entry.stream_id] = (
                        trims_of_read.get(entry.stream_id, 0) + hit
                    )
        profiles: Dict[int, StreamProfile] = {}
        for stream_id, stream_entries in per_stream.items():
            writes = [e for e in stream_entries if e.op_type is HostOpType.WRITE]
            trims = [e for e in stream_entries if e.op_type is HostOpType.TRIM]
            reads = [e for e in stream_entries if e.op_type is HostOpType.READ]
            high_entropy = [
                e for e in writes if e.entropy >= self.HIGH_ENTROPY_THRESHOLD
            ]
            recently_read = set()
            read_then_overwrite = 0
            for entry in stream_entries:
                pages = range(entry.lba, entry.lba + max(1, entry.npages))
                if entry.op_type is HostOpType.READ:
                    recently_read.update(pages)
                elif entry.op_type is HostOpType.WRITE:
                    if any(page in recently_read for page in pages):
                        read_then_overwrite += 1
            profiles[stream_id] = StreamProfile(
                stream_id=stream_id,
                operations=len(stream_entries),
                writes=len(writes),
                trims=len(trims),
                reads=len(reads),
                high_entropy_writes=len(high_entropy),
                read_then_overwrite=read_then_overwrite,
                first_us=min(e.timestamp_us for e in stream_entries),
                last_us=max(e.timestamp_us for e in stream_entries),
                entropy_jump_writes=jump_writes.get(stream_id, 0),
                trims_of_read_data=trims_of_read.get(stream_id, 0),
            )
        return profiles

    def suspect_streams(
        self,
        profiles: Optional[Dict[int, StreamProfile]] = None,
        min_writes: int = 8,
        entropy_fraction: float = 0.5,
    ) -> List[int]:
        """Streams whose behaviour matches encryption ransomware.

        Three rules, each aimed at a family the defenses' live detectors
        can miss but hindsight should not:

        * **encrypting** -- a large fraction of the stream's writes look
          encrypted (absolute entropy) *or* jumped over the data they
          replaced (which survives entropy-shaped mimicry), and the
          stream destroys originals (overwrites data it read, or trims);
        * **partially encrypting** -- only a minority of writes carry
          either tell (intermittent/partial encryption), but there are
          at least ``min_writes`` of them and the stream destroys
          originals;
        * **wiping** -- the stream trims enough *recently-read* pages:
          read-then-destroy is the trim-wipe signature, and requiring it
          keeps benign discard traffic (deletes without a preceding
          read) off the suspect list even with no encryption tell.
        """
        profiles = profiles if profiles is not None else self.profile_streams()
        suspects = []
        for stream_id, profile in profiles.items():
            if profile.writes < min_writes and profile.trims < min_writes:
                continue
            encryption_tell = max(profile.high_entropy_fraction, profile.jump_fraction)
            destroys_originals = profile.read_then_overwrite > 0 or profile.trims > 0
            encrypting = encryption_tell >= entropy_fraction
            partially_encrypting = (
                encryption_tell >= entropy_fraction / 2.0
                and max(profile.high_entropy_writes, profile.entropy_jump_writes)
                >= min_writes
                and destroys_originals
            )
            wiping = profile.trims_of_read_data >= min_writes
            if (encrypting and destroys_originals) or partially_encrypting or wiping:
                suspects.append(stream_id)
        return sorted(suspects)

    # -- evidence chain ---------------------------------------------------------------

    def build_evidence_chain(
        self, suspected_streams: Optional[List[int]] = None
    ) -> EvidenceChainReport:
        """Reconstruct the full operation sequence and verify its integrity."""
        start_us = self.clock.now_us
        entries = self.oplog.all_entries()
        segments = self.oplog.sealed_segments()
        offloaded = [segment for segment in segments if segment.offloaded]

        # Segments already shipped to the remote tier must be fetched
        # back before they can be replayed.
        if offloaded and self.offload is not None:
            total_entries = sum(segment.entry_count for segment in offloaded)
            completion_us = self.offload.fetch_pages(
                max(1, total_entries // 64), mean_compressed_page_bytes=4096
            )
            self.clock.advance_to(int(completion_us))

        verified = self.oplog.verify_integrity(entries)
        tampered_at = None if verified else self.oplog.find_tampering(entries)
        self.clock.advance(int(self.REPLAY_US_PER_ENTRY * len(entries)))

        profiles = self.profile_streams(entries)
        suspects = (
            suspected_streams
            if suspected_streams is not None
            else self.suspect_streams(profiles)
        )
        window = self._attack_window(entries, suspects)

        return EvidenceChainReport(
            total_entries=len(entries),
            sealed_segments=len(segments),
            offloaded_segments=len(offloaded),
            chain_verified=verified,
            tampered_at=tampered_at,
            reconstruction_us=float(self.clock.now_us - start_us),
            attack_window_us=window,
            suspected_streams=suspects,
            stream_profiles=profiles,
        )

    def _attack_window(
        self, entries: List[LogEntry], suspects: List[int]
    ) -> Optional[tuple]:
        suspect_entries = [entry for entry in entries if entry.stream_id in suspects]
        if not suspect_entries:
            return None
        return (
            min(entry.timestamp_us for entry in suspect_entries),
            max(entry.timestamp_us for entry in suspect_entries),
        )

    # -- per-page backtracking -----------------------------------------------------------

    def backtrack_lba(self, lba: int) -> List[LogEntry]:
        """Every logged operation that touched ``lba``, oldest first."""
        return self.oplog.entries_for_lba(lba)

    def last_clean_timestamp(self, lba: int, suspects: List[int]) -> Optional[int]:
        """Timestamp of the last write to ``lba`` by a non-suspect stream."""
        clean_writes = [
            entry
            for entry in self.backtrack_lba(lba)
            if entry.op_type is HostOpType.WRITE and entry.stream_id not in suspects
        ]
        if not clean_writes:
            return None
        return max(entry.timestamp_us for entry in clean_writes)
