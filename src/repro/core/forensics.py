"""Trusted post-attack analysis.

RSSD's hardware-assisted log captures every storage operation in
arrival order and chains it cryptographically, so after an attack an
investigator can (1) verify the log has not been tampered with,
(2) reconstruct the exact sequence of operations that led to the
attack, (3) backtrack the history of any logical page, and (4)
attribute the attack to the host streams that issued it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.offload import OffloadEngine
from repro.core.oplog import LogEntry, OperationLog
from repro.sim import SimClock
from repro.ssd.device import HostOpType


@dataclass(frozen=True)
class StreamProfile:
    """Behavioural summary of one host stream, derived from the log."""

    stream_id: int
    operations: int
    writes: int
    trims: int
    reads: int
    high_entropy_writes: int
    read_then_overwrite: int
    first_us: int
    last_us: int

    @property
    def high_entropy_fraction(self) -> float:
        return self.high_entropy_writes / self.writes if self.writes else 0.0

    @property
    def duration_us(self) -> int:
        return max(0, self.last_us - self.first_us)


@dataclass
class EvidenceChainReport:
    """Result of reconstructing and verifying the evidence chain."""

    total_entries: int
    sealed_segments: int
    offloaded_segments: int
    chain_verified: bool
    tampered_at: Optional[int]
    reconstruction_us: float
    attack_window_us: Optional[tuple]
    suspected_streams: List[int] = field(default_factory=list)
    stream_profiles: Dict[int, StreamProfile] = field(default_factory=dict)

    @property
    def reconstruction_seconds(self) -> float:
        return self.reconstruction_us / 1_000_000.0


class PostAttackAnalyzer:
    """Builds the trusted evidence chain and answers forensic queries."""

    #: Firmware/host-side cost of replaying one log entry during verification.
    REPLAY_US_PER_ENTRY = 2.0
    #: Entropy above which a logged write is counted as encrypted-looking.
    HIGH_ENTROPY_THRESHOLD = 7.2

    def __init__(
        self,
        oplog: OperationLog,
        clock: SimClock,
        offload: Optional[OffloadEngine] = None,
    ) -> None:
        self.oplog = oplog
        self.clock = clock
        self.offload = offload

    # -- stream profiling ----------------------------------------------------------

    def profile_streams(self, entries: Optional[List[LogEntry]] = None) -> Dict[int, StreamProfile]:
        """Summarise per-stream behaviour over ``entries`` (default: whole log)."""
        entries = entries if entries is not None else self.oplog.all_entries()
        per_stream: Dict[int, List[LogEntry]] = {}
        for entry in entries:
            per_stream.setdefault(entry.stream_id, []).append(entry)
        profiles: Dict[int, StreamProfile] = {}
        for stream_id, stream_entries in per_stream.items():
            writes = [e for e in stream_entries if e.op_type is HostOpType.WRITE]
            trims = [e for e in stream_entries if e.op_type is HostOpType.TRIM]
            reads = [e for e in stream_entries if e.op_type is HostOpType.READ]
            high_entropy = [
                e for e in writes if e.entropy >= self.HIGH_ENTROPY_THRESHOLD
            ]
            recently_read = set()
            read_then_overwrite = 0
            for entry in stream_entries:
                pages = range(entry.lba, entry.lba + max(1, entry.npages))
                if entry.op_type is HostOpType.READ:
                    recently_read.update(pages)
                elif entry.op_type is HostOpType.WRITE:
                    if any(page in recently_read for page in pages):
                        read_then_overwrite += 1
            profiles[stream_id] = StreamProfile(
                stream_id=stream_id,
                operations=len(stream_entries),
                writes=len(writes),
                trims=len(trims),
                reads=len(reads),
                high_entropy_writes=len(high_entropy),
                read_then_overwrite=read_then_overwrite,
                first_us=min(e.timestamp_us for e in stream_entries),
                last_us=max(e.timestamp_us for e in stream_entries),
            )
        return profiles

    def suspect_streams(
        self,
        profiles: Optional[Dict[int, StreamProfile]] = None,
        min_writes: int = 8,
        entropy_fraction: float = 0.5,
    ) -> List[int]:
        """Streams whose behaviour matches encryption ransomware.

        A stream is suspicious if a large fraction of its writes look
        encrypted *and* it overwrites data it previously read, or if it
        issues trims right after encrypted-looking writes.
        """
        profiles = profiles if profiles is not None else self.profile_streams()
        suspects = []
        for stream_id, profile in profiles.items():
            if profile.writes < min_writes:
                continue
            encrypting = profile.high_entropy_fraction >= entropy_fraction
            destroys_originals = profile.read_then_overwrite > 0 or profile.trims > 0
            if encrypting and destroys_originals:
                suspects.append(stream_id)
        return sorted(suspects)

    # -- evidence chain ---------------------------------------------------------------

    def build_evidence_chain(
        self, suspected_streams: Optional[List[int]] = None
    ) -> EvidenceChainReport:
        """Reconstruct the full operation sequence and verify its integrity."""
        start_us = self.clock.now_us
        entries = self.oplog.all_entries()
        segments = self.oplog.sealed_segments()
        offloaded = [segment for segment in segments if segment.offloaded]

        # Segments already shipped to the remote tier must be fetched
        # back before they can be replayed.
        if offloaded and self.offload is not None:
            total_entries = sum(segment.entry_count for segment in offloaded)
            completion_us = self.offload.fetch_pages(
                max(1, total_entries // 64), mean_compressed_page_bytes=4096
            )
            self.clock.advance_to(int(completion_us))

        verified = self.oplog.verify_integrity(entries)
        tampered_at = None if verified else self.oplog.find_tampering(entries)
        self.clock.advance(int(self.REPLAY_US_PER_ENTRY * len(entries)))

        profiles = self.profile_streams(entries)
        suspects = (
            suspected_streams
            if suspected_streams is not None
            else self.suspect_streams(profiles)
        )
        window = self._attack_window(entries, suspects)

        return EvidenceChainReport(
            total_entries=len(entries),
            sealed_segments=len(segments),
            offloaded_segments=len(offloaded),
            chain_verified=verified,
            tampered_at=tampered_at,
            reconstruction_us=float(self.clock.now_us - start_us),
            attack_window_us=window,
            suspected_streams=suspects,
            stream_profiles=profiles,
        )

    def _attack_window(
        self, entries: List[LogEntry], suspects: List[int]
    ) -> Optional[tuple]:
        suspect_entries = [entry for entry in entries if entry.stream_id in suspects]
        if not suspect_entries:
            return None
        return (
            min(entry.timestamp_us for entry in suspect_entries),
            max(entry.timestamp_us for entry in suspect_entries),
        )

    # -- per-page backtracking -----------------------------------------------------------

    def backtrack_lba(self, lba: int) -> List[LogEntry]:
        """Every logged operation that touched ``lba``, oldest first."""
        return self.oplog.entries_for_lba(lba)

    def last_clean_timestamp(self, lba: int, suspects: List[int]) -> Optional[int]:
        """Timestamp of the last write to ``lba`` by a non-suspect stream."""
        clean_writes = [
            entry
            for entry in self.backtrack_lba(lba)
            if entry.op_type is HostOpType.WRITE and entry.stream_id not in suspects
        ]
        if not clean_writes:
            return None
        return max(entry.timestamp_us for entry in clean_writes)
