"""Conservative retention of stale data.

The :class:`RetentionManager` is RSSD's retention policy: every page
invalidated by an overwrite *or a trim* is retained.  A stale page may
only be physically destroyed after the offload engine has shipped it to
the remote tier; until then garbage collection must preserve it.  The
manager also keeps the version archive (local and offloaded) that the
recovery engine searches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

import numpy as np

from repro.ssd.ftl import FTL, InvalidationCause, StalePage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.offload import OffloadEngine


@dataclass
class RetentionStats:
    """Counters kept by the retention manager."""

    stale_pages_seen: int = 0
    pages_offloaded: int = 0
    pages_released_after_offload: int = 0
    pages_released_unoffloaded: int = 0
    relocations: int = 0
    reclaim_pressure_events: int = 0

    @property
    def data_loss_pages(self) -> int:
        """Retained pages destroyed before reaching the remote tier.

        RSSD's invariant is that this stays at zero; the counter exists
        so tests can assert it and so misconfigured variants (used in
        ablations) can be measured.
        """
        return self.pages_released_unoffloaded


class RetentionManager:
    """RSSD's retention policy plus the version archive.

    Implements the :class:`repro.ssd.ftl.RetentionPolicy` protocol.
    """

    def __init__(
        self,
        offload_engine: Optional["OffloadEngine"] = None,
        retain_trimmed: bool = True,
    ) -> None:
        self._offload_engine = offload_engine
        #: RSSD's enhanced trim retains trimmed data; the trim ablation
        #: disables this to measure what the enhancement buys.
        self.retain_trimmed = retain_trimmed
        self.stats = RetentionStats()
        self._pending: Deque[StalePage] = deque()
        self._archive: Dict[int, List[StalePage]] = {}
        self._expendable: set = set()

    # -- wiring ----------------------------------------------------------------

    def attach_offload_engine(self, engine: "OffloadEngine") -> None:
        """Connect the offload engine (done by the RSSD facade at build time)."""
        self._offload_engine = engine

    # -- RetentionPolicy protocol ------------------------------------------------

    def on_invalidate(self, record: StalePage) -> None:
        """Retain a newly stale page and queue it for offload, in time order."""
        self.stats.stale_pages_seen += 1
        if not self.retain_trimmed and record.cause is InvalidationCause.TRIM:
            self._expendable.add(id(record))
            return
        self._pending.append(record)
        self._archive.setdefault(record.lpn, []).append(record)

    def may_release(self, record: StalePage) -> bool:
        """Stale data may be destroyed only once it is safe on the remote tier."""
        if id(record) in self._expendable:
            return True
        return record.offloaded

    def count_releasable(self, records: List[StalePage]) -> int:
        """Batched :meth:`may_release` used by GC victim accounting.

        GC scores candidate blocks on every pass, so the per-record
        policy call is replaced by one tight scan with identical
        semantics.
        """
        expendable = self._expendable
        if expendable:
            return sum(
                1 for record in records
                if record.offloaded or id(record) in expendable
            )
        return sum(1 for record in records if record.offloaded)

    def on_release(self, record: StalePage) -> None:
        if id(record) in self._expendable:
            self._expendable.discard(id(record))
            return
        if record.offloaded:
            self.stats.pages_released_after_offload += 1
        else:
            self.stats.pages_released_unoffloaded += 1

    def on_relocate(self, record: StalePage, new_ppn: int) -> None:
        self.stats.relocations += 1

    def reclaim_pressure(self, ftl: FTL, needed_pages: int) -> int:
        """GC cannot find releasable space: drain the offload path synchronously.

        This is RSSD's answer to the GC attack -- instead of dropping
        retained data, the device momentarily throttles foreground
        writes while the NVMe-oE path catches up.
        """
        self.stats.reclaim_pressure_events += 1
        if self._offload_engine is None:
            return 0
        target = max(needed_pages, self._offload_engine.batch_pages)
        return self._offload_engine.drain(max_pages=target)

    # -- offload integration ---------------------------------------------------------

    def take_pending(self, max_pages: int) -> List[StalePage]:
        """Hand up to ``max_pages`` un-offloaded stale pages, oldest first."""
        if max_pages < 1:
            raise ValueError("max_pages must be at least 1")
        batch: List[StalePage] = []
        while self._pending and len(batch) < max_pages:
            record = self._pending.popleft()
            if record.offloaded:
                continue
            batch.append(record)
        return batch

    def requeue(self, records: List[StalePage]) -> None:
        """Put records back at the head of the queue (offload failure path)."""
        for record in reversed(records):
            self._pending.appendleft(record)

    def mark_offloaded(self, records: List[StalePage]) -> None:
        """Mark records as durably stored on the remote tier."""
        for record in records:
            record.offloaded = True
            self.stats.pages_offloaded += 1

    # -- queries -----------------------------------------------------------------------

    def retained_entropy_profile(
        self, ftl: FTL, encrypted_threshold: float = 7.2
    ) -> Dict[str, float]:
        """Vectorized entropy profile of the locally retained stale pool.

        With RSSD's retain-everything policy the FTL's stale pool *is*
        the retained set, so the profile aggregates straight off the
        simulation kernel's per-page entropy column (mean entropy and
        encrypted-looking fraction) without walking the record objects
        -- the accounting that post-attack forensics and the detection
        quality reports summarise.
        """
        return ftl.stale_entropy_profile(encrypted_threshold)

    def pending_entropy_profile(
        self, ftl: FTL, encrypted_threshold: float = 7.2
    ) -> Dict[str, float]:
        """Same profile restricted to pages still waiting for offload."""
        ppns = np.fromiter(
            (record.ppn for record in self._pending if not record.offloaded),
            dtype=np.int64,
        )
        return ftl.kernel.entropy_profile(ppns, encrypted_threshold)

    @property
    def pending_pages(self) -> int:
        """Stale pages still waiting to be offloaded.

        O(1): records only enter the queue unoffloaded and are only
        marked offloaded after :meth:`take_pending` has removed them, so
        the queue length is exactly the unoffloaded total (the offload
        engine polls this on every drain, so it must not rescan).
        """
        return len(self._pending)

    @property
    def archived_lbas(self) -> int:
        return len(self._archive)

    @property
    def archived_versions(self) -> int:
        return sum(len(versions) for versions in self._archive.values())

    def versions_for(self, lpn: int) -> List[StalePage]:
        """Every retained stale version of ``lpn``, oldest first."""
        versions = list(self._archive.get(lpn, []))
        versions.sort(key=lambda record: record.version)
        return versions

    def latest_version_before(self, lpn: int, timestamp_us: int) -> Optional[StalePage]:
        """Newest retained version of ``lpn`` written at or before ``timestamp_us``."""
        best: Optional[StalePage] = None
        for record in self._archive.get(lpn, []):
            if record.written_us <= timestamp_us:
                if best is None or record.written_us > best.written_us:
                    best = record
        return best

    def retained_lbas(self) -> List[int]:
        """All logical pages that have at least one retained old version."""
        return sorted(self._archive)
