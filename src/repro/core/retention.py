"""Conservative retention of stale data.

The :class:`RetentionManager` is RSSD's retention policy: every page
invalidated by an overwrite *or a trim* is retained.  A stale page may
only be physically destroyed after the offload engine has shipped it to
the remote tier; until then garbage collection must preserve it.  The
manager also keeps the version archive (local and offloaded) that the
recovery engine searches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

import numpy as np

from repro.ssd.ftl import FTL, InvalidationCause, StalePage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.offload import OffloadEngine


@dataclass
class RetentionStats:
    """Counters kept by the retention manager."""

    stale_pages_seen: int = 0
    pages_offloaded: int = 0
    pages_released_after_offload: int = 0
    pages_released_unoffloaded: int = 0
    relocations: int = 0
    reclaim_pressure_events: int = 0
    pages_pressure_evicted: int = 0

    @property
    def data_loss_pages(self) -> int:
        """Retained pages destroyed before reaching the remote tier.

        RSSD's invariant is that this stays at zero; the counter exists
        so tests can assert it and so misconfigured variants (used in
        ablations) can be measured.
        """
        return self.pages_released_unoffloaded


class RetentionManager:
    """RSSD's retention policy plus the version archive.

    Implements the :class:`repro.ssd.ftl.RetentionPolicy` protocol.
    """

    def __init__(
        self,
        offload_engine: Optional["OffloadEngine"] = None,
        retain_trimmed: bool = True,
        retain_overwrites: bool = True,
    ) -> None:
        self._offload_engine = offload_engine
        #: RSSD's enhanced trim retains trimmed data; the trim ablation
        #: disables this to measure what the enhancement buys.
        self.retain_trimmed = retain_trimmed
        #: Selective retention of overwrite-invalidated pages; the
        #: ``selective-retention`` ablation disables this, making
        #: overwritten versions expendable exactly like a stock SSD.
        self.retain_overwrites = retain_overwrites
        #: The ``retention-eviction`` ablation sets this: under GC
        #: pressure the manager force-evicts the oldest pending pages
        #: (counted as data loss) instead of draining the NVMe-oE path.
        self.evict_under_pressure = False
        self.stats = RetentionStats()
        self._pending: Deque[StalePage] = deque()
        self._archive: Dict[int, List[StalePage]] = {}
        self._expendable: set = set()
        self._pressure_evicted: set = set()

    # -- wiring ----------------------------------------------------------------

    def attach_offload_engine(self, engine: "OffloadEngine") -> None:
        """Connect the offload engine (done by the RSSD facade at build time)."""
        self._offload_engine = engine

    # -- RetentionPolicy protocol ------------------------------------------------

    def on_invalidate(self, record: StalePage) -> None:
        """Retain a newly stale page and queue it for offload, in time order."""
        self.stats.stale_pages_seen += 1
        if record.cause is InvalidationCause.TRIM:
            retain = self.retain_trimmed
        else:
            retain = self.retain_overwrites
        if not retain:
            self._expendable.add(id(record))
            return
        self._pending.append(record)
        self._archive.setdefault(record.lpn, []).append(record)

    def may_release(self, record: StalePage) -> bool:
        """Stale data may be destroyed only once it is safe on the remote tier."""
        if id(record) in self._expendable:
            return True
        if record.offloaded:
            return True
        return id(record) in self._pressure_evicted

    def count_releasable(self, records: List[StalePage]) -> int:
        """Batched :meth:`may_release` used by GC victim accounting.

        GC scores candidate blocks on every pass, so the per-record
        policy call is replaced by one tight scan with identical
        semantics.
        """
        expendable = self._expendable
        evicted = self._pressure_evicted
        if expendable or evicted:
            return sum(
                1 for record in records
                if record.offloaded
                or id(record) in expendable
                or id(record) in evicted
            )
        return sum(1 for record in records if record.offloaded)

    def on_release(self, record: StalePage) -> None:
        if id(record) in self._expendable:
            self._expendable.discard(id(record))
            return
        if id(record) in self._pressure_evicted:
            self._pressure_evicted.discard(id(record))
            self.stats.pages_released_unoffloaded += 1
            return
        if record.offloaded:
            self.stats.pages_released_after_offload += 1
        else:
            self.stats.pages_released_unoffloaded += 1

    def on_relocate(self, record: StalePage, new_ppn: int) -> None:
        self.stats.relocations += 1

    def reclaim_pressure(self, ftl: FTL, needed_pages: int) -> int:
        """GC cannot find releasable space: drain the offload path synchronously.

        This is RSSD's answer to the GC attack -- instead of dropping
        retained data, the device momentarily throttles foreground
        writes while the NVMe-oE path catches up.  Two ablation variants
        change the answer: when :attr:`evict_under_pressure` is set (or
        the offload engine is disabled) the manager instead force-evicts
        the oldest pending pages, which is honest data loss and is
        counted as such.
        """
        self.stats.reclaim_pressure_events += 1
        if self._offload_engine is None:
            return 0
        if self.evict_under_pressure or not self._offload_engine.enabled:
            return self._evict_pending(needed_pages)
        target = max(needed_pages, self._offload_engine.batch_pages)
        return self._offload_engine.drain(max_pages=target)

    def _evict_pending(self, needed_pages: int) -> int:
        """Force-evict the oldest pending pages, counting each as data loss.

        The evicted records become releasable by GC without ever reaching
        the remote tier; :meth:`on_release` books them under
        ``pages_released_unoffloaded`` so
        :attr:`RetentionStats.data_loss_pages` measures the damage.
        """
        evicted = 0
        while self._pending and evicted < needed_pages:
            record = self._pending.popleft()
            if record.offloaded:
                continue
            self._pressure_evicted.add(id(record))
            self.stats.pages_pressure_evicted += 1
            evicted += 1
        return evicted

    # -- offload integration ---------------------------------------------------------

    def take_pending(self, max_pages: int) -> List[StalePage]:
        """Hand up to ``max_pages`` un-offloaded stale pages, oldest first."""
        if max_pages < 1:
            raise ValueError("max_pages must be at least 1")
        batch: List[StalePage] = []
        while self._pending and len(batch) < max_pages:
            record = self._pending.popleft()
            if record.offloaded:
                continue
            batch.append(record)
        return batch

    def requeue(self, records: List[StalePage]) -> None:
        """Put records back at the head of the queue (offload failure path)."""
        for record in reversed(records):
            self._pending.appendleft(record)

    def mark_offloaded(self, records: List[StalePage]) -> None:
        """Mark records as durably stored on the remote tier."""
        for record in records:
            record.offloaded = True
            self.stats.pages_offloaded += 1

    # -- queries -----------------------------------------------------------------------

    def retained_entropy_profile(
        self, ftl: FTL, encrypted_threshold: float = 7.2
    ) -> Dict[str, float]:
        """Vectorized entropy profile of the locally retained stale pool.

        With RSSD's retain-everything policy the FTL's stale pool *is*
        the retained set, so the profile aggregates straight off the
        simulation kernel's per-page entropy column (mean entropy and
        encrypted-looking fraction) without walking the record objects
        -- the accounting that post-attack forensics and the detection
        quality reports summarise.
        """
        return ftl.stale_entropy_profile(encrypted_threshold)

    def pending_entropy_profile(
        self, ftl: FTL, encrypted_threshold: float = 7.2
    ) -> Dict[str, float]:
        """Same profile restricted to pages still waiting for offload."""
        ppns = np.fromiter(
            (record.ppn for record in self._pending if not record.offloaded),
            dtype=np.int64,
        )
        return ftl.kernel.entropy_profile(ppns, encrypted_threshold)

    @property
    def pending_pages(self) -> int:
        """Stale pages still waiting to be offloaded.

        O(1): records only enter the queue unoffloaded and are only
        marked offloaded after :meth:`take_pending` has removed them, so
        the queue length is exactly the unoffloaded total (the offload
        engine polls this on every drain, so it must not rescan).
        """
        return len(self._pending)

    @property
    def archived_lbas(self) -> int:
        return len(self._archive)

    @property
    def archived_versions(self) -> int:
        return sum(len(versions) for versions in self._archive.values())

    def versions_for(self, lpn: int) -> List[StalePage]:
        """Every retained stale version of ``lpn``, oldest first."""
        versions = list(self._archive.get(lpn, []))
        versions.sort(key=lambda record: record.version)
        return versions

    def latest_version_before(self, lpn: int, timestamp_us: int) -> Optional[StalePage]:
        """Newest retained version of ``lpn`` written at or before ``timestamp_us``."""
        best: Optional[StalePage] = None
        for record in self._archive.get(lpn, []):
            if record.written_us <= timestamp_us:
                if best is None or record.written_us > best.written_us:
                    best = record
        return best

    def retained_lbas(self) -> List[int]:
        """All logical pages that have at least one retained old version."""
        return sorted(self._archive)
