"""The RSSD device facade.

:class:`RSSD` wires the SSD substrate together with the paper's
mechanisms (Figure 1): conservative retention, hardware-assisted
logging, the enhanced trim handler, the embedded NIC with its
hardware-isolated NVMe-oE path, the offload engine, and the recovery /
forensics / detection services built on top.

The facade exposes the same block interface as a plain :class:`SSD`
(``read`` / ``write`` / ``trim`` / ``flush``), so traces, file systems
and attacks run unchanged against either device -- which is how the
benchmarks compare RSSD against the baselines.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import RSSDConfig
from repro.core.detection import DetectionReport, LocalDetector, RemoteDetector
from repro.core.forensics import EvidenceChainReport, PostAttackAnalyzer
from repro.core.offload import OffloadEngine
from repro.core.oplog import OperationLog
from repro.core.recovery import RecoveryEngine, RecoveryReport
from repro.core.retention import RetentionManager
from repro.core.trim_handler import EnhancedTrimHandler, TrimMode
from repro.crypto.cipher import StreamCipher
from repro.crypto.compression import CompressionModel
from repro.nvmeoe.link import NetworkLink
from repro.nvmeoe.nic import EmbeddedNIC
from repro.nvmeoe.remote import ObjectStore, StorageServer, TieredRemote
from repro.sim import SimClock
from repro.ssd.device import SSD, HostOp, HostOpType
from repro.ssd.flash import PageContent
from repro.ssd.ftl import StalePage


class RSSD:
    """A ransomware-aware SSD with hardware-isolated network-storage codesign."""

    name = "RSSD"

    def __init__(self, config: Optional[RSSDConfig] = None, clock: Optional[SimClock] = None) -> None:
        self.config = config if config is not None else RSSDConfig.small()
        self.clock = clock if clock is not None else SimClock()

        # -- storage substrate ------------------------------------------------
        self.retention = RetentionManager()
        self.ssd = SSD(
            geometry=self.config.geometry,
            latency=self.config.latency,
            clock=self.clock,
            retention_policy=self.retention,
            gc_threshold_blocks=self.config.gc_threshold_blocks,
            eager_trim_gc=False,
        )

        # -- network substrate (hardware-isolated) -----------------------------
        self.link = NetworkLink(
            clock=self.clock,
            bandwidth_gbps=self.config.link_bandwidth_gbps,
            propagation_us=self.config.link_propagation_us,
        )
        self.nic = EmbeddedNIC(clock=self.clock, link=self.link)
        self.remote = TieredRemote(
            server=StorageServer(capacity_bytes=self.config.storage_server_capacity_bytes),
            cloud=ObjectStore(),
        )
        self.offload = OffloadEngine(
            clock=self.clock,
            nic=self.nic,
            remote=self.remote,
            retention=self.retention,
            batch_pages=self.config.offload_batch_pages,
            compression=CompressionModel(),
            cipher=StreamCipher.from_passphrase(self.config.encryption_passphrase),
        )
        self.retention.attach_offload_engine(self.offload)

        # -- logging and trim ----------------------------------------------------
        self.oplog = OperationLog(
            segment_entries=self.config.log_segment_entries,
            checkpoint_interval=self.config.checkpoint_interval,
        )
        self.ssd.add_observer(self.oplog)
        self.trim_handler = EnhancedTrimHandler(self.ssd, mode=TrimMode.ENHANCED)

        # Logging adds a small per-command firmware cost on the write path;
        # read log entries are captured off the critical path (the DRAM
        # append completes after the data transfer has been acknowledged).
        for op_type in (HostOpType.WRITE, HostOpType.TRIM):
            self.ssd.add_op_overhead(op_type, self.config.latency.log_append_us)

        # -- detection ---------------------------------------------------------------
        self.local_detector = LocalDetector()
        self.ssd.add_observer(self.local_detector)

        self._ops_since_drain = 0
        #: Drain the offload queue opportunistically every this many host ops.
        #: The hardware engine drains continuously; a small interval keeps the
        #: pending pool tiny so GC almost never has to relocate retained pages
        #: (which is what keeps the lifetime impact minimal).
        self.offload_interval_ops = 4

    # -- block interface ---------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.ssd.page_size

    @property
    def capacity_pages(self) -> int:
        return self.ssd.capacity_pages

    @property
    def metrics(self):
        return self.ssd.metrics

    def read(self, lba: int, npages: int = 1, stream_id: int = 0) -> bytes:
        return self.ssd.read(lba, npages, stream_id=stream_id)

    def read_content(self, lba: int) -> Optional[PageContent]:
        return self.ssd.read_content(lba)

    def write(self, lba: int, data, stream_id: int = 0) -> HostOp:
        op = self.ssd.write(lba, data, stream_id=stream_id)
        self._after_op()
        return op

    def trim(self, lba: int, npages: int = 1, stream_id: int = 0) -> List[StalePage]:
        records = self.trim_handler.trim(lba, npages, stream_id=stream_id)
        self._after_op()
        return records

    def flush(self, stream_id: int = 0) -> int:
        return self.ssd.flush(stream_id=stream_id)

    # -- batched block interface ---------------------------------------------------
    #
    # Vectorized counterparts of read/write/trim.  Each call is one host
    # command covering a contiguous LBA run: the SSD programs the pages
    # in one pass and observers (operation log, local detector) see one
    # aggregated event, which is what makes fleet-scale trace replay
    # feasible in Python.

    def read_batch(self, lba: int, npages: int = 1, stream_id: int = 0) -> bytes:
        return self.ssd.read_batch(lba, npages, stream_id=stream_id)

    def write_batch(self, lba: int, data, stream_id: int = 0) -> HostOp:
        op = self.ssd.write_batch(lba, data, stream_id=stream_id)
        self._after_op()
        return op

    def trim_range(self, lba: int, npages: int = 1, stream_id: int = 0) -> List[StalePage]:
        records = self.trim_handler.trim_range(lba, npages, stream_id=stream_id)
        self._after_op()
        return records

    def _after_op(self) -> None:
        self._ops_since_drain += 1
        if self._ops_since_drain >= self.offload_interval_ops:
            self._ops_since_drain = 0
            # The offload engine runs continuously in the firmware; draining
            # the whole pending queue here models that background progress
            # without advancing the foreground clock (the link model keeps
            # its own backlog to account for finite bandwidth).
            self.offload.drain_all()
            self.offload.offload_log_segments(self.oplog)

    # -- background maintenance ----------------------------------------------------------

    def drain_offload_queue(self) -> int:
        """Ship every pending retained page and sealed log segment remotely."""
        shipped = self.offload.drain_all()
        self.oplog.seal_segment()
        self.offload.offload_log_segments(self.oplog)
        return shipped

    # -- services -----------------------------------------------------------------------------

    def recovery_engine(self) -> RecoveryEngine:
        """The zero-data-loss recovery service."""
        return RecoveryEngine(
            ssd=self.ssd, retention=self.retention, oplog=self.oplog, offload=self.offload
        )

    def analyzer(self) -> PostAttackAnalyzer:
        """The post-attack analysis service."""
        return PostAttackAnalyzer(oplog=self.oplog, clock=self.clock, offload=self.offload)

    def remote_detector(self) -> RemoteDetector:
        """Detection offloaded to the remote servers over the full log."""
        return RemoteDetector(oplog=self.oplog, analyzer=self.analyzer())

    # -- convenience wrappers used by experiments ------------------------------------------------

    def recover_to(self, timestamp_us: int, lbas: Optional[List[int]] = None) -> RecoveryReport:
        """Roll affected pages back to their newest pre-``timestamp_us`` versions."""
        return self.recovery_engine().restore_to(timestamp_us, lbas=lbas)

    def investigate(self) -> EvidenceChainReport:
        """Build and verify the trusted evidence chain."""
        return self.analyzer().build_evidence_chain()

    def detect(self) -> DetectionReport:
        """Run the offloaded (remote) detector over the full operation log."""
        return self.remote_detector().analyze()

    # -- invariants -----------------------------------------------------------------------------------

    @property
    def data_loss_pages(self) -> int:
        """Retained pages destroyed before reaching the remote tier (must be 0)."""
        return self.retention.stats.data_loss_pages

    @property
    def retained_pages_local(self) -> int:
        """Stale pages currently held on local flash."""
        return self.ssd.ftl.stale_pages

    @property
    def retained_pages_remote(self) -> int:
        """Retained pages stored on the remote tier."""
        return self.offload.stats.pages_offloaded

    def summary(self) -> dict:
        """Headline counters for reports."""
        return {
            "host_writes": self.metrics.host_writes,
            "host_trims": self.metrics.host_trims,
            "write_amplification": self.metrics.write_amplification,
            "retained_local": self.retained_pages_local,
            "retained_remote": self.retained_pages_remote,
            "data_loss_pages": self.data_loss_pages,
            "log_entries": self.oplog.total_entries,
            "offload_compression_ratio": self.offload.stats.compression_ratio,
            "link_wire_bytes": self.link.stats.wire_bytes_sent,
        }


def build_rssd(config: Optional[RSSDConfig] = None, clock: Optional[SimClock] = None) -> RSSD:
    """Build a ready-to-use RSSD device.

    >>> rssd = build_rssd(RSSDConfig.tiny())
    >>> rssd.write(0, b"hello")  # doctest: +ELLIPSIS
    HostOp(...)
    """
    return RSSD(config=config, clock=clock)
