"""Determinism rules (REPRO-D1xx).

Every scenario draw must come from an explicit, seeded stream; the
simulated clock is the only time source; anything that ends up in an
artifact must iterate in a defined order.  These rules flag the
constructs that break those invariants statically:

* ``REPRO-D101`` -- module-global ``random.*`` calls (shared hidden
  state) and unseeded ``random.Random()`` / ``random.SystemRandom``.
* ``REPRO-D102`` -- ``numpy.random`` global-state calls and unseeded
  numpy generators.
* ``REPRO-D103`` -- wall-clock and entropy reads (``time.time``,
  ``datetime.now``, ``uuid.uuid4``, ...): the :class:`repro.sim.SimClock`
  is the only clock a scenario may observe.
* ``REPRO-D104`` -- set-ordering hazards: iterating a set into an
  ordered output, ``list(set(...))``, and ``os.listdir``/``os.scandir``
  without ``sorted``.
* ``REPRO-D105`` -- module-level rng instances (one stream silently
  shared by every scenario in the process).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.context import FileContext
from repro.lint.findings import Finding

#: ``random`` module functions that mutate or read the hidden global
#: stream.  Calling any of these is REPRO-D101.
RANDOM_GLOBAL_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: numpy generator constructors that are fine *when seeded*.
NUMPY_SEEDED_OK = frozenset(
    {"default_rng", "Generator", "RandomState", "SeedSequence",
     "PCG64", "Philox", "MT19937", "SFC64"}
)

#: Wall-clock and OS-entropy reads (fully qualified call chains).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "uuid.uuid1", "uuid.uuid4", "os.urandom", "secrets.token_bytes",
        "secrets.token_hex", "secrets.randbits",
    }
)

#: Callables whose argument order does not matter, so a set argument or
#: a set-typed comprehension source inside them is harmless.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
     "collections.Counter", "Counter"}
)

#: Callables that materialize their argument's iteration order.
ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
    """True for expressions that statically evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = ctx.resolve(node.func)
        return chain in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, ctx) and _is_set_expr(node.right, ctx)
    return False


def _order_insensitive_parent(node: ast.AST, ctx: FileContext) -> bool:
    """True when ``node``'s consumer does not observe iteration order."""
    parent = ctx.parent(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        chain = ctx.resolve(parent.func)
        if chain in ORDER_INSENSITIVE_CALLS:
            return True
    if isinstance(parent, ast.Compare):
        return True  # membership tests
    if isinstance(parent, ast.Assign) or isinstance(parent, ast.AnnAssign):
        return True  # stored sets stay sets; flagged where they are iterated
    if isinstance(parent, ast.BinOp):
        return True  # still set algebra; the outer expression is checked
    return False


def check_file(ctx: FileContext) -> List[Finding]:
    """Run every determinism rule over one file context."""
    if ctx.layer is not None and not ctx.layer.deterministic:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            findings.extend(_check_call(node, ctx))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, ctx):
                findings.append(
                    _finding(
                        ctx, node.iter, "REPRO-D104",
                        "iterating a set in source order; wrap the set in "
                        "sorted(...) before it reaches an ordered output",
                    )
                )
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter, ctx) and not _comp_is_order_insensitive(
                node, ctx
            ):
                findings.append(
                    _finding(
                        ctx, node.iter, "REPRO-D104",
                        "comprehension over a set in source order; wrap the "
                        "set in sorted(...) or feed an order-insensitive "
                        "consumer",
                    )
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            findings.extend(_check_module_rng(node, ctx))
    return findings


def _comp_is_order_insensitive(comp: ast.comprehension, ctx: FileContext) -> bool:
    """True when the comprehension feeding on a set is order-insensitive.

    A set comprehension stays a set; a generator handed straight to
    ``sorted(...)``/``min``/... never exposes its order.
    """
    owner = ctx.parent(comp)
    if isinstance(owner, (ast.SetComp, ast.DictComp)):
        return True
    if owner is None:
        return False
    return _order_insensitive_parent(owner, ctx)


def _check_call(node: ast.Call, ctx: FileContext) -> List[Finding]:
    """Determinism checks for one call expression."""
    findings: List[Finding] = []
    chain = ctx.resolve(node.func)
    if chain is None:
        return findings

    # REPRO-D101: the random module's hidden global stream.
    if chain.startswith("random."):
        tail = chain.split(".", 1)[1]
        if tail in RANDOM_GLOBAL_FUNCS:
            findings.append(
                _finding(
                    ctx, node, "REPRO-D101",
                    f"random.{tail}() uses the interpreter-global stream; "
                    "thread an explicit seeded random.Random through the "
                    "scenario instead",
                )
            )
        elif tail == "Random" and not node.args and not node.keywords:
            findings.append(
                _finding(
                    ctx, node, "REPRO-D101",
                    "random.Random() without a seed draws from OS entropy; "
                    "pass an explicit seed derived from the scenario",
                )
            )
        elif tail == "SystemRandom":
            findings.append(
                _finding(
                    ctx, node, "REPRO-D101",
                    "random.SystemRandom is unseedable OS entropy and can "
                    "never reproduce a scenario",
                )
            )

    # REPRO-D102: numpy's global generator state.
    elif chain.startswith("numpy.random."):
        tail = chain.rsplit(".", 1)[1]
        if tail in NUMPY_SEEDED_OK:
            if not node.args and not node.keywords:
                findings.append(
                    _finding(
                        ctx, node, "REPRO-D102",
                        f"numpy.random.{tail}() without a seed draws from OS "
                        "entropy; pass an explicit scenario-derived seed",
                    )
                )
        else:
            findings.append(
                _finding(
                    ctx, node, "REPRO-D102",
                    f"numpy.random.{tail}() uses numpy's global state; use a "
                    "seeded numpy.random.default_rng(...) generator instead",
                )
            )

    # REPRO-D103: wall clocks and OS entropy.
    elif chain in WALL_CLOCK_CALLS:
        findings.append(
            _finding(
                ctx, node, "REPRO-D103",
                f"{chain}() reads the wall clock or OS entropy; the "
                "simulated clock (repro.sim.SimClock) is the only time "
                "source a scenario may observe",
            )
        )

    # REPRO-D104: materializing a set's iteration order.
    elif chain in ORDER_SENSITIVE_CALLS and node.args:
        if _is_set_expr(node.args[0], ctx):
            findings.append(
                _finding(
                    ctx, node, "REPRO-D104",
                    f"{chain}(set(...)) materializes set order; use "
                    "sorted(...) for a defined order",
                )
            )
    elif chain in ("os.listdir", "os.scandir"):
        parent = ctx.parent(node)
        wrapped = (
            isinstance(parent, ast.Call)
            and ctx.resolve(parent.func) == "sorted"
        )
        if not wrapped:
            findings.append(
                _finding(
                    ctx, node, "REPRO-D104",
                    f"{chain}() returns entries in filesystem order; wrap "
                    "the call in sorted(...)",
                )
            )
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "join"
        and node.args
        and _is_set_expr(node.args[0], ctx)
    ):
        findings.append(
            _finding(
                ctx, node, "REPRO-D104",
                "str.join over a set materializes set order; sort first",
            )
        )
    return findings


def _check_module_rng(node: ast.AST, ctx: FileContext) -> List[Finding]:
    """REPRO-D105: module-level rng instances shared across scenarios."""
    if not ctx.at_module_level(node):
        return []
    value: Optional[ast.AST] = getattr(node, "value", None)
    if not isinstance(value, ast.Call):
        return []
    chain = ctx.resolve(value.func)
    if chain in ("random.Random", "random.SystemRandom", "numpy.random.default_rng"):
        return [
            _finding(
                ctx, node, "REPRO-D105",
                f"module-level {chain}(...) is one stream silently shared "
                "by every scenario in the process; construct rngs inside "
                "the session or pass them explicitly",
            )
        ]
    return []


def _finding(ctx: FileContext, node: ast.AST, rule: str, message: str) -> Finding:
    """Build a finding at ``node``'s location."""
    return Finding(
        path=ctx.rel_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )
