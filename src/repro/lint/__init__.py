"""AST-based invariant checker for the repro codebase (``repro lint``).

Four rule families run over a shared per-file analysis context:

* **Determinism** (``REPRO-D1xx``) -- unseeded randomness, wall-clock
  reads, set-ordering hazards in simulation layers.
* **Layering** (``REPRO-L2xx``) -- import edges must follow the layer
  DAG in ``layers.toml`` (generated from ARCHITECTURE.md); deferred
  edges only inside functions; deprecated entry points only via their
  shims.
* **Serialization** (``REPRO-S3xx``) -- schema roots must not change
  serialized fields without a version bump (checked against the pinned
  ``schema_fingerprint.json``); artifact JSON must sort its keys.
* **Concurrency** (``REPRO-C4xx``) -- pickle-unsafe callables handed
  to the process pool; module-level mutable state in sim layers.

The CLI surface is ``repro lint [paths] --format text|json --baseline
lint_baseline.json``; baselines are add-only (see
:mod:`repro.lint.baseline`).
"""

from repro.lint.baseline import (
    BaselineError,
    BaselineResult,
    apply_baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.lint.context import FileContext, module_name_for
from repro.lint.findings import Finding, sort_findings
from repro.lint.layers import LayerModel
from repro.lint.runner import LintConfig, discover_files, lint_paths
from repro.lint.serialization import fingerprint_schemas, write_fingerprint

__all__ = [
    "BaselineError",
    "BaselineResult",
    "FileContext",
    "Finding",
    "LayerModel",
    "LintConfig",
    "apply_baseline",
    "discover_files",
    "fingerprint_schemas",
    "lint_paths",
    "load_baseline",
    "module_name_for",
    "prune_baseline",
    "sort_findings",
    "write_baseline",
    "write_fingerprint",
]
