"""Orchestration: file discovery, context building, rule dispatch.

:func:`lint_paths` is the single entry point used by the CLI and the
tests.  It walks the requested paths, builds one :class:`FileContext`
per Python file, runs every per-file rule family over each context,
then runs the project-level schema check (which needs all contexts at
once to follow cross-module reachability).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint import concurrency, determinism, layering, serialization
from repro.lint.context import FileContext
from repro.lint.findings import Finding, sort_findings
from repro.lint.layers import LayerModel

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}
)


@dataclass
class LintConfig:
    """Everything a lint run needs besides the paths themselves."""

    #: Repo root used to relativize reported paths (cwd by default).
    root: Optional[Path] = None
    #: Layer table override (the packaged ``layers.toml`` by default).
    layers_path: Optional[Path] = None
    #: Pinned schema fingerprint override.
    fingerprint_path: Optional[Path] = None
    #: Disable the project-level schema fingerprint comparison.
    check_schemas: bool = True
    #: Rule-family toggles (all on by default).
    families: Sequence[str] = field(
        default_factory=lambda: (
            "determinism", "layering", "serialization", "concurrency"
        )
    )


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under the given paths, deterministically ordered."""
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in SKIP_DIRS for part in candidate.parts):
                continue
            files.append(candidate)
    unique = sorted(set(files))
    return unique


def build_contexts(
    files: Sequence[Path], model: LayerModel, root: Path
) -> "tuple[Dict[str, FileContext], List[FileContext], List[Finding]]":
    """Parse every file; returns (module map, all contexts, parse errors)."""
    by_module: Dict[str, FileContext] = {}
    contexts: List[FileContext] = []
    errors: List[Finding] = []
    for path in files:
        rel = _rel_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext(path, source, rel_path=rel, model=model)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(
                Finding(
                    path=rel, line=line, col=0, rule="REPRO-P001",
                    message=f"file does not parse: {exc}",
                )
            )
            continue
        contexts.append(ctx)
        if ctx.module is not None:
            by_module[ctx.module] = ctx
    return by_module, contexts, errors


def _rel_path(path: Path, root: Path) -> str:
    """POSIX path of ``path`` relative to ``root`` when possible."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Run every enabled rule family over the given paths."""
    config = config or LintConfig()
    root = config.root or Path.cwd()
    model = LayerModel.load(config.layers_path)
    files = discover_files([Path(p) for p in paths])
    by_module, contexts, findings = build_contexts(files, model, root)
    families = set(config.families)
    for ctx in contexts:
        if "determinism" in families:
            findings.extend(determinism.check_file(ctx))
        if "layering" in families:
            findings.extend(layering.check_file(ctx, model))
        if "serialization" in families:
            findings.extend(serialization.check_json_dump(ctx))
        if "concurrency" in families:
            findings.extend(concurrency.check_file(ctx))
    if "serialization" in families and config.check_schemas:
        findings.extend(
            serialization.check_schemas(
                by_module, model, config.fingerprint_path
            )
        )
    return sort_findings(findings)


def parse_ok(source: str) -> bool:
    """True when ``source`` parses as Python (used by fixtures/tests)."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
