"""Serialization rules (REPRO-S3xx).

Artifacts are the repo's long-lived contract: a schema change that is
not accompanied by a version bump silently corrupts golden comparisons
and cache hits.  These rules guard that contract statically:

* ``REPRO-S301`` -- a dataclass reachable from a schema root changed
  its serialized fields without a bump of the schema's version
  constant.
* ``REPRO-S302`` -- the pinned fingerprint file is out of date (missing
  a schema, or recording a stale shape after a legitimate version
  bump); regenerate it with ``repro lint --write-schema-fingerprint``.
* ``REPRO-S303`` -- ``json.dump``/``json.dumps`` without
  ``sort_keys=True`` in a simulation layer (artifact JSON must be
  canonical byte-for-byte).

Field extraction is purely static: the non-``compare=False`` fields of
every ``@dataclass`` are read from the AST, and reachability from each
schema root follows class names mentioned in field annotations
(including quoted forward references), resolved through each file's
import bindings.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.layers import LayerModel, SchemaSpec

#: Pinned fingerprint shipped with the package.
DEFAULT_FINGERPRINT_PATH = Path(__file__).with_name("schema_fingerprint.json")

#: Version tag of the fingerprint file format itself.
FINGERPRINT_SCHEMA = 1

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def check_json_dump(ctx: FileContext) -> List[Finding]:
    """REPRO-S303: canonical-JSON discipline in simulation layers."""
    if ctx.layer is None or not ctx.layer.sim:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = ctx.resolve(node.func)
        if chain not in ("json.dump", "json.dumps"):
            continue
        sort_keys = None
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                sort_keys = keyword.value
        is_true = isinstance(sort_keys, ast.Constant) and sort_keys.value is True
        if not is_true:
            findings.append(
                Finding(
                    path=ctx.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="REPRO-S303",
                    message=(
                        f"{chain}(...) without sort_keys=True; artifact JSON "
                        "must be canonical (sorted keys) so byte-identical "
                        "runs produce byte-identical files"
                    ),
                )
            )
    return findings


# -- static dataclass field extraction --------------------------------------


def _dataclass_fields(node: ast.ClassDef, ctx: FileContext) -> Optional[List[str]]:
    """Serialized field names of a ``@dataclass``, or ``None`` if not one.

    Fields declared with ``field(compare=False, ...)`` are excluded:
    they are diagnostics by convention (``cache_stats``,
    ``cells_resumed``) and not part of the schema identity.
    """
    is_dataclass = False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if ctx.resolve(target) in ("dataclass", "dataclasses.dataclass"):
            is_dataclass = True
    if not is_dataclass:
        return None
    fields: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        if isinstance(stmt.annotation, ast.Subscript):
            base = ctx.resolve(stmt.annotation.value)
            if base in ("ClassVar", "typing.ClassVar"):
                continue
        if _is_compare_false_field(stmt.value, ctx):
            continue
        fields.append(stmt.target.id)
    return fields


def _is_compare_false_field(value: Optional[ast.AST], ctx: FileContext) -> bool:
    """True for ``field(compare=False, ...)`` default expressions."""
    if not isinstance(value, ast.Call):
        return False
    if ctx.resolve(value.func) not in ("field", "dataclasses.field"):
        return False
    for keyword in value.keywords:
        if keyword.arg == "compare":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            )
    return False


def _annotation_identifiers(node: ast.AnnAssign) -> List[str]:
    """Class-name candidates mentioned in one field annotation.

    Uses the unparsed annotation text so quoted forward references
    (``"CellResult"``) contribute their identifiers too.
    """
    try:
        text = ast.unparse(node.annotation)
    except Exception:  # pragma: no cover - unparse failure is theoretical
        return []
    return _IDENT_RE.findall(text)


class _ClassIndex:
    """All dataclasses across the analyzed files, addressable by name."""

    def __init__(self, contexts: Mapping[str, FileContext]) -> None:
        """Index every ``@dataclass`` in ``contexts`` (module -> context)."""
        self.contexts = contexts
        self.by_module: Dict[Tuple[str, str], Tuple[ast.ClassDef, FileContext]] = {}
        self.by_name: Dict[str, List[Tuple[str, ast.ClassDef, FileContext]]] = {}
        for module, ctx in contexts.items():
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if _dataclass_fields(node, ctx) is None:
                    continue
                self.by_module[(module, node.name)] = (node, ctx)
                self.by_name.setdefault(node.name, []).append((module, node, ctx))

    def resolve_name(
        self, name: str, ctx: FileContext
    ) -> Optional[Tuple[str, ast.ClassDef, FileContext]]:
        """Resolve an identifier seen in ``ctx`` to a known dataclass.

        Same-module definitions win; otherwise the file's import
        bindings decide; a globally unique class name is accepted as a
        last resort.
        """
        if ctx.module is not None:
            entry = self.by_module.get((ctx.module, name))
            if entry is not None:
                return (ctx.module, entry[0], entry[1])
        origin = ctx.import_bindings.get(name)
        if origin is not None and "." in origin:
            module, _, symbol = origin.rpartition(".")
            entry = self.by_module.get((module, symbol))
            if entry is not None:
                return (module, entry[0], entry[1])
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


def fingerprint_schemas(
    contexts: Mapping[str, FileContext], model: LayerModel
) -> Dict[str, object]:
    """Compute the current fingerprint of every schema in the layer table.

    The result maps schema name to its version-constant value and the
    sorted serialized fields of every dataclass reachable from its
    root.  Schemas whose module is not among ``contexts`` are omitted
    (e.g. when linting a subtree).
    """
    index = _ClassIndex(contexts)
    schemas: Dict[str, object] = {}
    for spec in model.schemas:
        ctx = contexts.get(spec.module)
        if ctx is None:
            continue
        schemas[spec.name] = {
            "version": _version_value(ctx, spec),
            "classes": _reachable_fields(spec, ctx, index),
        }
    return {"schema": FINGERPRINT_SCHEMA, "schemas": schemas}


def _version_value(ctx: FileContext, spec: SchemaSpec) -> Optional[int]:
    """Value of the schema's module-level version constant, if literal."""
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == spec.version_const:
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(value.value, int):
                    return value.value
    return None


def _reachable_fields(
    spec: SchemaSpec, root_ctx: FileContext, index: _ClassIndex
) -> Dict[str, List[str]]:
    """Fields of every dataclass reachable from the schema root."""
    result: Dict[str, List[str]] = {}
    start = index.resolve_name(spec.root, root_ctx)
    if start is None:
        return result
    queue = [start]
    seen = {(start[0], start[1].name)}
    while queue:
        module, node, ctx = queue.pop()
        fields = _dataclass_fields(node, ctx) or []
        result[f"{module}.{node.name}"] = sorted(fields)
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            for ident in _annotation_identifiers(stmt):
                entry = index.resolve_name(ident, ctx)
                if entry is None:
                    continue
                key = (entry[0], entry[1].name)
                if key not in seen:
                    seen.add(key)
                    queue.append(entry)
    return result


def check_schemas(
    contexts: Mapping[str, FileContext],
    model: LayerModel,
    pinned_path: Optional[Path] = None,
) -> List[Finding]:
    """REPRO-S301/S302: compare current schema shapes to the pinned file."""
    path = pinned_path or DEFAULT_FINGERPRINT_PATH
    current = fingerprint_schemas(contexts, model)
    current_schemas: Dict[str, Dict[str, object]] = current["schemas"]  # type: ignore[assignment]
    if not current_schemas:
        return []
    if not path.exists():
        return [
            _schema_finding(
                contexts, model, name,
                "REPRO-S302",
                f"schema '{name}' has no pinned fingerprint "
                f"({path.name} missing); run "
                "'repro lint --write-schema-fingerprint' and commit the file",
            )
            for name in sorted(current_schemas)
        ]
    pinned = json.loads(path.read_text(encoding="utf-8"))
    pinned_schemas: Dict[str, Dict[str, object]] = pinned.get("schemas", {})
    findings: List[Finding] = []
    for name in sorted(current_schemas):
        now = current_schemas[name]
        then = pinned_schemas.get(name)
        if then is None:
            findings.append(
                _schema_finding(
                    contexts, model, name,
                    "REPRO-S302",
                    f"schema '{name}' is not in the pinned fingerprint; "
                    "regenerate with 'repro lint --write-schema-fingerprint'",
                )
            )
            continue
        fields_changed = now["classes"] != then.get("classes")
        version_changed = now["version"] != then.get("version")
        if fields_changed and not version_changed:
            drift = _describe_drift(then.get("classes", {}), now["classes"])  # type: ignore[arg-type]
            spec = _spec_for(model, name)
            const = spec.version_const if spec else "its version constant"
            findings.append(
                _schema_finding(
                    contexts, model, name,
                    "REPRO-S301",
                    f"schema '{name}' changed serialized fields ({drift}) "
                    f"without bumping {const}; bump the constant and "
                    "regenerate the fingerprint",
                )
            )
        elif fields_changed or version_changed:
            findings.append(
                _schema_finding(
                    contexts, model, name,
                    "REPRO-S302",
                    f"pinned fingerprint for schema '{name}' is stale after "
                    "a version bump; regenerate with "
                    "'repro lint --write-schema-fingerprint'",
                )
            )
    return findings


def _describe_drift(
    then: Dict[str, List[str]], now: Dict[str, object]
) -> str:
    """Short human description of which classes drifted."""
    changed = sorted(
        set(then) ^ set(now)
        | {name for name in set(then) & set(now) if then[name] != now[name]}
    )
    return ", ".join(changed) if changed else "field drift"


def _spec_for(model: LayerModel, name: str) -> Optional[SchemaSpec]:
    """The schema spec with the given fingerprint key."""
    for spec in model.schemas:
        if spec.name == name:
            return spec
    return None


def _schema_finding(
    contexts: Mapping[str, FileContext],
    model: LayerModel,
    name: str,
    rule: str,
    message: str,
) -> Finding:
    """Anchor a schema-level finding at the schema module's first line."""
    spec = _spec_for(model, name)
    ctx = contexts.get(spec.module) if spec else None
    return Finding(
        path=ctx.rel_path if ctx else (spec.module if spec else name),
        line=1,
        col=0,
        rule=rule,
        message=message,
    )


def write_fingerprint(
    contexts: Mapping[str, FileContext],
    model: LayerModel,
    path: Optional[Path] = None,
) -> Path:
    """Write the current fingerprint as canonical JSON; returns the path."""
    target = path or DEFAULT_FINGERPRINT_PATH
    payload = fingerprint_schemas(contexts, model)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target
