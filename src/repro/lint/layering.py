"""Layering rules (REPRO-L2xx).

The layer DAG in ``layers.toml`` is the machine-readable form of
ARCHITECTURE.md's import-layering prose.  These rules walk every
``import``/``from`` statement and flag:

* ``REPRO-L201`` -- an import edge the DAG forbids entirely.
* ``REPRO-L202`` -- a ``deferred``-only edge taken at module level
  (e.g. ``campaign/`` importing ``repro.api`` outside a function body
  or ``TYPE_CHECKING`` block).
* ``REPRO-L203`` -- a deprecated entry point imported outside the shim
  module that defines it.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.layers import DeprecatedEntry, LayerModel


def check_file(ctx: FileContext, model: LayerModel) -> List[Finding]:
    """Run every layering rule over one file context."""
    if ctx.module is None or ctx.layer is None:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            findings.extend(_check_import(node, ctx, model))
    return findings


def _check_import(
    node: ast.AST, ctx: FileContext, model: LayerModel
) -> List[Finding]:
    """Layer-edge and deprecation checks for one import statement."""
    findings: List[Finding] = []
    deferred_position = not ctx.at_module_level(node) or ctx.in_type_checking(node)
    for target in ctx.import_targets(node):
        if target != "repro" and not target.startswith("repro."):
            continue
        findings.extend(
            _check_edge(node, ctx, model, target, deferred_position)
        )
    if isinstance(node, ast.ImportFrom):
        findings.extend(_check_deprecated(node, ctx, model))
    return findings


def _check_edge(
    node: ast.AST,
    ctx: FileContext,
    model: LayerModel,
    target: str,
    deferred_position: bool,
) -> List[Finding]:
    """REPRO-L201/L202 for one resolved import target."""
    source_layer = ctx.layer
    target_layer = model.layer_of(target)
    if source_layer is None or target_layer is None:
        return []
    if target_layer.name == source_layer.name:
        return []
    if target_layer.name in source_layer.imports:
        return []
    if target_layer.name in source_layer.deferred:
        if deferred_position:
            return []
        return [
            _finding(
                ctx, node, "REPRO-L202",
                f"layer '{source_layer.name}' may import layer "
                f"'{target_layer.name}' ({target}) only inside a function "
                "body or TYPE_CHECKING block; move this import into the "
                "function that uses it",
            )
        ]
    if model.exception_for(ctx.module or "", target) is not None:
        return []
    return [
        _finding(
            ctx, node, "REPRO-L201",
            f"layer '{source_layer.name}' must not import layer "
            f"'{target_layer.name}' ({target}); see the layer DAG in "
            "src/repro/lint/layers.toml",
        )
    ]


def _check_deprecated(
    node: ast.ImportFrom, ctx: FileContext, model: LayerModel
) -> List[Finding]:
    """REPRO-L203 for deprecated names pulled in by a ``from`` import."""
    findings: List[Finding] = []
    targets = ctx.import_targets(node)
    if not targets:
        return findings
    source_module = targets[0]
    for entry in model.deprecated:
        if source_module != entry.module:
            continue
        if ctx.module is not None and _is_shim_site(ctx.module, entry):
            continue
        for alias in node.names:
            if alias.name == entry.symbol:
                findings.append(
                    _finding(
                        ctx, node, "REPRO-L203",
                        f"{entry.name} is a deprecated entry point; import "
                        f"{entry.replacement} instead",
                    )
                )
    return findings


def _is_shim_site(module: str, entry: "DeprecatedEntry") -> bool:
    """Modules allowed to import a deprecated name.

    Three sites are part of the shim surface rather than consumers of
    it: the defining module itself, its ancestor package ``__init__``
    modules (which re-export the legacy import path), and the package
    housing the replacement (the facade wraps the legacy implementation
    to provide the supported entry point).
    """
    if module == entry.module:
        return True
    if entry.module.startswith(module + "."):
        return True
    replacement_pkg = entry.replacement.rpartition(".")[0]
    if module == replacement_pkg or module.startswith(replacement_pkg + "."):
        return True
    return False


def _finding(ctx: FileContext, node: ast.AST, rule: str, message: str) -> Finding:
    """Build a finding at ``node``'s location."""
    return Finding(
        path=ctx.rel_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )
