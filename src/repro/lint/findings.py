"""Finding records shared by every lint rule family.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`~Finding.suppression_key` deliberately excludes the line and
column, so a baseline entry keeps suppressing the same finding as the
file drifts around it -- only fixing (or duplicating) the violation
changes what the baseline matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Repository-relative POSIX path of the offending file.
    path: str
    #: 1-based source line of the violation.
    line: int
    #: 0-based source column of the violation.
    col: int
    #: Rule identifier, e.g. ``REPRO-D101``.
    rule: str
    #: Human-readable description of the violation (no line numbers, so
    #: baseline suppressions survive unrelated edits).
    message: str

    def suppression_key(self) -> str:
        """Identity used by baseline suppression: rule, path and message."""
        return f"{self.rule}\x1f{self.path}\x1f{self.message}"

    def format(self) -> str:
        """One-line ``path:line:col: RULE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
        )


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: path, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
