"""Layer DAG loading and module-to-layer resolution.

The layer table lives in ``layers.toml`` next to this module -- the
machine-readable form of ARCHITECTURE.md's import-layering prose.  The
loader prefers :mod:`tomllib` (Python 3.11+) and falls back to a
minimal parser for the restricted TOML subset the table uses (string
and boolean scalars, string arrays, ``[a.b]`` tables and ``[[a]]``
arrays of tables), so the checker runs on every supported interpreter
without new dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 only
    _toml = None

#: Default layer table shipped with the package.
DEFAULT_LAYERS_PATH = Path(__file__).with_name("layers.toml")


@dataclass(frozen=True)
class Layer:
    """One layer: its module prefixes and what it may import."""

    #: Layer name (referenced by other layers' ``imports`` lists).
    name: str
    #: Dotted module prefixes belonging to this layer.
    modules: Tuple[str, ...]
    #: Layers importable at module level (own layer always allowed).
    imports: Tuple[str, ...] = ()
    #: Layers importable only inside functions or TYPE_CHECKING blocks.
    deferred: Tuple[str, ...] = ()
    #: Whether determinism rules (REPRO-D*) apply to this layer.
    deterministic: bool = True
    #: Whether simulation-state rules (REPRO-C402 / REPRO-S303) apply.
    sim: bool = False


@dataclass(frozen=True)
class ExceptionEdge:
    """One documented import edge the layer table would otherwise forbid."""

    #: Exact module the edge originates from.
    from_module: str
    #: Dotted prefix the edge may reach.
    to_prefix: str
    #: Why the edge is allowed (rendered in ``repro lint`` messages).
    reason: str = ""


@dataclass(frozen=True)
class DeprecatedEntry:
    """One warn-once legacy entry point and its replacement."""

    #: Fully qualified deprecated name (``module.symbol``).
    name: str
    #: The stable replacement to import instead.
    replacement: str

    @property
    def module(self) -> str:
        """Module part of the deprecated name."""
        return self.name.rpartition(".")[0]

    @property
    def symbol(self) -> str:
        """Symbol part of the deprecated name."""
        return self.name.rpartition(".")[2]


@dataclass(frozen=True)
class SchemaSpec:
    """One serialized schema root guarded by the pinned fingerprint."""

    #: Short schema name used as the fingerprint key.
    name: str
    #: Module defining the root class and version constant.
    module: str
    #: Root dataclass of the serialized object graph.
    root: str
    #: Module-level version constant that must be bumped on field drift.
    version_const: str


@dataclass(frozen=True)
class LayerModel:
    """The loaded layer DAG plus exception, deprecation and schema tables."""

    #: Layers by name.
    layers: Dict[str, Layer] = field(default_factory=dict)
    #: Documented extra edges.
    exceptions: Tuple[ExceptionEdge, ...] = ()
    #: Deprecated entry points.
    deprecated: Tuple[DeprecatedEntry, ...] = ()
    #: Serialized schema roots.
    schemas: Tuple[SchemaSpec, ...] = ()

    @classmethod
    def load(cls, path: Optional[Path] = None) -> "LayerModel":
        """Load a layer table (the packaged ``layers.toml`` by default)."""
        data = _load_toml(path or DEFAULT_LAYERS_PATH)
        layers: Dict[str, Layer] = {}
        for name, raw in data.get("layers", {}).items():
            layers[name] = Layer(
                name=name,
                modules=tuple(raw.get("modules", ())),
                imports=tuple(raw.get("imports", ())),
                deferred=tuple(raw.get("deferred", ())),
                deterministic=bool(raw.get("deterministic", True)),
                sim=bool(raw.get("sim", False)),
            )
        exceptions = tuple(
            ExceptionEdge(
                from_module=raw["from"],
                to_prefix=raw["to"],
                reason=raw.get("reason", ""),
            )
            for raw in data.get("exceptions", ())
        )
        deprecated = tuple(
            DeprecatedEntry(name=raw["name"], replacement=raw["replacement"])
            for raw in data.get("deprecated", ())
        )
        schemas = tuple(
            SchemaSpec(
                name=raw["name"],
                module=raw["module"],
                root=raw["root"],
                version_const=raw["version_const"],
            )
            for raw in data.get("schemas", ())
        )
        return cls(
            layers=layers,
            exceptions=exceptions,
            deprecated=deprecated,
            schemas=schemas,
        )

    def layer_of(self, module: str) -> Optional[Layer]:
        """Resolve a dotted module name to its layer (longest prefix wins)."""
        best: Optional[Layer] = None
        best_len = -1
        for layer in self.layers.values():
            for prefix in layer.modules:
                if module == prefix or module.startswith(prefix + "."):
                    if len(prefix) > best_len:
                        best, best_len = layer, len(prefix)
        return best

    def exception_for(
        self, from_module: str, target: str
    ) -> Optional[ExceptionEdge]:
        """The documented exception edge covering this import, if any."""
        for edge in self.exceptions:
            if from_module == edge.from_module and (
                target == edge.to_prefix or target.startswith(edge.to_prefix + ".")
            ):
                return edge
        return None


# -- minimal TOML subset parser (fallback when tomllib is absent) ----------

_SECTION_RE = re.compile(r"^\[(\[)?\s*([A-Za-z0-9_.\-]+)\s*\]?\]\s*$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_\-]+)\s*=\s*(.*)$")


def _parse_scalar(text: str) -> object:
    """Parse one TOML scalar from the restricted subset."""
    text = text.strip()
    if text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"unsupported TOML scalar in layers table: {text!r}")


def _parse_array(text: str) -> List[object]:
    """Parse a (possibly multiline-joined) TOML array of scalars."""
    inner = text.strip()[1:-1].strip()
    if not inner:
        return []
    return [_parse_scalar(part) for part in re.split(r"\s*,\s*", inner) if part]


def _parse_toml_subset(text: str) -> Dict[str, object]:
    """Parse the restricted TOML subset ``layers.toml`` is written in."""
    root: Dict[str, object] = {}
    current: Dict[str, object] = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        section = _SECTION_RE.match(line)
        if section:
            is_array = line.startswith("[[")
            dotted = section.group(2).split(".")
            node: Dict[str, object] = root
            for part in dotted[:-1]:
                node = node.setdefault(part, {})  # type: ignore[assignment]
            leaf = dotted[-1]
            if is_array:
                entries = node.setdefault(leaf, [])
                current = {}
                entries.append(current)  # type: ignore[union-attr]
            else:
                current = node.setdefault(leaf, {})  # type: ignore[assignment]
            continue
        match = _KEY_RE.match(line)
        if not match:
            raise ValueError(f"unparseable layers.toml line: {line!r}")
        key, value = match.group(1), match.group(2).strip()
        if value.startswith("["):
            while value.count("[") > value.count("]") or not value.rstrip().endswith(
                "]"
            ):
                value += " " + lines[index].split("#", 1)[0].strip()
                index += 1
            current[key] = _parse_array(value)
        else:
            current[key] = _parse_scalar(value.split("#", 1)[0])
    return root


def _load_toml(path: Path) -> Dict[str, object]:
    """Load a TOML file via tomllib or the fallback subset parser."""
    text = path.read_text(encoding="utf-8")
    if _toml is not None:
        return _toml.loads(text)
    return _parse_toml_subset(text)  # pragma: no cover - 3.9/3.10 fallback
