"""Concurrency rules (REPRO-C4xx).

The process backend of :class:`repro.campaign.runner.ExperimentRunner`
pickles its callables; lambdas, closures and local classes fail at
runtime only when someone finally selects ``backend="process"`` --
usually on the largest campaign of the sweep.  Module-level mutable
state is the other silent hazard: it is shared under the thread backend
and silently *not* shared under the process backend, so results depend
on the backend choice.

* ``REPRO-C401`` -- a lambda or locally defined callable handed to
  ``ExperimentRunner.map``/``imap`` or ``map_with_cache`` (unless the
  receiver is provably never the process backend).
* ``REPRO-C402`` -- module-level mutable state (lowercase dict / list /
  set bindings) in a simulation layer.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.context import FileContext
from repro.lint.findings import Finding

#: Mutable constructors flagged at module level in sim layers.
MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "collections.defaultdict", "defaultdict",
     "collections.deque", "deque", "collections.OrderedDict", "OrderedDict"}
)


def check_file(ctx: FileContext) -> List[Finding]:
    """Run every concurrency rule over one file context."""
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            findings.extend(_check_submission(node, ctx))
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            findings.extend(_check_module_mutable(node, ctx))
    return findings


def _check_submission(node: ast.Call, ctx: FileContext) -> List[Finding]:
    """REPRO-C401: pickle-unsafe callables submitted to a pool."""
    fn: Optional[ast.AST] = None
    where = ""
    chain = ctx.resolve(node.func)
    if chain is not None and chain.rpartition(".")[2] == "map_with_cache":
        if len(node.args) >= 2:
            fn = node.args[1]
            where = "map_with_cache"
    elif (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in ("map", "imap")
        and node.args
    ):
        if not _receiver_is_runner(node.func.value, ctx):
            return []
        if _receiver_never_process(node.func.value, ctx):
            return []
        fn = node.args[0]
        where = f"ExperimentRunner.{node.func.attr}"
    if fn is None:
        return []
    reason = _unpicklable_reason(fn, ctx)
    if reason is None:
        return []
    return [
        Finding(
            path=ctx.rel_path,
            line=fn.lineno,
            col=fn.col_offset,
            rule="REPRO-C401",
            message=(
                f"{reason} submitted to {where}; the process backend "
                "pickles its callables, so pass a module-level function"
            ),
        )
    ]


def _receiver_is_runner(receiver: ast.AST, ctx: FileContext) -> bool:
    """Heuristic: does the receiver look like an ExperimentRunner?

    A name assigned from ``ExperimentRunner(...)`` in the same scope,
    or any name/attribute containing ``runner``, counts.  ``.map`` on
    other objects (pandas, executors) stays out of scope.
    """
    assigned = _runner_constructor_for(receiver, ctx)
    if assigned is not None:
        return True
    if isinstance(receiver, ast.Name):
        return "runner" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "runner" in receiver.attr.lower()
    return False


def _receiver_never_process(receiver: ast.AST, ctx: FileContext) -> bool:
    """True when the receiver's backend is statically never ``"process"``.

    Only a local ``ExperimentRunner(backend=<literal>)`` construction
    can prove this; anything dynamic is assumed pickling-capable.
    """
    call = _runner_constructor_for(receiver, ctx)
    if call is None:
        return False
    for keyword in call.keywords:
        if keyword.arg == "backend":
            values = _literal_string_values(keyword.value)
            if values is not None and "process" not in values:
                return True
    return False


def _runner_constructor_for(
    receiver: ast.AST, ctx: FileContext
) -> Optional[ast.Call]:
    """The local ``ExperimentRunner(...)`` call bound to this receiver."""
    if not isinstance(receiver, ast.Name):
        return None
    scope = ctx.enclosing_function(receiver)
    found: Optional[ast.Call] = None
    for node in ast.walk(scope if scope is not None else ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == receiver.id
            for target in node.targets
        ):
            continue
        if isinstance(node.value, ast.Call):
            chain = ctx.resolve(node.value.func)
            if chain is not None and chain.rpartition(".")[2] == "ExperimentRunner":
                found = node.value
    return found


def _literal_string_values(node: ast.AST) -> Optional[List[str]]:
    """Every string the expression can evaluate to, if fully literal."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        left = _literal_string_values(node.body)
        right = _literal_string_values(node.orelse)
        if left is not None and right is not None:
            return left + right
    return None


def _unpicklable_reason(fn: ast.AST, ctx: FileContext) -> Optional[str]:
    """Why this callable expression cannot be pickled, if it cannot."""
    if isinstance(fn, ast.Lambda):
        return "lambda"
    if isinstance(fn, ast.Name):
        definition = _local_definition(fn.id, fn, ctx)
        if definition is not None:
            if isinstance(definition, ast.ClassDef):
                return f"locally defined class {fn.id!r}"
            return f"locally defined function {fn.id!r}"
    if isinstance(fn, ast.Call):
        chain = ctx.resolve(fn.func)
        if chain in ("functools.partial", "partial"):
            for arg in fn.args[:1]:
                reason = _unpicklable_reason(arg, ctx)
                if reason is not None:
                    return f"partial over a {reason}"
    return None


def _local_definition(
    name: str, use: ast.AST, ctx: FileContext
) -> Optional[ast.AST]:
    """A nested def/class binding ``name`` in the use-site's scope."""
    scope = ctx.enclosing_function(use)
    if scope is None or isinstance(scope, ast.Lambda):
        return None
    for node in ast.walk(scope):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and node.name == name
        ):
            return node
    return None


def _check_module_mutable(node: ast.AST, ctx: FileContext) -> List[Finding]:
    """REPRO-C402: module-level mutable state in simulation layers."""
    if ctx.layer is None or not ctx.layer.sim:
        return []
    if not ctx.at_module_level(node):
        return []
    target = _single_name_target(node)
    if target is None:
        return []
    name = target.id
    bare = name.strip("_")
    if not bare or bare.isupper() or (name.startswith("__") and name.endswith("__")):
        return []
    value: Optional[ast.AST] = getattr(node, "value", None)
    if not _is_mutable_expr(value, ctx):
        return []
    return [
        Finding(
            path=ctx.rel_path,
            line=node.lineno,
            col=node.col_offset,
            rule="REPRO-C402",
            message=(
                f"module-level mutable {name!r} in a simulation layer; it is "
                "shared under the thread backend and per-process under the "
                "process backend, so results depend on the backend -- move "
                "it into session state or freeze it (tuple/frozenset) and "
                "rename it UPPER_CASE"
            ),
        )
    ]


def _single_name_target(node: ast.AST) -> Optional[ast.Name]:
    """The single Name target of an assignment, if that is its shape."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if isinstance(target, ast.Name):
            return target
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        if node.value is not None:
            return node.target
    return None


def _is_mutable_expr(value: Optional[ast.AST], ctx: FileContext) -> bool:
    """True for expressions that build a mutable container."""
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        chain = ctx.resolve(value.func)
        return chain in MUTABLE_CALLS
    return False
