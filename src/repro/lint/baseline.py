"""Baseline suppression with add-only semantics.

A baseline file records known findings so ``repro lint`` can gate on
*new* violations without first fixing the backlog.  The semantics are
deliberately one-way:

* ``--write-baseline`` creates the file **once** (it refuses to
  overwrite an existing baseline) -- you cannot silently re-baseline
  new findings away.
* matching findings are suppressed; anything not in the file fails the
  run.
* entries whose finding no longer exists are reported as *stale* so
  the baseline shrinks over time; ``--prune-baseline`` rewrites the
  file without them.

Entries are keyed on (rule, path, message) -- no line or column -- so a
suppression survives unrelated edits to the same file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.findings import Finding, sort_findings

#: Version tag of the baseline file format.
BASELINE_SCHEMA = 1


class BaselineError(ValueError):
    """Raised for unusable baseline files or refused overwrites."""


@dataclass
class BaselineResult:
    """Partition of a lint run against a baseline."""

    #: Findings not covered by the baseline (these fail the run).
    new: List[Finding] = field(default_factory=list)
    #: Findings suppressed by a baseline entry.
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries whose finding no longer exists.
    stale: List[Dict[str, str]] = field(default_factory=list)


def load_baseline(path: Path) -> List[Dict[str, str]]:
    """Load baseline entries, validating the file shape."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise BaselineError(f"baseline {path} has no 'entries' list")
    entries: List[Dict[str, str]] = []
    for raw in data["entries"]:
        entries.append(
            {
                "rule": str(raw["rule"]),
                "path": str(raw["path"]),
                "message": str(raw["message"]),
            }
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[Dict[str, str]]
) -> BaselineResult:
    """Split findings into new vs suppressed and spot stale entries."""
    keys = {
        f"{entry['rule']}\x1f{entry['path']}\x1f{entry['message']}": entry
        for entry in entries
    }
    result = BaselineResult()
    matched = set()
    for finding in sort_findings(list(findings)):
        key = finding.suppression_key()
        if key in keys:
            matched.add(key)
            result.suppressed.append(finding)
        else:
            result.new.append(finding)
    for key, entry in keys.items():
        if key not in matched:
            result.stale.append(entry)
    result.stale.sort(key=lambda e: (e["path"], e["rule"], e["message"]))
    return result


def write_baseline(
    path: Path, findings: Sequence[Finding], *, overwrite: bool = False
) -> None:
    """Write a baseline covering ``findings`` (refuses to clobber one).

    ``overwrite`` exists only for ``--prune-baseline``, which rewrites
    the file with a subset of its existing entries -- never with new
    suppressions.
    """
    if path.exists() and not overwrite:
        raise BaselineError(
            f"baseline {path} already exists; baselines are add-only -- fix "
            "the new findings or remove the file deliberately"
        )
    entries = sorted(
        {
            (f.rule, f.path, f.message)
            for f in findings
        }
    )
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"rule": rule, "path": rel_path, "message": message}
            for rule, rel_path, message in entries
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def prune_baseline(path: Path, result: BaselineResult) -> int:
    """Rewrite the baseline dropping stale entries; returns count removed."""
    keep = sorted(
        {
            (f.rule, f.path, f.message)
            for f in result.suppressed
        }
    )
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"rule": rule, "path": rel_path, "message": message}
            for rule, rel_path, message in keep
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(result.stale)
