"""The shared per-file analysis context every rule family visits.

A :class:`FileContext` is built once per file and handed to each rule
family: the parsed AST with parent links, the module's dotted name (when
the file sits under a ``src/repro`` tree), the resolved layer, the
file's import bindings (``np`` -> ``numpy``, ``datetime`` ->
``datetime.datetime``) and the source ranges of ``TYPE_CHECKING``
blocks.  Rules stay small because everything positional or
name-resolution-shaped lives here.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.layers import Layer, LayerModel


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for a file under a ``src/repro`` tree.

    Walks the path's parents looking for an ``src`` directory whose
    child on this path is ``repro``; returns ``None`` when the file is
    not part of such a tree (the runner skips those files).
    """
    parts = path.resolve().parts
    for index in range(len(parts) - 1, 0, -1):
        if parts[index] == "repro" and parts[index - 1] == "src":
            dotted = ".".join(parts[index:-1] + (path.stem,))
            if path.stem == "__init__":
                dotted = ".".join(parts[index:-1])
            return dotted
    return None


class FileContext:
    """Parsed source, name bindings and layer resolution for one file."""

    def __init__(
        self,
        path: Path,
        source: str,
        *,
        rel_path: Optional[str] = None,
        module: Optional[str] = None,
        model: Optional[LayerModel] = None,
    ) -> None:
        """Parse ``source`` and precompute every shared lookup table."""
        self.path = path
        self.rel_path = rel_path if rel_path is not None else path.as_posix()
        self.source = source
        self.module: Optional[str] = (
            module if module is not None else module_name_for(path)
        )
        self.tree = ast.parse(source, filename=str(path))
        self.layer: Optional[Layer] = (
            model.layer_of(self.module) if model and self.module else None
        )
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.import_bindings = self._collect_import_bindings()
        self._type_checking_spans = self._collect_type_checking_spans()

    # -- structure ---------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (``None`` for the module root)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function or lambda containing ``node``, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return ancestor
        return None

    def at_module_level(self, node: ast.AST) -> bool:
        """True when ``node`` executes at import time (no enclosing function)."""
        return self.enclosing_function(node) is None

    def in_type_checking(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside an ``if TYPE_CHECKING:`` block."""
        line = getattr(node, "lineno", None)
        if line is None:
            return False
        return any(start <= line <= end for start, end in self._type_checking_spans)

    # -- name resolution ---------------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a ``Name``/``Attribute`` chain, aliases resolved.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the
        file holds ``import numpy as np``; ``datetime.now`` resolves to
        ``datetime.datetime.now`` under ``from datetime import
        datetime``.  Returns ``None`` for chains not rooted in a plain
        name (subscripts, calls, literals).
        """
        chain: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        chain.append(current.id)
        chain.reverse()
        head = chain[0]
        origin = self.import_bindings.get(head)
        if origin is not None:
            chain = origin.split(".") + chain[1:]
        return ".".join(chain)

    def _collect_import_bindings(self) -> Dict[str, str]:
        """Map local names to dotted origins from every import statement."""
        bindings: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    bindings[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bindings[local] = f"{node.module}.{alias.name}"
        return bindings

    def _collect_type_checking_spans(self) -> List[Tuple[int, int]]:
        """Line spans of every ``if TYPE_CHECKING:`` body in the file."""
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.If):
                continue
            test = self.resolve(node.test)
            if test in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
                body_end = max(
                    getattr(stmt, "end_lineno", stmt.lineno) for stmt in node.body
                )
                spans.append((node.body[0].lineno, body_end))
        return spans

    # -- import statement targets ------------------------------------------

    def import_targets(self, node: ast.AST) -> List[str]:
        """Dotted module targets of one ``import``/``from`` statement.

        Relative imports resolve against this file's module name; a
        relative import in a file with no module name yields nothing.
        """
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if isinstance(node, ast.ImportFrom):
            if node.level == 0:
                return [node.module] if node.module else []
            if self.module is None:
                return []
            package = self.module.split(".")
            if not self.path.stem == "__init__":
                package = package[:-1]
            base = package[: len(package) - (node.level - 1)]
            if not base:
                return []
            target = ".".join(base + ([node.module] if node.module else []))
            return [target] if target else []
        return []
