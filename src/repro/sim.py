"""Shared simulation primitives.

All subsystems (SSD, NIC, link, remote targets) advance a single
:class:`SimClock`.  The clock counts microseconds as integers so that
event ordering is exact and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

US_PER_MS = 1_000
US_PER_SECOND = 1_000_000
US_PER_MINUTE = 60 * US_PER_SECOND
US_PER_HOUR = 60 * US_PER_MINUTE
US_PER_DAY = 24 * US_PER_HOUR


class SimClock:
    """A monotonically advancing microsecond clock shared by all models.

    The clock never goes backwards.  ``advance`` moves time forward by a
    delta; ``advance_to`` moves it to an absolute timestamp and is a
    no-op if that timestamp is already in the past.
    """

    def __init__(self, start_us: int = 0) -> None:
        if start_us < 0:
            raise ValueError("clock cannot start at a negative time")
        self._now_us = int(start_us)

    @property
    def now_us(self) -> int:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us / US_PER_SECOND

    @property
    def now_days(self) -> float:
        """Current simulated time in days."""
        return self._now_us / US_PER_DAY

    def advance(self, delta_us: int) -> int:
        """Advance the clock by ``delta_us`` microseconds and return *now*."""
        if delta_us < 0:
            raise ValueError("cannot advance the clock by a negative delta")
        self._now_us += int(delta_us)
        return self._now_us

    def advance_to(self, timestamp_us: int) -> int:
        """Advance the clock to ``timestamp_us`` if it is in the future."""
        if timestamp_us > self._now_us:
            self._now_us = int(timestamp_us)
        return self._now_us

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimClock(now_us={self._now_us})"


@dataclass(order=True)
class _Event:
    timestamp_us: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class EventQueue:
    """A tiny discrete-event queue layered on top of :class:`SimClock`.

    Most of the simulator is trace driven (the caller replays a trace
    record by record), but background activities -- garbage collection,
    offload draining, periodic checkpoints -- are naturally expressed as
    scheduled events.  The queue keeps events sorted by timestamp and
    breaks ties by insertion order so runs are deterministic.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._events: List[_Event] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._events)

    def schedule(self, delay_us: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay_us`` after the current time."""
        if delay_us < 0:
            raise ValueError("cannot schedule an event in the past")
        self.schedule_at(self._clock.now_us + delay_us, callback)

    def schedule_at(self, timestamp_us: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute timestamp."""
        if timestamp_us < self._clock.now_us:
            raise ValueError("cannot schedule an event in the past")
        import heapq

        heapq.heappush(
            self._events, _Event(int(timestamp_us), self._sequence, callback)
        )
        self._sequence += 1

    def run_until(self, timestamp_us: int) -> int:
        """Run every event scheduled at or before ``timestamp_us``.

        Returns the number of events executed.  The clock is advanced to
        each event's timestamp before its callback runs and finally to
        ``timestamp_us``.
        """
        import heapq

        executed = 0
        while self._events and self._events[0].timestamp_us <= timestamp_us:
            event = heapq.heappop(self._events)
            self._clock.advance_to(event.timestamp_us)
            event.callback()
            executed += 1
        self._clock.advance_to(timestamp_us)
        return executed

    def next_timestamp(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        if not self._events:
            return None
        return self._events[0].timestamp_us


def format_duration(us: float) -> str:
    """Format a microsecond duration as a human-readable string."""
    if us < US_PER_MS:
        return f"{us:.0f}us"
    if us < US_PER_SECOND:
        return f"{us / US_PER_MS:.2f}ms"
    if us < US_PER_MINUTE:
        return f"{us / US_PER_SECOND:.2f}s"
    if us < US_PER_HOUR:
        return f"{us / US_PER_MINUTE:.2f}min"
    if us < US_PER_DAY:
        return f"{us / US_PER_HOUR:.2f}h"
    return f"{us / US_PER_DAY:.2f}days"


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Return the ``fraction`` percentile of an already sorted list.

    Uses linear interpolation between closest ranks.  Returns 0.0 for an
    empty list so metric reporting never raises on idle devices.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("percentile fraction must be within [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    low_value, high_value = sorted_values[lower], sorted_values[upper]
    # lerp as low + (high - low) * w: exact at w == 0 and when the two
    # ranks are equal, so rounding can never land outside [low, high]
    # (the a*(1-w) + b*w form can dip just below ``low``).
    return low_value + (high_value - low_value) * weight
