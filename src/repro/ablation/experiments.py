"""The paper's targeted ablation experiments, on the session lifecycle.

These are the three focused ablations the benchmark suite prints (A1:
offload path throughput per replayed volume, A2: enhanced trim versus
naive and disabled trim handling, A3: local versus remote detection per
attack family).  They predate the :mod:`repro.api` facade and used to
build devices and environments ad hoc; here each variant is an ordinary
:class:`~repro.api.spec.ScenarioSpec` run through a
:class:`~repro.api.session.Session`, with component toggles expressed
through the spec's ``ablation`` field wherever the feature registry
covers them.  The legacy entry points in
:mod:`repro.analysis.experiments` remain as warn-once shims over these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ssd.geometry import SSDGeometry


# ---------------------------------------------------------------------------
# A1: offload path throughput per replayed volume
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OffloadRow:
    """Offload-path behaviour for one replayed volume."""

    volume: str
    pages_offloaded: int
    raw_mb: float
    compressed_mb: float
    compression_ratio: float
    wire_mb: float
    link_backlog_us: float


def run_offload_ablation(
    volumes: Optional[List[str]] = None,
    geometry: Optional["SSDGeometry"] = None,
    duration_s: float = 0.1,
    time_compression: float = 30_000.0,
    seed: int = 17,
) -> List[OffloadRow]:
    """Replay volumes on RSSD and report what the offload path shipped.

    Each volume runs as an attack-free scenario (``attack="none"``)
    whose workload is the registered ``trace-<volume>`` replay; the
    replay's fixed 30,000x time compression means a non-default
    ``time_compression`` is expressed by scaling the trace duration.
    """
    from repro.api import ScenarioSpec, Session

    volumes = volumes if volumes is not None else ["hm", "src", "email", "usr"]
    rows: List[OffloadRow] = []
    for volume in volumes:
        spec = ScenarioSpec(
            defense="RSSD",
            attack="none",
            workload=f"trace-{volume}",
            device="tiny",
            victim_files=1,
            user_activity_hours=duration_s * (time_compression / 30_000.0),
            recent_edit_fraction=0.0,
            seed=seed,
        )
        session = (
            Session(spec) if geometry is None else Session(spec, geometry=geometry)
        )
        result = session.run()
        rssd = result.defense.rssd  # type: ignore[union-attr]
        rssd.drain_offload_queue()
        stats = rssd.offload.stats
        rows.append(
            OffloadRow(
                volume=volume,
                pages_offloaded=stats.pages_offloaded,
                raw_mb=stats.raw_bytes / 1024**2,
                compressed_mb=stats.compressed_bytes / 1024**2,
                compression_ratio=stats.compression_ratio,
                wire_mb=stats.wire_bytes / 1024**2,
                link_backlog_us=rssd.offload.link_backlog_us,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# A2: enhanced-trim ablation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrimAblationRow:
    """Outcome of the trimming attack under each trim-handling mode."""

    mode: str
    pages_trimmed: int
    recovered_fraction: float
    trim_rejected: bool


def run_trim_ablation(
    geometry: Optional["SSDGeometry"] = None,
    victim_files: int = 16,
) -> List[TrimAblationRow]:
    """Compare enhanced trim against retain-nothing and trim-disabled variants.

    The ``naive`` variant is the registry's ``enhanced-trim`` ablation
    (naive mode plus no trimmed-page retention); the ``disabled``
    variant (reject trims outright) is a measurement-only mode outside
    the registry, applied to the provisioned session directly.
    """
    from repro.api import ScenarioSpec, Session
    from repro.core.trim_handler import TrimMode

    base = ScenarioSpec(
        defense="RSSD",
        attack="trimming-attack",
        workload="idle",
        device="tiny",
        victim_files=victim_files,
        user_activity_hours=0.0,
        seed=23,
    )
    rows: List[TrimAblationRow] = []
    variants = (
        ("enhanced", (), None),
        ("naive", ("enhanced-trim",), None),
        ("disabled", (), TrimMode.DISABLED),
    )
    for label, ablation, forced_mode in variants:
        spec = replace(base, ablation=ablation)
        session = (
            Session(spec) if geometry is None else Session(spec, geometry=geometry)
        )
        session.provision()
        rssd = session.defense.rssd  # type: ignore[union-attr]
        if forced_mode is not None:
            rssd.trim_handler.set_mode(forced_mode)
        result = session.run()
        rows.append(
            TrimAblationRow(
                mode=label,
                pages_trimmed=result.attack_outcome.pages_trimmed,
                recovered_fraction=result.recovery_fraction,
                trim_rejected=rssd.trim_handler.stats.pages_rejected > 0,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# A3: local versus offloaded detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DetectionRow:
    """Detection outcomes of the local and remote detectors for one attack."""

    attack: str
    local_detected: bool
    remote_detected: bool
    remote_identified_attacker: bool


def run_detection_ablation(
    attack_names: Optional[List[str]] = None,
    geometry: Optional["SSDGeometry"] = None,
) -> List[DetectionRow]:
    """Run each attack against RSSD and compare the two detectors."""
    from repro.api import ScenarioSpec, Session

    attack_names = attack_names if attack_names is not None else [
        "classic",
        "gc-attack",
        "timing-attack",
        "trimming-attack",
    ]
    rows: List[DetectionRow] = []
    for name in attack_names:
        spec = ScenarioSpec(
            defense="RSSD",
            attack=name,
            workload="idle",
            device="tiny",
            victim_files=24,
            user_activity_hours=0.0,
            seed=23,
        )
        session = (
            Session(spec) if geometry is None else Session(spec, geometry=geometry)
        )
        result = session.run()
        reports = {
            report.detector: report
            for report in result.defense.detection_reports()  # type: ignore[union-attr]
        }
        local = reports["local-window"]
        remote = reports["remote-offloaded"]
        rows.append(
            DetectionRow(
                attack=name,
                local_detected=local.detected,
                remote_detected=remote.detected,
                remote_identified_attacker=(
                    session.env.attacker_stream in remote.suspected_streams  # type: ignore[union-attr]
                ),
            )
        )
    return rows
