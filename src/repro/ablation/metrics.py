"""Per-feature impact metrics over an ablation artifact.

The study's cells are matched pairs: for every configuration with
feature *F* enabled there may be a sibling identical except that *F* is
disabled (drop-one sweeps pair the full config with each single-feature
config; power-set sweeps pair every subset with its ``subset + {F}``
sibling).  :func:`calculate_metrics` averages the deltas over every such
pair, per attack, so a :class:`FeatureImpact` answers the paper's
question directly: *what does this component buy, against this attack,
holding everything else fixed?*

Deltas are oriented as ``enabled - disabled``: a positive
``recovery_fraction_delta`` means the feature improves recovery, a
positive ``mean_write_latency_delta_us`` means the feature costs write
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ablation.study import AblationArtifact, AblationCellResult


@dataclass(frozen=True)
class FeatureImpact:
    """Mean effect of enabling one feature, against one attack."""

    feature: str
    attack: str
    #: Matched (enabled, disabled) config pairs the means average over.
    pairs: int
    #: Mean recovery-fraction gain from enabling the feature.
    recovery_fraction_delta: float
    #: Mean change in detection rate (1.0 = the feature alone flips
    #: every pair from undetected to detected).
    detected_delta: float
    #: Mean detection-latency change in microseconds, over pairs where
    #: both sides detected; ``None`` when no such pair exists.
    detection_latency_delta_us: Optional[float]
    #: Mean write-amplification cost of the feature.
    write_amplification_delta: float
    #: Mean host write-latency cost in microseconds.
    mean_write_latency_delta_us: float
    #: Mean change in host commands issued (workload-visible overhead).
    host_commands_delta: float
    #: Mean change in retained pages lost before offload.
    data_loss_pages_delta: float


def _pair_cells(
    cells: Sequence[AblationCellResult], feature: str
) -> List[Tuple[AblationCellResult, AblationCellResult]]:
    """Matched (feature-enabled, feature-disabled) pairs among ``cells``.

    Two cells pair when their disabled sets differ exactly by
    ``feature`` -- everything else (attack included; callers group by
    attack first) held fixed.
    """
    by_disabled = {tuple(cell.disabled): cell for cell in cells}
    pairs = []
    for disabled, cell in sorted(by_disabled.items()):
        if feature in disabled:
            continue
        sibling_key = tuple(sorted(disabled + (feature,)))
        sibling = by_disabled.get(sibling_key)
        if sibling is not None:
            pairs.append((cell, sibling))
    return pairs


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def calculate_metrics(artifact: AblationArtifact) -> List[FeatureImpact]:
    """Per-feature, per-attack impact deltas for a completed study.

    Features and attacks with no matched pair are omitted (a power-set
    sweep always has pairs; a degenerate sweep may not).  Output order
    is deterministic: by feature, then attack.
    """
    features = [str(name) for name in artifact.sweep.get("features", [])]
    impacts: List[FeatureImpact] = []
    by_attack: Dict[str, List[AblationCellResult]] = {}
    for cell in artifact.cells:
        by_attack.setdefault(cell.attack, []).append(cell)
    for feature in sorted(features):
        for attack in sorted(by_attack):
            pairs = _pair_cells(by_attack[attack], feature)
            if not pairs:
                continue
            latency_deltas = [
                float(on.detection_latency_us - off.detection_latency_us)
                for on, off in pairs
                if on.detection_latency_us is not None
                and off.detection_latency_us is not None
            ]
            impacts.append(
                FeatureImpact(
                    feature=feature,
                    attack=attack,
                    pairs=len(pairs),
                    recovery_fraction_delta=_mean(
                        [on.recovery_fraction - off.recovery_fraction for on, off in pairs]
                    ),
                    detected_delta=_mean(
                        [float(on.detected) - float(off.detected) for on, off in pairs]
                    ),
                    detection_latency_delta_us=(
                        _mean(latency_deltas) if latency_deltas else None
                    ),
                    write_amplification_delta=_mean(
                        [
                            on.write_amplification - off.write_amplification
                            for on, off in pairs
                        ]
                    ),
                    mean_write_latency_delta_us=_mean(
                        [
                            on.mean_write_latency_us - off.mean_write_latency_us
                            for on, off in pairs
                        ]
                    ),
                    host_commands_delta=_mean(
                        [float(on.host_commands - off.host_commands) for on, off in pairs]
                    ),
                    data_loss_pages_delta=_mean(
                        [
                            float(on.data_loss_pages - off.data_loss_pages)
                            for on, off in pairs
                        ]
                    ),
                )
            )
    return impacts


def compare_configs(
    artifact: AblationArtifact, label_a: str, label_b: str
) -> Dict[str, Dict[str, object]]:
    """Field-by-field comparison of two configs, per attack.

    Returns ``{attack: {field: a_value - b_value}}`` for the numeric
    result fields (recovery, detection, overhead, data loss), with the
    detection-latency delta ``None`` when either side lacks a latency.
    Raises ``KeyError`` if a label is absent for some attack.
    """
    numeric_fields = (
        "recovery_fraction",
        "write_amplification",
        "mean_write_latency_us",
        "mean_read_latency_us",
        "host_commands",
        "flash_pages_programmed",
        "data_loss_pages",
        "pages_offloaded_remote",
    )
    by_attack: Dict[str, Dict[str, AblationCellResult]] = {}
    for cell in artifact.cells:
        by_attack.setdefault(cell.attack, {})[cell.config] = cell
    comparison: Dict[str, Dict[str, object]] = {}
    for attack in sorted(by_attack):
        configs = by_attack[attack]
        if label_a not in configs:
            raise KeyError(f"no config {label_a!r} for attack {attack!r}")
        if label_b not in configs:
            raise KeyError(f"no config {label_b!r} for attack {attack!r}")
        a, b = configs[label_a], configs[label_b]
        deltas: Dict[str, object] = {
            name: getattr(a, name) - getattr(b, name) for name in numeric_fields
        }
        deltas["detected"] = float(a.detected) - float(b.detected)
        if a.detection_latency_us is not None and b.detection_latency_us is not None:
            deltas["detection_latency_us"] = float(
                a.detection_latency_us - b.detection_latency_us
            )
        else:
            deltas["detection_latency_us"] = None
        comparison[attack] = deltas
    return comparison


_IMPACT_HEADERS = (
    "feature",
    "attack",
    "pairs",
    "recovery_delta",
    "detected_delta",
    "detection_latency_delta_us",
    "write_amp_delta",
    "write_latency_delta_us",
    "host_commands_delta",
    "data_loss_delta",
)


def _impact_rows(impacts: Sequence[FeatureImpact]) -> List[List[object]]:
    rows: List[List[object]] = []
    for impact in impacts:
        latency = (
            impact.detection_latency_delta_us
            if impact.detection_latency_delta_us is not None
            else "n/a"
        )
        rows.append(
            [
                impact.feature,
                impact.attack,
                impact.pairs,
                impact.recovery_fraction_delta,
                impact.detected_delta,
                latency,
                impact.write_amplification_delta,
                impact.mean_write_latency_delta_us,
                impact.host_commands_delta,
                impact.data_loss_pages_delta,
            ]
        )
    return rows


def render_impact_csv(impacts: Sequence[FeatureImpact]) -> str:
    """The per-feature impact table as CSV text."""
    from repro.analysis.reporting import format_csv

    return format_csv(_IMPACT_HEADERS, _impact_rows(impacts))


def render_impact_markdown(impacts: Sequence[FeatureImpact]) -> str:
    """The per-feature impact table as a GitHub-flavoured markdown table."""
    from repro.analysis.reporting import format_markdown_table

    return format_markdown_table(_IMPACT_HEADERS, _impact_rows(impacts))


def render_impact_table(impacts: Sequence[FeatureImpact]) -> str:
    """The per-feature impact table as an aligned fixed-width text table."""
    from repro.analysis.reporting import format_table

    return format_table(_IMPACT_HEADERS, _impact_rows(impacts))
