"""Immutable enable/disable set for one ablation cell.

An :class:`AblationConfig` names the features *disabled* in a scenario.
It canonicalizes to a sorted unique tuple so two configs describing the
same set compare (and hash, and serialize) identically, and renders a
compact ``label`` safe for cell keys and CSV cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.ablation.registry import validate_features


@dataclass(frozen=True)
class AblationConfig:
    """The set of defense features disabled for one scenario.

    The empty config (nothing disabled) is the full paper design.
    """

    #: Feature names disabled in this configuration (canonical: sorted,
    #: unique, registry-validated).
    disabled: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        """Validate against the feature registry and canonicalize."""
        object.__setattr__(self, "disabled", validate_features(self.disabled))

    @classmethod
    def full(cls) -> "AblationConfig":
        """The full design: every feature enabled."""
        return cls()

    @classmethod
    def without(cls, *features: str) -> "AblationConfig":
        """Config with the named features disabled."""
        return cls(disabled=tuple(features))

    def is_enabled(self, feature: str) -> bool:
        """Whether ``feature`` is enabled (i.e. not in the disabled set)."""
        validate_features([feature])
        return feature not in self.disabled

    @property
    def label(self) -> str:
        """Compact human-readable identifier.

        ``"full"`` for the empty config, otherwise ``no-<f>`` terms
        joined with ``+`` (e.g. ``no-enhanced-trim+no-local-detector``).
        Never contains ``,`` (CSV-safe) or ``/`` (cell-key-safe).
        """
        if not self.disabled:
            return "full"
        return "+".join("no-" + name for name in self.disabled)

    @staticmethod
    def sweep(features: Iterable[str], mode: str = "drop-one") -> Tuple["AblationConfig", ...]:
        """Enumerate the configs of a sweep over ``features``.

        ``drop-one`` yields the full config plus one config per feature
        with just that feature disabled (``1 + n`` cells); ``power-set``
        yields every subset of the features (``2**n`` cells).  Order is
        deterministic: by number of disabled features, then
        lexicographically.
        """
        names = validate_features(features)
        if mode == "drop-one":
            configs = [AblationConfig()]
            configs.extend(AblationConfig(disabled=(name,)) for name in names)
        elif mode == "power-set":
            configs = []
            for mask in range(2 ** len(names)):
                subset = tuple(
                    name for bit, name in enumerate(names) if mask >> bit & 1
                )
                configs.append(AblationConfig(disabled=subset))
        else:
            raise ValueError(
                "unknown sweep mode %r (expected 'drop-one' or 'power-set')" % (mode,)
            )
        configs.sort(key=lambda config: (len(config.disabled), config.disabled))
        return tuple(configs)
