"""Component-level ablation framework over the campaign engine.

The paper's claims are about *components* -- selective retention,
NVMe-oE offload, enhanced trim, each in-device detector, the GC policy,
the retention eviction rule -- but the defenses in the capability matrix
are all-or-nothing.  This package makes the components individually
toggleable and measurable:

* :mod:`repro.ablation.registry` declares every toggleable feature and
  knows how to disable it on a live defense instance;
* :mod:`repro.ablation.config` is the immutable enable/disable set that
  rides inside a :class:`~repro.api.spec.ScenarioSpec` (its optional
  ``ablation`` field);
* :mod:`repro.ablation.study` sweeps feature drop-one sets or power-sets
  through the campaign :class:`~repro.campaign.runner.ExperimentRunner`
  with SHA-256 per-cell seeding, bit-identical across the
  sequential/thread/process backends, and emits a versioned JSON
  artifact;
* :mod:`repro.ablation.metrics` turns an artifact into per-feature
  impact deltas (recovery fraction, detection, latency, I/O overhead)
  plus CSV/Markdown reports;
* :mod:`repro.ablation.experiments` hosts the paper's targeted
  offload/trim/detection ablation experiments, ported onto the
  spec-and-session lifecycle.

The ``repro ablate`` CLI subcommand drives all of it.
"""

from repro.ablation.config import AblationConfig
from repro.ablation.experiments import (
    DetectionRow,
    OffloadRow,
    TrimAblationRow,
    run_detection_ablation,
    run_offload_ablation,
    run_trim_ablation,
)
from repro.ablation.metrics import (
    FeatureImpact,
    calculate_metrics,
    compare_configs,
    render_impact_csv,
    render_impact_markdown,
    render_impact_table,
)
from repro.ablation.registry import (
    FEATURES,
    AblationError,
    Feature,
    apply_ablation,
    feature_names,
    validate_features,
)
from repro.ablation.study import (
    AblationArtifact,
    AblationCellResult,
    AblationStudy,
    run_ablation_cell,
)

__all__ = [
    "FEATURES",
    "AblationArtifact",
    "AblationCellResult",
    "AblationConfig",
    "AblationError",
    "AblationStudy",
    "DetectionRow",
    "Feature",
    "FeatureImpact",
    "OffloadRow",
    "TrimAblationRow",
    "apply_ablation",
    "calculate_metrics",
    "compare_configs",
    "feature_names",
    "render_impact_csv",
    "render_impact_markdown",
    "render_impact_table",
    "run_ablation_cell",
    "run_detection_ablation",
    "run_offload_ablation",
    "run_trim_ablation",
    "validate_features",
]
