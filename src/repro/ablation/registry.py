"""Registry of toggleable defense components.

Each :class:`Feature` names one component of the paper's design and
knows how to *disable* it on a live :class:`~repro.defenses.rssd_adapter.RSSDDefense`
instance -- the session applies the disables right after the defense is
built, before any I/O runs, so an ablated cell differs from the full
configuration only in the named component.

Feature names are part of the :class:`~repro.api.spec.ScenarioSpec`
schema (its ``ablation`` field lists *disabled* features), so they are
validated here in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.defenses.base import Defense
    from repro.defenses.rssd_adapter import RSSDDefense


class AblationError(ValueError):
    """Raised for unknown feature names or defenses without the toggle point."""


@dataclass(frozen=True)
class Feature:
    """One toggleable defense component.

    ``disable`` mutates a freshly built :class:`RSSDDefense` so the
    component is off for the whole session; it must be applied before
    any host I/O reaches the device.
    """

    #: Stable identifier used in ``ScenarioSpec.ablation`` and CLI flags.
    name: str
    #: One-line description of what disabling the feature removes.
    summary: str
    #: The paper design point the feature ablates (used by the docs).
    paper_component: str
    #: Applies the disable to a live RSSD defense.
    disable: Callable[["RSSDDefense"], None]


def _disable_selective_retention(defense: "RSSDDefense") -> None:
    defense.rssd.retention.retain_overwrites = False


def _disable_remote_offload(defense: "RSSDDefense") -> None:
    defense.rssd.offload.enabled = False


def _disable_enhanced_trim(defense: "RSSDDefense") -> None:
    from repro.core.trim_handler import TrimMode

    defense.rssd.trim_handler.set_mode(TrimMode.NAIVE)
    defense.rssd.retention.retain_trimmed = False


def _disable_local_detector(defense: "RSSDDefense") -> None:
    defense.local_detection_enabled = False


def _disable_remote_detector(defense: "RSSDDefense") -> None:
    defense.remote_detection_enabled = False


def _disable_gc_policy(defense: "RSSDDefense") -> None:
    from repro.ssd.gc import CostBenefitGC

    old = defense.rssd.ssd.gc
    defense.rssd.ssd.gc = CostBenefitGC(
        max_blocks_per_pass=old.max_blocks_per_pass,
        victim_scan_width=old.victim_scan_width,
    )


def _disable_retention_eviction(defense: "RSSDDefense") -> None:
    defense.rssd.retention.evict_under_pressure = True


#: Every toggleable component, keyed by feature name.
FEATURES: Dict[str, Feature] = {
    feature.name: feature
    for feature in (
        Feature(
            name="selective-retention",
            summary="retain overwrite-invalidated page versions",
            paper_component="conservative retention of overwritten data",
            disable=_disable_selective_retention,
        ),
        Feature(
            name="remote-offload",
            summary="ship retained data and log segments over NVMe-oE",
            paper_component="hardware-isolated NVMe-oE offload path",
            disable=_disable_remote_offload,
        ),
        Feature(
            name="enhanced-trim",
            summary="defer trims and retain trimmed page versions",
            paper_component="enhanced trim command handling",
            disable=_disable_enhanced_trim,
        ),
        Feature(
            name="local-detector",
            summary="in-device sliding-window detector",
            paper_component="local (SSDInsider-style) detection",
            disable=_disable_local_detector,
        ),
        Feature(
            name="remote-detector",
            summary="remote full-oplog detector",
            paper_component="remote detection over the offloaded log",
            disable=_disable_remote_detector,
        ),
        Feature(
            name="gc-policy",
            summary="retention-aware greedy GC victim scoring",
            paper_component="GC policy co-designed with retention",
            disable=_disable_gc_policy,
        ),
        Feature(
            name="retention-eviction",
            summary="throttle-and-drain instead of evicting under GC pressure",
            paper_component="retention backpressure on the GC attack",
            disable=_disable_retention_eviction,
        ),
    )
}


def feature_names() -> List[str]:
    """All registered feature names, sorted."""
    return sorted(FEATURES)


def validate_features(names: Iterable[str]) -> Tuple[str, ...]:
    """Check every name against the registry; return them sorted and unique.

    Raises :class:`AblationError` naming the unknown features (and the
    valid vocabulary) on any miss.
    """
    requested = list(names)
    unknown = sorted(set(requested) - set(FEATURES))
    if unknown:
        raise AblationError(
            "unknown ablation features: "
            + ", ".join(unknown)
            + " (known: "
            + ", ".join(feature_names())
            + ")"
        )
    return tuple(sorted(set(requested)))


def apply_ablation(defense: "Defense", disabled: Iterable[str]) -> None:
    """Disable each named feature on a freshly built defense.

    Must run before any host I/O.  Raises :class:`AblationError` if a
    feature name is unknown or the defense lacks the toggle points
    (every current feature toggles RSSD internals, so only
    :class:`~repro.defenses.rssd_adapter.RSSDDefense` qualifies).
    """
    names = validate_features(disabled)
    if not names:
        return
    if not hasattr(defense, "rssd"):
        raise AblationError(
            "defense %r does not expose RSSD component toggles; "
            "ablation requires the RSSD defense" % (defense.name,)
        )
    for name in names:
        FEATURES[name].disable(defense)  # type: ignore[arg-type]
