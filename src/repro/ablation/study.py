"""The ablation study runner and its versioned JSON artifact.

An :class:`AblationStudy` takes one base :class:`~repro.api.spec.ScenarioSpec`,
a set of toggleable features, and an attack axis, and runs every
(attack, ablation-config) cell through the campaign
:class:`~repro.campaign.runner.ExperimentRunner`.  Each cell is an
ordinary spec-and-session run -- the ablation rides inside the spec's
``ablation`` field -- so the per-cell rng streams derive from
``(seed, scenario_key, purpose)`` through SHA-256 exactly like campaign
cells.  ``scenario_key`` deliberately excludes the ablation, so every
config of a scenario sees bit-identical workload and attack streams and
result deltas are attributable purely to the toggled component.

Results reduce to picklable :class:`AblationCellResult` records inside
the worker, and the collected :class:`AblationArtifact` is canonical
JSON (sorted cells, stable key order) -- bit-identical across the
sequential, thread and process backends, pinned by the
``tests/golden/ablation_tiny.json`` golden.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.ablation.config import AblationConfig
from repro.ablation.registry import validate_features

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.spec import ScenarioSpec
    from repro.campaign.cache import CacheStats, ResultCache
    from repro.campaign.checkpoint import CheckpointJournal

#: Bump when the ablation artifact schema changes; readers refuse newer.
ABLATION_ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class AblationCellResult:
    """Scored outcome of one (attack, ablation-config) cell."""

    #: ``scenario_key + "/" + config label`` -- unique within a study.
    cell_key: str
    #: The :attr:`AblationConfig.label` of the cell's config.
    config: str
    #: Feature names disabled in this cell (sorted).
    disabled: List[str]
    attack: str
    # -- recovery ---------------------------------------------------------
    recovery_fraction: float
    defended: bool
    # -- detection --------------------------------------------------------
    detected: bool
    detection_latency_us: Optional[int]
    # -- I/O overhead -----------------------------------------------------
    write_amplification: float
    mean_write_latency_us: float
    mean_read_latency_us: float
    host_commands: int
    flash_pages_programmed: int
    # -- component-level accounting ---------------------------------------
    #: Retained pages destroyed before reaching the remote tier.
    data_loss_pages: int
    #: Pages the offload engine actually shipped to the remote tier.
    pages_offloaded_remote: int
    # -- provenance -------------------------------------------------------
    #: Hex head of the device's oplog hash chain; pins the exact command
    #: stream, which is how backend determinism is asserted.
    oplog_hash: Optional[str]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the cell (field names preserved verbatim)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AblationCellResult":
        """Rebuild a cell from its :meth:`to_dict` form."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class AblationArtifact:
    """A completed ablation study: sweep description plus per-cell results."""

    #: The base spec every cell was derived from (its ``to_dict`` form).
    base_spec: Dict[str, object]
    #: The sweep parameters (features, mode, attack axis).
    sweep: Dict[str, object]
    cells: List[AblationCellResult] = field(default_factory=list)
    version: int = ABLATION_ARTIFACT_VERSION
    #: Cache accounting for the run that built this artifact; in-memory
    #: provenance only, excluded from serialization and comparison so
    #: warm-cache runs stay bit-identical to cold ones.
    cache_stats: Optional["CacheStats"] = field(
        default=None, compare=False, repr=False
    )
    #: Cells served from a resumed checkpoint journal (provenance only,
    #: excluded from serialization and comparison like ``cache_stats``).
    cells_resumed: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        """Sort cells by key so serialization is execution-order independent."""
        self.cells = sorted(self.cells, key=lambda cell: cell.cell_key)

    def cell(self, cell_key: str) -> AblationCellResult:
        """The result for one cell key (raises ``KeyError`` if absent)."""
        for result in self.cells:
            if result.cell_key == cell_key:
                return result
        raise KeyError(f"no cell named {cell_key!r} in this artifact")

    @property
    def cell_keys(self) -> List[str]:
        """All cell keys, in the sorted artifact order."""
        return [result.cell_key for result in self.cells]

    @property
    def config_labels(self) -> List[str]:
        """The distinct config labels present, sorted."""
        return sorted({result.config for result in self.cells})

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: version, base spec, sweep, sorted cells."""
        return {
            "version": self.version,
            "base_spec": self.base_spec,
            "sweep": self.sweep,
            "cells": [result.to_dict() for result in self.cells],
        }

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AblationArtifact":
        """Rebuild an artifact, refusing versions newer than this reader."""
        version = int(data.get("version", -1))
        if version > ABLATION_ARTIFACT_VERSION:
            raise ValueError(
                f"ablation artifact version {version} is newer than supported "
                f"version {ABLATION_ARTIFACT_VERSION}"
            )
        return cls(
            base_spec=dict(data.get("base_spec", {})),  # type: ignore[arg-type]
            sweep=dict(data.get("sweep", {})),  # type: ignore[arg-type]
            cells=[
                AblationCellResult.from_dict(cell)  # type: ignore[arg-type]
                for cell in data.get("cells", [])  # type: ignore[union-attr]
            ],
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "AblationArtifact":
        """Parse an artifact from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "AblationArtifact":
        """Read an artifact previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def diff(self, baseline: "AblationArtifact") -> List[str]:
        """Human-readable field-level differences against ``baseline``.

        Empty when the artifacts agree on every shared cell and neither
        has cells the other lacks.
        """
        differences: List[str] = []
        ours = {cell.cell_key: cell for cell in self.cells}
        theirs = {cell.cell_key: cell for cell in baseline.cells}
        for key in sorted(set(theirs) - set(ours)):
            differences.append(f"missing cell: {key}")
        for key in sorted(set(ours) - set(theirs)):
            differences.append(f"extra cell: {key}")
        for key in sorted(set(ours) & set(theirs)):
            mine, other = ours[key].to_dict(), theirs[key].to_dict()
            for fname in sorted(mine):
                if mine[fname] != other[fname]:
                    differences.append(
                        f"{key}: {fname} {other[fname]!r} -> {mine[fname]!r}"
                    )
        return differences


def _ablation_cell_key(spec: "ScenarioSpec") -> str:
    """The journal/cache key of one ablation cell.

    Matches :attr:`AblationCellResult.cell_key`: the scenario key plus
    the config label (the ablation is deliberately not part of the
    scenario key, so the label disambiguates the variants).
    """
    config = AblationConfig(disabled=spec.ablation)
    return f"{spec.scenario_key}/{config.label}"


def run_ablation_cell(spec: "ScenarioSpec") -> AblationCellResult:
    """Execute one ablation cell and reduce it to a picklable record.

    Module-level (and taking only a picklable
    :class:`~repro.api.spec.ScenarioSpec`) so the process backend can
    ship it to workers; the cell key appends the ablation label to the
    scenario key because the ablation is deliberately not part of the
    scenario key itself.
    """
    from repro.api import Session

    config = AblationConfig(disabled=spec.ablation)
    session = Session(spec)
    result = session.run()
    defense = result.defense
    rssd = getattr(defense, "rssd", None)
    if rssd is not None:
        data_loss_pages = int(rssd.retention.stats.data_loss_pages)
        pages_offloaded_remote = int(rssd.offload.stats.pages_offloaded)
    else:
        data_loss_pages = 0
        pages_offloaded_remote = 0
    return AblationCellResult(
        cell_key=f"{spec.scenario_key}/{config.label}",
        config=config.label,
        disabled=list(config.disabled),
        attack=spec.attack,
        recovery_fraction=result.recovery_fraction,
        defended=result.defended,
        detected=result.detected,
        detection_latency_us=result.detection_latency_us,
        write_amplification=result.write_amplification,
        mean_write_latency_us=result.mean_write_latency_us,
        mean_read_latency_us=result.mean_read_latency_us,
        host_commands=result.host_commands,
        flash_pages_programmed=result.flash_pages_programmed,
        data_loss_pages=data_loss_pages,
        pages_offloaded_remote=pages_offloaded_remote,
        oplog_hash=result.oplog_hash,
    )


@dataclass(frozen=True)
class AblationStudy:
    """A feature sweep over one base scenario.

    ``features`` are the components under study; ``mode`` selects the
    sweep shape (``drop-one`` or ``power-set``, see
    :meth:`AblationConfig.sweep`); ``attacks`` is the attack axis (each
    config runs once per attack).  The base spec's own ``ablation`` and
    explicit per-stream seeds are cleared so every cell derives its rng
    streams from ``(seed, scenario_key)`` uniformly.
    """

    #: The scenario every cell is a variant of.
    base_spec: "ScenarioSpec"
    #: Feature names swept (sorted, unique, registry-validated).
    features: Tuple[str, ...]
    #: Sweep shape: ``"drop-one"`` or ``"power-set"``.
    mode: str = "drop-one"
    #: Attack names to run every config against (defaults to the base
    #: spec's attack).
    attacks: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        """Canonicalize features/attacks and normalize the base spec."""
        object.__setattr__(self, "features", validate_features(self.features))
        if not self.features:
            raise ValueError("an ablation study needs at least one feature")
        if self.mode not in ("drop-one", "power-set"):
            raise ValueError(
                "unknown sweep mode %r (expected 'drop-one' or 'power-set')"
                % (self.mode,)
            )
        base = replace(
            self.base_spec,
            ablation=(),
            env_seed=None,
            workload_seed=None,
            attack_seed=None,
        )
        object.__setattr__(self, "base_spec", base)
        attacks = tuple(self.attacks) if self.attacks else (base.attack,)
        object.__setattr__(self, "attacks", attacks)

    @classmethod
    def tiny(cls) -> "AblationStudy":
        """The pinned smoke-test study (golden ``ablation_tiny.json``).

        Three features in drop-one mode over two attacks -- 8 cells,
        small enough for CI, large enough to exercise every toggle the
        acceptance gate cares about.
        """
        from repro.api.spec import ScenarioSpec

        base = ScenarioSpec(
            defense="RSSD",
            attack="classic",
            workload="office-edit",
            device="tiny",
            victim_files=8,
            user_activity_hours=2.0,
            seed=107,
        )
        return cls(
            base_spec=base,
            features=("enhanced-trim", "local-detector", "remote-offload"),
            attacks=("classic", "trimming-attack"),
        )

    @property
    def configs(self) -> Tuple[AblationConfig, ...]:
        """The sweep's configs, in deterministic order."""
        return AblationConfig.sweep(self.features, mode=self.mode)

    def specs(self) -> List["ScenarioSpec"]:
        """One fully-specified :class:`ScenarioSpec` per (attack, config) cell."""
        out = []
        for attack in self.attacks:
            for config in self.configs:
                out.append(
                    replace(self.base_spec, attack=attack, ablation=config.disabled)
                )
        return out

    def run(
        self,
        backend: str = "sequential",
        jobs: int = 0,
        cache: Optional["ResultCache"] = None,
        journal: Optional["CheckpointJournal"] = None,
        resume: bool = False,
        after_cell: Optional[Callable] = None,
    ) -> AblationArtifact:
        """Execute every cell through an :class:`ExperimentRunner`.

        The artifact is bit-identical whichever backend runs it: specs
        are picklable, cells are scored in the worker, and the artifact
        sorts its cells by key.  The campaign persistence layer rides
        along unchanged: ``cache`` serves unchanged cells from the
        content-addressed store (each ablation variant hashes
        differently because ``ablation`` is part of the spec's
        canonical JSON), ``journal`` checkpoints each completed cell,
        ``resume=True`` re-runs only what the journal is missing, and
        ``after_cell`` fires after each executed cell becomes durable
        (the fault-injection harness's hook point).
        """
        from repro.campaign.cache import map_with_cache
        from repro.campaign.checkpoint import build_header, verify_header
        from repro.campaign.runner import ExperimentRunner

        runner = ExperimentRunner(backend=backend, jobs=jobs)
        sweep = {
            "features": list(self.features),
            "mode": self.mode,
            "attacks": list(self.attacks),
            "configs": [config.label for config in self.configs],
        }
        completed = None
        if journal is not None:
            header = build_header(
                "ablation",
                ABLATION_ARTIFACT_VERSION,
                self.base_spec.seed,
                {"base_spec": self.base_spec.to_dict(), "sweep": sweep},
                fingerprint=cache.fingerprint if cache is not None else None,
            )
            if resume:
                found, completed = journal.load()
                verify_header(found, header)
                journal.resume()
            else:
                journal.start(header)
        elif resume:
            raise ValueError("resume=True needs a checkpoint journal")
        try:
            cells = map_with_cache(
                runner,
                run_ablation_cell,
                self.specs(),
                kind="ablation-cell",
                artifact_version=ABLATION_ARTIFACT_VERSION,
                key_fn=_ablation_cell_key,
                hash_fn=lambda spec: spec.spec_hash(),
                encode=lambda result: result.to_dict(),
                decode=AblationCellResult.from_dict,
                cache=cache,
                journal=journal,
                completed=completed,
                after_cell=after_cell,
            )
        finally:
            if journal is not None:
                journal.close()
        artifact = AblationArtifact(
            base_spec=self.base_spec.to_dict(),
            sweep=sweep,
            cells=list(cells),
        )
        artifact.cache_stats = cache.stats if cache is not None else None
        if completed:
            artifact.cells_resumed = sum(
                1 for spec in self.specs() if _ablation_cell_key(spec) in completed
            )
        return artifact
