"""The forensics facade: one entry point over a live RSSD device.

:class:`ForensicsEngine` binds the timeline builder, the classifier and
the point-in-time recovery service to the evidence sources a concrete
:class:`~repro.core.rssd.RSSD` owns -- its operation log, retention
archive, offload engine and NVMe-oE remote tier -- and produces the
:class:`~repro.forensics.report.ForensicReport` everything downstream
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.forensics import PostAttackAnalyzer
from repro.core.rssd import RSSD
from repro.forensics.classify import AttackClassification, classify_attack
from repro.forensics.pitr import PointInTimeRecovery, RecoveredImage, Snapshot
from repro.forensics.report import ForensicReport, classification_fields
from repro.forensics.timeline import OperationTimeline


@dataclass(frozen=True)
class ChainStatus:
    """Outcome of verifying the full evidence chain."""

    total_entries: int
    sealed_segments: int
    offloaded_segments: int
    chain_verified: bool
    tampered_at: Optional[int]
    remote_time_order_ok: Optional[bool]

    @property
    def trustworthy(self) -> bool:
        """Whether every integrity check the evidence supports passed."""
        return self.chain_verified and self.remote_time_order_ok is not False

    def errors(self) -> List[str]:
        """Structured error strings for every failed integrity check."""
        problems: List[str] = []
        if not self.chain_verified:
            where = "unknown" if self.tampered_at is None else str(self.tampered_at)
            problems.append(f"oplog-chain-mismatch: first divergence at entry {where}")
        if self.remote_time_order_ok is False:
            problems.append(
                "remote-time-order-violation: remote tier arrivals are not "
                "append-ordered"
            )
        return problems


class ForensicsEngine:
    """Post-attack analysis and recovery over one RSSD device."""

    def __init__(self, rssd: RSSD) -> None:
        self.rssd = rssd
        self._timeline: Optional[OperationTimeline] = None
        self._analyzer = PostAttackAnalyzer(
            oplog=rssd.oplog, clock=rssd.clock, offload=rssd.offload
        )

    # -- evidence ---------------------------------------------------------

    @property
    def timeline(self) -> OperationTimeline:
        """The verified per-LBA timeline (built once, then cached)."""
        if self._timeline is None:
            self._timeline = OperationTimeline.from_oplog(
                self.rssd.oplog, self.rssd.retention
            )
        return self._timeline

    def verify_chain(self) -> ChainStatus:
        """Verify the hash chain and the remote tier's arrival order."""
        segments = self.rssd.oplog.sealed_segments()
        timeline = self.timeline
        return ChainStatus(
            total_entries=timeline.total_entries,
            sealed_segments=len(segments),
            offloaded_segments=sum(1 for s in segments if s.offloaded),
            chain_verified=timeline.chain_verified,
            tampered_at=timeline.tampered_at,
            remote_time_order_ok=self.rssd.remote.verify_time_order(),
        )

    # -- classification ---------------------------------------------------

    def classify(self) -> AttackClassification:
        """Identify the attack pattern, origin and blast radius."""
        profiles = self._analyzer.profile_streams()
        suspects = self._analyzer.suspect_streams(profiles)
        return classify_attack(
            self.timeline, profiles, suspects, page_size=self.rssd.page_size
        )

    # -- recovery ---------------------------------------------------------

    def recovery(self) -> PointInTimeRecovery:
        """The point-in-time recovery service bound to this device."""
        return PointInTimeRecovery(
            ssd=self.rssd.ssd,
            retention=self.rssd.retention,
            oplog=self.rssd.oplog,
            offload=self.rssd.offload,
            timeline=self.timeline,
        )

    def snapshots(self) -> List[Snapshot]:
        """Recoverable points in the evidence chain, oldest first."""
        return self.recovery().snapshots()

    def recover_to(
        self, timestamp_us: int, simulate_fetch: bool = False
    ) -> RecoveredImage:
        """Rebuild the device image as of ``timestamp_us`` (read-only)."""
        return self.recovery().rebuild_image(timestamp_us, simulate_fetch=simulate_fetch)

    # -- the full report --------------------------------------------------

    def investigate(
        self,
        recover_to_us: Optional[int] = None,
        simulate_fetch: bool = False,
        image: Optional[RecoveredImage] = None,
    ) -> ForensicReport:
        """Run the complete analysis and assemble one forensic report.

        ``recover_to_us`` defaults to just before the first malicious
        operation, so the report's recovery section answers "what could
        we get back if we rolled the attack away?".  When no attack is
        identified and no explicit target is given, the recovery section
        is empty (there is nothing to roll back).  Callers that already
        rebuilt an image pass it as ``image`` to avoid a second
        per-LBA materialization; its ``target_us`` wins.
        """
        status = self.verify_chain()
        classification = self.classify()

        target_us: Optional[int] = recover_to_us
        if image is not None:
            target_us = image.target_us
        elif target_us is None and classification.first_malicious_us is not None:
            target_us = classification.first_malicious_us - 1

        if target_us is not None:
            if image is None:
                image = self.recover_to(target_us, simulate_fetch=simulate_fetch)
            recovery_fields = {
                "recovery_target_us": target_us,
                "pages_recovered_local": len(image.recovered_local),
                "pages_recovered_remote": len(image.recovered_remote),
                "pages_unverified": len(image.unverified),
                "pages_lost": image.pages_lost,
                "pages_unmapped": len(image.unmapped),
                "recovery_exact": image.is_exact,
                "lost_lbas": sorted(image.lost),
            }
        else:
            recovery_fields = {
                "recovery_target_us": None,
                "pages_recovered_local": 0,
                "pages_recovered_remote": 0,
                "pages_unverified": 0,
                "pages_lost": 0,
                "pages_unmapped": 0,
                "recovery_exact": True,
                "lost_lbas": [],
            }

        timeline = self.timeline
        return ForensicReport(
            total_entries=status.total_entries,
            sealed_segments=status.sealed_segments,
            offloaded_segments=status.offloaded_segments,
            chain_verified=status.chain_verified,
            tampered_at=status.tampered_at,
            remote_time_order_ok=status.remote_time_order_ok,
            lbas_touched=len(timeline.lbas()),
            gc_relocations=timeline.gc_relocations,
            timeline_span_us=timeline.span_us,
            **classification_fields(classification),
            **recovery_fields,
        )
