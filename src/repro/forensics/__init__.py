"""Post-attack forensics and point-in-time recovery.

This package turns the raw evidence RSSD accumulates during normal
operation -- the hardware operation log (:mod:`repro.core.oplog`), the
retention archive (:mod:`repro.core.retention`) and the NVMe-oE remote
tier (:mod:`repro.nvmeoe.remote`) -- into the three concrete artifacts
the paper's post-attack analysis promises:

1. a **per-LBA operation timeline** with hash-chain verification
   (:mod:`repro.forensics.timeline`),
2. an **attack classification**: which attack pattern ran, its first
   malicious operation and its blast radius
   (:mod:`repro.forensics.classify`), and
3. **point-in-time recovery**: the exact device image as of any
   timestamp, with precise recovered / lost page sets instead of an
   estimated recovery fraction (:mod:`repro.forensics.pitr`).

:class:`~repro.forensics.engine.ForensicsEngine` is the facade that
binds the three to a live RSSD device; campaign cells, the
``repro recover`` CLI and the golden forensic report all go through it.
"""

from repro.forensics.classify import AttackClassification, classify_attack
from repro.forensics.engine import ChainStatus, ForensicsEngine
from repro.forensics.pitr import (
    PointInTimeRecovery,
    RecoveredImage,
    Snapshot,
    TraceRecorder,
    reference_image,
)
from repro.forensics.report import ForensicReport
from repro.forensics.timeline import LBAHistory, OperationTimeline, TimelineEvent

__all__ = [
    "AttackClassification",
    "ChainStatus",
    "ForensicReport",
    "ForensicsEngine",
    "LBAHistory",
    "OperationTimeline",
    "PointInTimeRecovery",
    "RecoveredImage",
    "Snapshot",
    "TimelineEvent",
    "TraceRecorder",
    "classify_attack",
    "reference_image",
]
