"""Point-in-time recovery: rebuild the device image as of any timestamp.

The recovery fraction the capability matrix scores is an estimate over
the attacker's victim set.  This module computes the real thing: given
a target timestamp, it determines from the verified timeline exactly
which logical pages were mapped and what each contained, then
materializes every one of them from the live flash array, the local
retention archive, or the offloaded copies on the remote tier -- and
reports the precise recovered / lost page sets.

A :class:`TraceRecorder` plus :func:`reference_image` provide the
independent ground truth the golden tests compare against: the recorder
captures the host command stream as a plain list (no hash chain, no
archive), and the reference image replays a prefix of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.offload import OffloadEngine
from repro.core.oplog import OperationLog
from repro.core.retention import RetentionManager
from repro.forensics.timeline import OperationTimeline
from repro.ssd.device import HostOp, HostOpType, SSD
from repro.ssd.flash import PageContent


@dataclass(frozen=True)
class Snapshot:
    """One recoverable point in the evidence chain.

    Every sealed log segment is a consistent recovery point (its entries
    are chained and, once offloaded, survive device destruction); the
    open log tail contributes one more covering the most recent
    operations.
    """

    kind: str
    segment_id: Optional[int]
    last_sequence: int
    timestamp_us: int
    entries: int
    offloaded: bool


@dataclass
class RecoveredImage:
    """The rebuilt device image and the exact per-page outcome sets."""

    target_us: int
    #: Final image: lba -> fingerprint (``None`` = unmapped at target).
    pages: Dict[int, Optional[int]] = field(default_factory=dict)
    #: Pages restored from the live flash array or local retention.
    recovered_local: List[int] = field(default_factory=list)
    #: Pages whose copy had to come from the remote tier.
    recovered_remote: List[int] = field(default_factory=list)
    #: Pages restored by timestamp alone (the aggregated log entry did
    #: not carry their hash, so content equality could not be checked).
    unverified: List[int] = field(default_factory=list)
    #: Pages that were mapped at the target time but are not producible.
    lost: List[int] = field(default_factory=list)
    #: Pages unmapped at the target time (trimmed or never written).
    unmapped: List[int] = field(default_factory=list)
    #: Microseconds the rebuild took (0 unless fetches were simulated).
    duration_us: float = 0.0
    #: Restorable content for each recovered page, for ``apply``.
    contents: Dict[int, PageContent] = field(default_factory=dict)

    @property
    def pages_recovered(self) -> int:
        """Pages materialized, from either tier."""
        return len(self.recovered_local) + len(self.recovered_remote)

    @property
    def pages_lost(self) -> int:
        """Pages mapped at the target time but not producible."""
        return len(self.lost)

    @property
    def is_exact(self) -> bool:
        """True when every mapped page was recovered with a verified hash."""
        return not self.lost and not self.unverified

    def matches(self, reference: Dict[int, Optional[int]]) -> bool:
        """Whether the rebuilt image equals an independent reference image.

        References built by :func:`reference_image` map pages whose
        aggregated command did not carry a content hash to ``None``;
        the rebuild's ``unverified`` pages are normalised the same way
        so a multi-page write compares by coverage, not by a hash the
        evidence never recorded.
        """
        if self.lost:
            return False
        unverified = set(self.unverified)
        mine = {
            lba: (None if lba in unverified else fingerprint)
            for lba, fingerprint in self.pages.items()
        }
        return mine == reference


class PointInTimeRecovery:
    """Rebuilds exact device images from the log, archive and remote tier."""

    def __init__(
        self,
        ssd: SSD,
        retention: RetentionManager,
        oplog: OperationLog,
        offload: Optional[OffloadEngine] = None,
        timeline: Optional[OperationTimeline] = None,
    ) -> None:
        self.ssd = ssd
        self.retention = retention
        self.oplog = oplog
        self.offload = offload
        self._timeline = timeline

    @property
    def timeline(self) -> OperationTimeline:
        """The verified timeline (built lazily, shared across queries)."""
        if self._timeline is None:
            self._timeline = OperationTimeline.from_oplog(self.oplog, self.retention)
        return self._timeline

    # -- snapshots --------------------------------------------------------

    def snapshots(self) -> List[Snapshot]:
        """Recoverable points, oldest first: sealed segments + log head."""
        points: List[Snapshot] = []
        for segment in self.oplog.sealed_segments():
            if not segment.entries:
                continue
            points.append(
                Snapshot(
                    kind="segment-seal",
                    segment_id=segment.segment_id,
                    last_sequence=segment.last_sequence,
                    timestamp_us=segment.entries[-1].timestamp_us,
                    entries=segment.entry_count,
                    offloaded=segment.offloaded,
                )
            )
        entries = self.oplog.all_entries()
        if entries and self.oplog.open_entries:
            points.append(
                Snapshot(
                    kind="log-head",
                    segment_id=None,
                    last_sequence=entries[-1].sequence,
                    timestamp_us=entries[-1].timestamp_us,
                    entries=self.oplog.open_entries,
                    offloaded=False,
                )
            )
        return points

    # -- rebuild ----------------------------------------------------------

    def rebuild_image(
        self, timestamp_us: int, simulate_fetch: bool = False
    ) -> RecoveredImage:
        """Materialize the device image as of ``timestamp_us``.

        The rebuild is read-only: it never mutates the device (use
        :meth:`apply` to write the image back).  With ``simulate_fetch``
        the remote round-trip for offloaded copies is played through the
        NVMe-oE model so ``duration_us`` reflects real recovery time.
        """
        start_us = self.ssd.clock.now_us
        image = RecoveredImage(target_us=timestamp_us)
        timeline = self.timeline
        for lba in timeline.lbas():
            event = timeline.history(lba).governing_event(timestamp_us)
            if event is None:
                continue
            if event.op_type is HostOpType.TRIM:
                image.unmapped.append(lba)
                image.pages[lba] = None
                continue
            expected = event.fingerprint if event.exact_fingerprint else None
            self._materialize(image, lba, timestamp_us, expected)

        if simulate_fetch and image.recovered_remote and self.offload is not None:
            completion_us = self.offload.fetch_pages(len(image.recovered_remote))
            self.ssd.clock.advance_to(int(completion_us))
        image.duration_us = float(self.ssd.clock.now_us - start_us)
        return image

    def _materialize(
        self,
        image: RecoveredImage,
        lba: int,
        timestamp_us: int,
        expected: Optional[int],
    ) -> None:
        """Find a producible copy of ``lba`` as of ``timestamp_us``."""
        live = self.ssd.ftl.lookup(lba)
        if live is not None and live.written_us <= timestamp_us:
            content = self.ssd.flash.read(live.ppn)
            if content is not None and (expected is None or content.fingerprint == expected):
                self._record(image, lba, content, remote=False, verified=expected is not None)
                return
        version = self._best_version(lba, timestamp_us, expected)
        if version is None:
            image.lost.append(lba)
            return
        if version.released and not version.offloaded:
            # The local copy was destroyed before it ever reached the
            # remote tier -- with RSSD's retention invariant this branch
            # is unreachable, but misconfigured ablations hit it.
            image.lost.append(lba)
            return
        remote = version.released and version.offloaded
        self._record(image, lba, version.content, remote=remote, verified=expected is not None)

    def _best_version(self, lba: int, timestamp_us: int, expected: Optional[int]):
        """Newest archived version at or before the target that matches."""
        best = None
        for record in self.retention.versions_for(lba):
            if record.written_us > timestamp_us:
                continue
            if expected is not None and record.content.fingerprint != expected:
                continue
            if best is None or record.written_us > best.written_us:
                best = record
        return best

    @staticmethod
    def _record(
        image: RecoveredImage,
        lba: int,
        content: PageContent,
        remote: bool,
        verified: bool,
    ) -> None:
        image.pages[lba] = content.fingerprint
        image.contents[lba] = content
        (image.recovered_remote if remote else image.recovered_local).append(lba)
        if not verified:
            image.unverified.append(lba)

    # -- restore ----------------------------------------------------------

    def apply(self, image: RecoveredImage, stream_id: int = 0) -> int:
        """Write a rebuilt image back to the device.  Returns pages written.

        Recovered pages are rewritten with their recovered content;
        pages unmapped at the target time that are live now are trimmed,
        completing the rollback.
        """
        written = 0
        for lba in sorted(image.contents):
            self.ssd.write(lba, image.contents[lba], stream_id=stream_id)
            written += 1
        for lba in image.unmapped:
            if self.ssd.ftl.lookup(lba) is not None:
                self.ssd.trim(lba, 1, stream_id=stream_id)
        return written


class TraceRecorder:
    """Device observer that keeps the raw host command stream.

    The recorder is deliberately trivial -- an append-only list with no
    hashing and no indexes -- so tests can use it as evidence-independent
    ground truth for what the host actually did.
    """

    def __init__(self) -> None:
        self.ops: List[HostOp] = []

    def on_host_op(self, op: HostOp) -> None:
        """Observer hook: record one completed host command."""
        self.ops.append(op)

    def prefix(self, timestamp_us: int) -> List[HostOp]:
        """The recorded commands with timestamps at or before the cutoff."""
        return [op for op in self.ops if op.timestamp_us <= timestamp_us]


def reference_image(ops: List[HostOp], timestamp_us: int) -> Dict[int, Optional[int]]:
    """Replay a recorded command prefix into an expected device image.

    Returns lba -> fingerprint for every page some write or trim touched
    by ``timestamp_us`` (``None`` = unmapped).  Multi-page writes only
    carry the first page's content descriptor, mirroring what the device
    reports to observers; single-page traffic (everything the campaign
    scenarios issue) is exact.
    """
    image: Dict[int, Optional[int]] = {}
    for op in ops:
        if op.timestamp_us > timestamp_us:
            continue
        if op.op_type is HostOpType.WRITE:
            for offset in range(max(1, op.npages)):
                if offset == 0 and op.content is not None:
                    image[op.lba] = op.content.fingerprint
                else:
                    image[op.lba + offset] = None
        elif op.op_type is HostOpType.TRIM:
            for offset in range(max(1, op.npages)):
                image[op.lba + offset] = None
    return image
