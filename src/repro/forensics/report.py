"""The combined forensic report: evidence, verdict, recovery outcome.

:class:`ForensicReport` is the single JSON-serializable artifact the
``repro recover`` CLI prints, the campaign engine summarises into
:class:`~repro.campaign.results.CellResult` fields, and the golden test
pins bit-for-bit.  Serialization is canonical (sorted keys, fixed
indentation, trailing newline) for the same reason campaign artifacts
are: byte equality is the regression test.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.forensics.classify import AttackClassification

#: Bump when the report schema changes; readers refuse newer versions.
REPORT_VERSION = 1


@dataclass(frozen=True)
class ForensicReport:
    """Everything post-attack analysis concluded about one device."""

    # -- evidence chain ---------------------------------------------------
    total_entries: int
    sealed_segments: int
    offloaded_segments: int
    chain_verified: bool
    tampered_at: Optional[int]
    #: Arrival-order check of the remote tier; ``None`` when the device
    #: has no remote tier attached.
    remote_time_order_ok: Optional[bool]
    # -- timeline ---------------------------------------------------------
    lbas_touched: int
    gc_relocations: int
    timeline_span_us: int
    # -- classification ---------------------------------------------------
    pattern: str
    malicious_streams: List[int]
    first_malicious_sequence: Optional[int]
    first_malicious_us: Optional[int]
    last_malicious_us: Optional[int]
    blast_radius_pages: int
    blast_radius_bytes: int
    encrypted_writes: int
    trimmed_pages: int
    # -- point-in-time recovery -------------------------------------------
    recovery_target_us: Optional[int]
    pages_recovered_local: int
    pages_recovered_remote: int
    pages_unverified: int
    pages_lost: int
    pages_unmapped: int
    recovery_exact: bool
    #: Small enough to keep verbatim; non-empty means data loss.
    lost_lbas: List[int] = field(default_factory=list)
    version: int = REPORT_VERSION

    @property
    def pages_recovered(self) -> int:
        """Pages recovered from either tier."""
        return self.pages_recovered_local + self.pages_recovered_remote

    @property
    def attack_found(self) -> bool:
        """Whether the classifier identified malicious activity."""
        return self.pattern != "none"

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the report."""
        return asdict(self)

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ForensicReport":
        """Rebuild a report, refusing versions newer than this reader."""
        version = int(data.get("version", -1))
        if version > REPORT_VERSION:
            raise ValueError(
                f"forensic report version {version} is newer than supported "
                f"version {REPORT_VERSION}"
            )
        return cls(**data)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "ForensicReport":
        """Parse a report from its canonical JSON text."""
        return cls.from_dict(json.loads(text))


def classification_fields(classification: AttackClassification) -> Dict[str, object]:
    """The report fields contributed by an attack classification."""
    return {
        "pattern": classification.pattern,
        "malicious_streams": list(classification.malicious_streams),
        "first_malicious_sequence": classification.first_malicious_sequence,
        "first_malicious_us": classification.first_malicious_us,
        "last_malicious_us": classification.last_malicious_us,
        "blast_radius_pages": classification.blast_radius_pages,
        "blast_radius_bytes": classification.blast_radius_bytes,
        "encrypted_writes": classification.encrypted_writes,
        "trimmed_pages": classification.trimmed_pages,
    }
