"""Attack-window classification from the verified timeline.

Given a verified :class:`~repro.forensics.timeline.OperationTimeline`,
this module answers the investigator's first three questions: *which
attack pattern ran*, *when did it start* (the first malicious
operation), and *how much did it touch* (the blast radius in pages and
bytes).  Stream suspicion reuses the behavioural profiling of
:class:`repro.core.forensics.PostAttackAnalyzer`, so the campaign
engine, the detector and the forensic report all agree on who the
attacker was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.forensics import StreamProfile
from repro.crypto.entropy import DEFAULT_ENCRYPTED_THRESHOLD
from repro.forensics.timeline import OperationTimeline, TimelineEvent
from repro.sim import US_PER_MINUTE
from repro.ssd.device import HostOpType

#: Entropy above which a logged write is counted as encrypted-looking.
HIGH_ENTROPY_THRESHOLD = DEFAULT_ENCRYPTED_THRESHOLD


@dataclass(frozen=True)
class AttackClassification:
    """What the evidence says the attack was and did.

    ``pattern`` is one of:

    * ``"encrypt-overwrite"``     -- in-place encryption (WannaCry-like),
    * ``"encrypt-then-trim"``     -- encrypt to new files, trim originals,
    * ``"trim-wipe"``             -- destruction dominated by trims,
    * ``"trim-interleaved-wipe"`` -- trims spread behind decoy writes
      with no encrypted-looking traffic (the adaptive trim attack),
    * ``"low-and-slow"``          -- encrypted-looking writes spread over
      a long window with no destruction burst (the timing attack and
      its computed-dilution v2),
    * ``"entropy-mimicry"``       -- destruction by writes that never
      look encrypted (entropy-shaped ciphertext),
    * ``"intermittent-encrypt"``  -- a fast burst where only a minority
      of the destructive writes look encrypted (partial encryption),
    * ``"none"``                  -- no malicious activity identified.
    """

    pattern: str
    malicious_streams: List[int]
    #: Log sequence number of the first malicious operation, or ``None``.
    first_malicious_sequence: Optional[int]
    #: Device time of the first malicious operation, or ``None``.
    first_malicious_us: Optional[int]
    #: Device time of the last malicious operation, or ``None``.
    last_malicious_us: Optional[int]
    #: Distinct logical pages the attacker wrote or trimmed.
    blast_radius_pages: int
    #: The same radius in bytes (pages * page size).
    blast_radius_bytes: int
    #: Malicious encrypted-looking page writes.
    encrypted_writes: int
    #: Malicious page trims.
    trimmed_pages: int
    per_stream_operations: Dict[int, int] = field(default_factory=dict)

    @property
    def attack_found(self) -> bool:
        """Whether any malicious activity was identified."""
        return self.pattern != "none"

    @property
    def window_us(self) -> Optional[int]:
        """Attack window length, when an attack was identified."""
        if self.first_malicious_us is None or self.last_malicious_us is None:
            return None
        return self.last_malicious_us - self.first_malicious_us


def _malicious_events(
    timeline: OperationTimeline, suspects: Set[int]
) -> List[TimelineEvent]:
    return [event for event in timeline.events if event.stream_id in suspects]


def _choose_pattern(
    destructive: List[TimelineEvent],
    encrypted_writes: int,
    trimmed_pages: int,
    window_us: int,
    mean_gap_us: float,
) -> str:
    """Map observed malicious behaviour onto a named attack family."""
    if not destructive:
        return "none"
    writes = sum(1 for e in destructive if e.op_type is HostOpType.WRITE)
    if trimmed_pages > 0 and encrypted_writes == 0:
        # Plaintext destroyed through trim with no encrypted-looking
        # traffic at all; substantial interleaved write activity marks
        # the adaptive variant that buries its trims behind decoys.
        if writes > trimmed_pages // 2:
            return "trim-interleaved-wipe"
        return "trim-wipe"
    if trimmed_pages > 0:
        return "encrypt-then-trim"
    if encrypted_writes == 0:
        # Malicious destruction whose writes never cross the entropy
        # line: the signature of entropy-shaped (mimicry) ciphertext.
        return "entropy-mimicry" if writes else "none"
    paced = mean_gap_us > 60_000_000
    if not paced and window_us > 10 * US_PER_MINUTE:
        # Computed-dilution pacing hides the big gaps between bursts by
        # filling them with decoys; the sustained destructive-write
        # *rate* over a long window still gives the pacing away.
        writes_per_second = len(destructive) / (window_us / 1_000_000.0)
        paced = writes_per_second < 1.0
    if writes and paced:
        # Destruction spread out with minutes between operations: the
        # stealth profile of the timing attack, not a bulk encryptor.
        return "low-and-slow"
    if writes and encrypted_writes / writes <= 0.6:
        # A fast burst where most destructive writes look benign:
        # partial (every k-th page) encryption.
        return "intermittent-encrypt"
    return "encrypt-overwrite"


def classify_attack(
    timeline: OperationTimeline,
    profiles: Dict[int, StreamProfile],
    suspects: List[int],
    page_size: int,
) -> AttackClassification:
    """Classify the attack recorded in ``timeline``.

    ``profiles`` and ``suspects`` come from
    :class:`~repro.core.forensics.PostAttackAnalyzer`; ``page_size``
    converts the page-granular blast radius into bytes.
    """
    suspect_set = set(suspects)
    events = _malicious_events(timeline, suspect_set)
    destructive = [event for event in events if event.destroys_data]
    if not destructive:
        return AttackClassification(
            pattern="none",
            malicious_streams=sorted(suspect_set),
            first_malicious_sequence=None,
            first_malicious_us=None,
            last_malicious_us=None,
            blast_radius_pages=0,
            blast_radius_bytes=0,
            encrypted_writes=0,
            trimmed_pages=0,
            per_stream_operations={
                sid: profile.operations for sid, profile in profiles.items()
            },
        )

    touched = {event.lba for event in destructive}
    encrypted_writes = sum(
        1
        for event in destructive
        if event.op_type is HostOpType.WRITE
        and event.entropy >= HIGH_ENTROPY_THRESHOLD
    )
    trimmed_pages = sum(1 for event in destructive if event.op_type is HostOpType.TRIM)
    first = destructive[0]
    last = destructive[-1]
    window_us = last.timestamp_us - first.timestamp_us
    distinct_times = sorted({event.timestamp_us for event in destructive})
    gaps = [b - a for a, b in zip(distinct_times, distinct_times[1:])]
    mean_gap_us = sum(gaps) / len(gaps) if gaps else 0.0

    return AttackClassification(
        pattern=_choose_pattern(
            destructive, encrypted_writes, trimmed_pages, window_us, mean_gap_us
        ),
        malicious_streams=sorted(suspect_set),
        first_malicious_sequence=first.sequence,
        first_malicious_us=first.timestamp_us,
        last_malicious_us=last.timestamp_us,
        blast_radius_pages=len(touched),
        blast_radius_bytes=len(touched) * page_size,
        encrypted_writes=encrypted_writes,
        trimmed_pages=trimmed_pages,
        per_stream_operations={
            sid: profile.operations for sid, profile in profiles.items()
        },
    )
