"""Per-LBA operation timeline reconstruction.

The operation log records every host command in arrival order and folds
it into a SHA-256 hash chain; the retention archive keeps every
superseded page version together with its GC relocation count.  This
module joins the two into an :class:`OperationTimeline`: a verified,
queryable history of what happened to every logical page -- the first of
the three artifacts post-attack analysis produces.

The timeline is *evidence-only*: it is built exclusively from the
hardware-isolated log and archive, never from host-side state, so its
conclusions hold even when the host was fully compromised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.oplog import LogEntry, OperationLog
from repro.core.retention import RetentionManager
from repro.ssd.device import HostOpType

#: Sentinel fingerprint meaning "the page is unmapped at this point".
UNMAPPED = None


@dataclass(frozen=True)
class TimelineEvent:
    """One operation affecting one logical page.

    A multi-page host command expands into one event per covered LBA;
    ``exact_fingerprint`` is only True for the page whose content
    descriptor the aggregated log entry actually carries (the first
    page of the run), so downstream consumers never mistake an
    approximate fingerprint for evidence.
    """

    sequence: int
    timestamp_us: int
    op_type: HostOpType
    lba: int
    stream_id: int
    entropy: float
    #: Content hash written by this event; ``None`` for trims/reads and
    #: for pages of a multi-page write beyond the first.
    fingerprint: Optional[int]
    #: True when ``fingerprint`` is the page's real content hash.
    exact_fingerprint: bool

    @property
    def destroys_data(self) -> bool:
        """Whether the event replaces or unmaps previously live data."""
        return self.op_type in (HostOpType.WRITE, HostOpType.TRIM)


@dataclass(frozen=True)
class RetainedVersion:
    """A superseded version of one page, as kept by the retention archive."""

    lba: int
    fingerprint: int
    written_us: int
    invalidated_us: int
    version: int
    offloaded: bool
    released: bool
    #: Times GC moved the physical copy while it was retained.
    gc_relocations: int


@dataclass
class LBAHistory:
    """Everything the evidence records about one logical page."""

    lba: int
    events: List[TimelineEvent] = field(default_factory=list)
    versions: List[RetainedVersion] = field(default_factory=list)

    @property
    def writes(self) -> int:
        """Recorded write events touching this page."""
        return sum(1 for e in self.events if e.op_type is HostOpType.WRITE)

    @property
    def trims(self) -> int:
        """Recorded trim events touching this page."""
        return sum(1 for e in self.events if e.op_type is HostOpType.TRIM)

    def governing_event(self, timestamp_us: int) -> Optional[TimelineEvent]:
        """The last write or trim at or before ``timestamp_us``.

        ``None`` means the evidence never saw the page mutated by then.
        Walks the event list in sequence order, so simultaneous events
        resolve in arrival order exactly as the device applied them.
        """
        governing: Optional[TimelineEvent] = None
        for event in self.events:
            if event.timestamp_us > timestamp_us:
                break
            if event.destroys_data:
                governing = event
        return governing

    def state_at(self, timestamp_us: int) -> Optional[int]:
        """Expected fingerprint of the page at ``timestamp_us``.

        ``None`` means unmapped (never written, or last op was a trim)
        -- or written by an event whose aggregated log entry does not
        carry this page's hash; use :meth:`governing_event` when that
        distinction matters.
        """
        event = self.governing_event(timestamp_us)
        if event is None or event.op_type is HostOpType.TRIM:
            return UNMAPPED
        return event.fingerprint


class OperationTimeline:
    """A verified per-LBA view of the full operation history.

    Build one with :meth:`from_oplog`; ``chain_verified`` reports
    whether the entries reproduce the hardware hash chain (a timeline
    built from tampered evidence still answers queries, but flags
    itself so nothing downstream trusts it silently).
    """

    def __init__(
        self,
        events: List[TimelineEvent],
        chain_verified: bool,
        tampered_at: Optional[int],
        histories: Dict[int, LBAHistory],
        total_entries: int,
        gc_relocations: int,
    ) -> None:
        self.events = events
        self.chain_verified = chain_verified
        self.tampered_at = tampered_at
        self._histories = histories
        self.total_entries = total_entries
        self.gc_relocations = gc_relocations

    # -- construction -----------------------------------------------------

    @classmethod
    def from_oplog(
        cls,
        oplog: OperationLog,
        retention: Optional[RetentionManager] = None,
    ) -> "OperationTimeline":
        """Reconstruct the timeline from the log (and archive, if given)."""
        entries = oplog.all_entries()
        chain_verified = oplog.verify_integrity(entries)
        tampered_at = None if chain_verified else oplog.find_tampering(entries)

        events: List[TimelineEvent] = []
        histories: Dict[int, LBAHistory] = {}
        for entry in entries:
            for event in cls._expand_entry(entry):
                events.append(event)
                histories.setdefault(event.lba, LBAHistory(lba=event.lba)).events.append(
                    event
                )

        gc_relocations = 0
        if retention is not None:
            for lba in retention.retained_lbas():
                history = histories.setdefault(lba, LBAHistory(lba=lba))
                for record in retention.versions_for(lba):
                    history.versions.append(
                        RetainedVersion(
                            lba=lba,
                            fingerprint=record.content.fingerprint,
                            written_us=record.written_us,
                            invalidated_us=record.invalidated_us,
                            version=record.version,
                            offloaded=record.offloaded,
                            released=record.released,
                            gc_relocations=record.relocations,
                        )
                    )
                    gc_relocations += record.relocations

        return cls(
            events=events,
            chain_verified=chain_verified,
            tampered_at=tampered_at,
            histories=histories,
            total_entries=len(entries),
            gc_relocations=gc_relocations,
        )

    @staticmethod
    def _expand_entry(entry: LogEntry) -> List[TimelineEvent]:
        """One aggregated log entry -> one event per covered page."""
        events = []
        for offset in range(max(1, entry.npages)):
            first = offset == 0
            carries_hash = entry.op_type is HostOpType.WRITE and first
            events.append(
                TimelineEvent(
                    sequence=entry.sequence,
                    timestamp_us=entry.timestamp_us,
                    op_type=entry.op_type,
                    lba=entry.lba + offset,
                    stream_id=entry.stream_id,
                    entropy=entry.entropy,
                    fingerprint=entry.fingerprint if carries_hash else None,
                    exact_fingerprint=carries_hash,
                )
            )
        return events

    # -- queries ----------------------------------------------------------

    def lbas(self) -> List[int]:
        """Every logical page the evidence mentions, ascending."""
        return sorted(self._histories)

    def history(self, lba: int) -> LBAHistory:
        """Full recorded history of one page (empty if never touched)."""
        return self._histories.get(lba, LBAHistory(lba=lba))

    def events_between(
        self, start_us: Optional[int] = None, end_us: Optional[int] = None
    ) -> List[TimelineEvent]:
        """Events whose timestamps fall within ``[start_us, end_us]``."""
        selected = []
        for event in self.events:
            if start_us is not None and event.timestamp_us < start_us:
                continue
            if end_us is not None and event.timestamp_us > end_us:
                continue
            selected.append(event)
        return selected

    def image_at(self, timestamp_us: int) -> Dict[int, Optional[int]]:
        """Expected device image (lba -> fingerprint) as of ``timestamp_us``.

        Pages absent from the mapping were never touched; a ``None``
        value means the page was written at some point but is unmapped
        (trimmed) at the target time.
        """
        image: Dict[int, Optional[int]] = {}
        for lba, history in self._histories.items():
            event = history.governing_event(timestamp_us)
            if event is None:
                # Never written or trimmed by the target time (reads
                # alone do not put a page in the image).
                continue
            image[lba] = (
                UNMAPPED if event.op_type is HostOpType.TRIM else event.fingerprint
            )
        return image

    @property
    def span_us(self) -> int:
        """Duration between the first and last recorded event."""
        if not self.events:
            return 0
        return self.events[-1].timestamp_us - self.events[0].timestamp_us
