"""Benchmark size scaling shared by the suite and the emit pipeline.

Every file under ``benchmarks/`` sizes its workload through this module
so that ``REPRO_SMOKE=1`` (set by CI on shared runners) shrinks the
whole suite consistently instead of each file re-reading the
environment with its own convention.  The module lives in the package
rather than in ``benchmarks/conftest.py`` because the standalone
``benchmarks/bench_emit.py`` emitter and ad-hoc profiling scripts need
the same flag without pytest's conftest import machinery.
"""

from __future__ import annotations

import os

#: True when the suite should run the reduced smoke-mode workloads.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def scaled(full, smoke):
    """Pick the full-run or smoke-run value of a benchmark size knob.

    Usage: ``TRACE_OPS = scaled(100_000, 10_000)``.
    """
    return smoke if SMOKE else full
