"""Experiment harnesses and reporting.

Each function in :mod:`repro.analysis.experiments` regenerates one of
the paper's tables/figures (or an ablation of a design choice); the
benchmark suite under ``benchmarks/`` is a thin wrapper that calls
these and prints the resulting rows.  :mod:`repro.analysis.retention`
holds the analytic retention-time model behind Figure 2.
"""

from repro.analysis.retention import (
    FigureTwoRow,
    RetentionScenario,
    figure2_rows,
    retention_days_local,
    retention_days_local_compressed,
    retention_days_rssd,
)
from repro.analysis.reporting import format_csv, format_markdown_table, format_table
from repro.analysis.stats import geometric_mean, mean, median, relative_overhead, stdev

__all__ = [
    "FigureTwoRow",
    "RetentionScenario",
    "figure2_rows",
    "format_csv",
    "format_markdown_table",
    "format_table",
    "geometric_mean",
    "mean",
    "median",
    "relative_overhead",
    "retention_days_local",
    "retention_days_local_compressed",
    "retention_days_rssd",
    "stdev",
]
