"""Small statistics helpers used by experiments and benchmarks."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def median(values: Sequence[float]) -> float:
    """Median (0.0 for an empty sequence)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    middle = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((value - center) ** 2 for value in values) / len(values))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; every value must be positive."""
    values = list(values)
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def relative_overhead(baseline: float, measured: float) -> float:
    """(measured - baseline) / baseline; 0.0 when the baseline is zero."""
    if baseline == 0:
        return 0.0
    return (measured - baseline) / baseline
