"""Experiment harnesses: one function per table, figure or ablation.

The benchmark suite under ``benchmarks/`` calls these functions and
prints/validates their results; the unit tests exercise them at reduced
scale.  Keeping the logic here means a user can also run any experiment
directly from a Python shell or an example script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.retention import (
    FigureTwoRow,
    RetentionScenario,
    figure2_rows,
    lookup_volume,
)
from repro.analysis.stats import relative_overhead
from repro.attacks.base import AttackOutcome
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.gc_attack import GCAttack
from repro.attacks.timing_attack import TimingAttack
from repro.attacks.trimming_attack import TrimmingAttack
from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD
from repro.defenses.matrix import CapabilityMatrix, MatrixRow, default_defense_factories
from repro.ssd.device import SSD
from repro.ssd.geometry import SSDGeometry
from repro.workloads.fio import FioJob, standard_jobs
from repro.workloads.replay import TraceReplayer
from repro.workloads.synthetic import ZipfianWorkload, profile_workload


# ---------------------------------------------------------------------------
# T1: capability matrix (Table 1)
# ---------------------------------------------------------------------------

def run_capability_matrix(
    geometry: Optional[SSDGeometry] = None,
    defense_names: Optional[List[str]] = None,
    victim_files: int = 24,
) -> List[MatrixRow]:
    """Run the Table-1 capability matrix for the requested defenses."""
    matrix = CapabilityMatrix(geometry=geometry, victim_files=victim_files)
    factories = default_defense_factories()
    if defense_names is not None:
        unknown = set(defense_names) - set(factories)
        if unknown:
            raise KeyError(f"unknown defenses requested: {sorted(unknown)}")
        factories = {name: factories[name] for name in defense_names}
    return matrix.run(defense_factories=factories)


# ---------------------------------------------------------------------------
# F2: retention time (Figure 2)
# ---------------------------------------------------------------------------

def run_retention_experiment(
    volumes: Optional[List[str]] = None,
    scenario: Optional[RetentionScenario] = None,
) -> List[FigureTwoRow]:
    """Compute Figure 2's retention times for every requested volume."""
    return figure2_rows(volumes=volumes, scenario=scenario)


def measure_stale_production(
    volume: str,
    duration_s: float = 2.0,
    geometry: Optional[SSDGeometry] = None,
    seed: int = 5,
) -> float:
    """Validate the analytic model's key input against a simulated replay.

    Returns the measured ratio of stale pages produced per host page
    written for a short, time-compressed replay of the volume's profile.
    """
    geometry = geometry if geometry is not None else SSDGeometry.small()
    device = SSD(geometry=geometry)
    profile = lookup_volume(volume)
    records = profile_workload(
        profile,
        capacity_pages=geometry.exported_pages // 2,
        duration_s=duration_s,
        seed=seed,
        time_compression=20_000.0,
    )
    replayer = TraceReplayer(device)
    result = replayer.replay(records)
    if result.pages_written == 0:
        return 0.0
    return device.ftl.stats.stale_pages_created / result.pages_written


# ---------------------------------------------------------------------------
# P1: storage performance overhead
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OverheadRow:
    """Per-benchmark-job overhead of RSSD versus an unmodified SSD."""

    job: str
    baseline_write_latency_us: float
    rssd_write_latency_us: float
    baseline_read_latency_us: float
    rssd_read_latency_us: float

    @property
    def write_overhead(self) -> float:
        return relative_overhead(self.baseline_write_latency_us, self.rssd_write_latency_us)

    @property
    def read_overhead(self) -> float:
        return relative_overhead(self.baseline_read_latency_us, self.rssd_read_latency_us)


def run_performance_overhead(
    jobs: Optional[Dict[str, FioJob]] = None,
    geometry: Optional[SSDGeometry] = None,
    duration_s: float = 1.0,
    seed: int = 7,
) -> List[OverheadRow]:
    """Replay fio-like jobs on a plain SSD and on RSSD and compare latencies."""
    geometry = geometry if geometry is not None else SSDGeometry.small()
    jobs = jobs if jobs is not None else standard_jobs(duration_s=duration_s)
    rows: List[OverheadRow] = []
    for name, job in jobs.items():
        records = job.generate(geometry.exported_pages, seed=seed)

        baseline = SSD(geometry=geometry)
        TraceReplayer(baseline).replay(records)

        rssd = RSSD(config=RSSDConfig(geometry=geometry))
        TraceReplayer(rssd).replay(records)

        rows.append(
            OverheadRow(
                job=name,
                baseline_write_latency_us=baseline.metrics.latency["write"].mean_us,
                rssd_write_latency_us=rssd.metrics.latency["write"].mean_us,
                baseline_read_latency_us=baseline.metrics.latency["read"].mean_us,
                rssd_read_latency_us=rssd.metrics.latency["read"].mean_us,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# P2: device lifetime impact
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LifetimeRow:
    """Write amplification and erase counts, baseline versus RSSD."""

    volume: str
    baseline_waf: float
    rssd_waf: float
    baseline_erases: int
    rssd_erases: int

    @property
    def waf_overhead(self) -> float:
        return relative_overhead(self.baseline_waf, self.rssd_waf)

    @property
    def erase_overhead(self) -> float:
        return relative_overhead(float(self.baseline_erases), float(self.rssd_erases))


def run_lifetime_experiment(
    volumes: Optional[List[str]] = None,
    geometry: Optional[SSDGeometry] = None,
    duration_s: float = 0.1,
    time_compression: float = 30_000.0,
    seed: int = 9,
) -> List[LifetimeRow]:
    """Replay volume profiles on a plain SSD and on RSSD; compare wear.

    The working set is kept at one third of the exported capacity, which
    is representative of the utilisation the paper's traces run at; a
    nearly full device amplifies GC activity for *both* devices and is
    covered separately by the GC-attack experiments.
    """
    geometry = geometry if geometry is not None else SSDGeometry.tiny()
    volumes = volumes if volumes is not None else ["hm", "src", "usr"]
    rows: List[LifetimeRow] = []
    for volume in volumes:
        profile = lookup_volume(volume)
        records = profile_workload(
            profile,
            capacity_pages=geometry.exported_pages // 3,
            duration_s=duration_s,
            seed=seed,
            time_compression=time_compression,
        )

        baseline = SSD(geometry=geometry)
        TraceReplayer(baseline).replay(records)

        rssd = RSSD(config=RSSDConfig(geometry=geometry))
        TraceReplayer(rssd).replay(records)
        rssd.drain_offload_queue()

        rows.append(
            LifetimeRow(
                volume=volume,
                baseline_waf=max(1.0, baseline.metrics.write_amplification),
                rssd_waf=max(1.0, rssd.metrics.write_amplification),
                baseline_erases=baseline.metrics.flash_blocks_erased,
                rssd_erases=rssd.metrics.flash_blocks_erased,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# P3: post-attack data recovery
# ---------------------------------------------------------------------------

@dataclass
class RecoveryRow:
    """Recovery outcome for one attack replayed against RSSD."""

    attack: str
    victim_pages: int
    pages_restored: int
    pages_unrecoverable: int
    recovery_seconds: float
    files_fully_recovered: int
    files_total: int

    @property
    def recovered_fraction(self) -> float:
        examined = self.pages_restored + self.pages_unrecoverable
        if examined == 0:
            return 1.0
        return self.pages_restored / examined


def _attack_by_name(name: str):
    factories = {
        "classic": lambda: ClassicRansomware(destruction=DestructionMode.OVERWRITE),
        "classic-delete": lambda: ClassicRansomware(destruction=DestructionMode.DELETE),
        "gc-attack": lambda: GCAttack(),
        "timing-attack": lambda: TimingAttack(),
        "trimming-attack": lambda: TrimmingAttack(),
    }
    if name not in factories:
        raise KeyError(f"unknown attack {name!r}; available: {sorted(factories)}")
    return factories[name]()


def run_recovery_experiment(
    attack_names: Optional[List[str]] = None,
    geometry: Optional[SSDGeometry] = None,
    victim_files: int = 24,
    file_size_bytes: int = 8192,
) -> List[RecoveryRow]:
    """Attack RSSD, recover, and verify the restored data page by page."""
    from repro.api.environment import provision_environment

    geometry = geometry if geometry is not None else SSDGeometry.tiny()
    attack_names = attack_names if attack_names is not None else [
        "classic",
        "gc-attack",
        "timing-attack",
        "trimming-attack",
    ]
    rows: List[RecoveryRow] = []
    for name in attack_names:
        rssd = RSSD(config=RSSDConfig(geometry=geometry))
        env = provision_environment(rssd, victim_files=victim_files, file_size_bytes=file_size_bytes)
        attack = _attack_by_name(name)
        outcome: AttackOutcome = attack.execute(env)

        engine = rssd.recovery_engine()
        report = engine.undo_attack(outcome.start_us, outcome.malicious_streams)

        restored_ok = 0
        lost = 0
        for lba in outcome.victim_lbas:
            original = outcome.original_fingerprints.get(lba)
            if original is None:
                continue
            live = rssd.read_content(lba)
            if live is not None and live.fingerprint == original:
                restored_ok += 1
            else:
                lost += 1

        files_ok = 0
        for filename, original_bytes in outcome.original_contents.items():
            if env.fs.exists(filename):
                recovered_bytes = env.fs.read_file(filename)
            else:
                # The attacker deleted the file; the investigator rebuilds it
                # from the recovered extent (RSSD restored the pages, the
                # host re-creates the namespace entry).
                extent = outcome.original_extents.get(filename, [])
                recovered_bytes = b"".join(rssd.read(lba) for lba in extent)[
                    : len(original_bytes)
                ]
            if recovered_bytes == original_bytes:
                files_ok += 1

        rows.append(
            RecoveryRow(
                attack=name,
                victim_pages=len(outcome.victim_lbas),
                pages_restored=restored_ok,
                pages_unrecoverable=lost,
                recovery_seconds=report.duration_seconds,
                files_fully_recovered=files_ok,
                files_total=len(outcome.original_contents),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# P4: post-attack analysis (evidence chain)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ForensicsRow:
    """Evidence-chain reconstruction for one background-workload size."""

    background_ops: int
    log_entries: int
    chain_verified: bool
    attacker_identified: bool
    reconstruction_seconds: float
    offloaded_segments: int


def run_forensics_experiment(
    background_ops_list: Optional[List[int]] = None,
    geometry: Optional[SSDGeometry] = None,
    seed: int = 13,
) -> List[ForensicsRow]:
    """Mix an attack into growing background workloads and rebuild the chain."""
    from repro.api.environment import provision_environment

    geometry = geometry if geometry is not None else SSDGeometry.tiny()
    background_ops_list = background_ops_list if background_ops_list is not None else [
        200,
        1_000,
        4_000,
    ]
    rows: List[ForensicsRow] = []
    for background_ops in background_ops_list:
        rssd = RSSD(config=RSSDConfig(geometry=geometry))
        env = provision_environment(rssd, victim_files=12, file_size_bytes=8192, seed=seed)

        # Background user traffic before (and interleaved with) the attack.
        workload = ZipfianWorkload(
            capacity_pages=rssd.capacity_pages // 2,
            iops=500.0,
            write_fraction=0.6,
            seed=seed,
            stream_id=env.user_stream,
        )
        records = workload.generate(background_ops / 500.0)[:background_ops]
        TraceReplayer(rssd, honor_timestamps=False).replay(records)

        attack = ClassicRansomware()
        attack.execute(env)
        rssd.drain_offload_queue()

        report = rssd.investigate()
        rows.append(
            ForensicsRow(
                background_ops=background_ops,
                log_entries=report.total_entries,
                chain_verified=report.chain_verified,
                attacker_identified=env.attacker_stream in report.suspected_streams,
                reconstruction_seconds=report.reconstruction_seconds,
                offloaded_segments=report.offloaded_segments,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# A1: offload path ablation (compression + bandwidth demand)
# ---------------------------------------------------------------------------

from repro.ablation.experiments import (  # noqa: E402 - re-exported row types
    DetectionRow,
    OffloadRow,
    TrimAblationRow,
)


def run_offload_ablation(
    volumes: Optional[List[str]] = None,
    geometry: Optional[SSDGeometry] = None,
    duration_s: float = 0.1,
    time_compression: float = 30_000.0,
    seed: int = 17,
) -> List[OffloadRow]:
    """Deprecated alias of :func:`repro.ablation.experiments.run_offload_ablation`.

    Kept as a warn-once shim so pre-ablation-framework callers keep
    working; the implementation now runs each volume through the
    :mod:`repro.api` session lifecycle.
    """
    from repro._deprecation import warn_once

    warn_once(
        "repro.analysis.experiments.run_offload_ablation",
        "repro.ablation.experiments.run_offload_ablation",
    )
    from repro.ablation.experiments import run_offload_ablation as ported

    return ported(
        volumes=volumes,
        geometry=geometry,
        duration_s=duration_s,
        time_compression=time_compression,
        seed=seed,
    )


def run_trim_ablation(
    geometry: Optional[SSDGeometry] = None,
    victim_files: int = 16,
) -> List[TrimAblationRow]:
    """Deprecated alias of :func:`repro.ablation.experiments.run_trim_ablation`.

    Kept as a warn-once shim so pre-ablation-framework callers keep
    working; the implementation now expresses the trim variants through
    the spec's ``ablation`` field.
    """
    from repro._deprecation import warn_once

    warn_once(
        "repro.analysis.experiments.run_trim_ablation",
        "repro.ablation.experiments.run_trim_ablation",
    )
    from repro.ablation.experiments import run_trim_ablation as ported

    return ported(geometry=geometry, victim_files=victim_files)


def run_detection_ablation(
    attack_names: Optional[List[str]] = None,
    geometry: Optional[SSDGeometry] = None,
) -> List[DetectionRow]:
    """Deprecated alias of :func:`repro.ablation.experiments.run_detection_ablation`.

    Kept as a warn-once shim so pre-ablation-framework callers keep
    working; the implementation now runs each attack through the
    :mod:`repro.api` session lifecycle.
    """
    from repro._deprecation import warn_once

    warn_once(
        "repro.analysis.experiments.run_detection_ablation",
        "repro.ablation.experiments.run_detection_ablation",
    )
    from repro.ablation.experiments import run_detection_ablation as ported

    return ported(attack_names=attack_names, geometry=geometry)
