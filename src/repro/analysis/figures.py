"""ASCII rendering of the paper's figures.

The benchmark suite prints tables; for quick terminal inspection (and for
the CLI) a horizontal bar rendering of Figure 2 is also provided.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.retention import FigureTwoRow


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    max_value: float = 0.0,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render one horizontal bar per (label, value) pair."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    if not labels:
        return ""
    scale = max_value if max_value > 0 else max(values)
    scale = scale if scale > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(min(value, scale) / scale * width))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:8.1f}{unit}")
    return "\n".join(lines)


def render_figure2(rows: List[FigureTwoRow], width: int = 40) -> str:
    """Render Figure 2 as grouped ASCII bars (three bars per volume)."""
    if not rows:
        return ""
    scale = max(row.rssd_days for row in rows)
    sections = []
    for row in rows:
        sections.append(
            f"{row.volume}\n"
            + render_bars(
                ["LocalSSD", "+Compression", "RSSD"],
                [row.local_days, row.local_compressed_days, row.rssd_days],
                max_value=scale,
                width=width,
                unit=" d",
            )
        )
    header = "Data retention time per volume (days)"
    return header + "\n" + ("-" * len(header)) + "\n" + "\n\n".join(sections)
