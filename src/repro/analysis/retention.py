"""Retention-time model behind the paper's Figure 2.

Figure 2 reports, per traced volume, how long each scheme can retain
*all* stale data:

* **LocalSSD** keeps stale pages in the drive's spare (over-provisioned)
  capacity only, so retention time is spare capacity divided by the
  volume's daily stale-data production.
* **LocalSSD+Compression** stretches the same spare capacity by the
  volume's compression ratio.
* **RSSD** drains stale data over NVMe-oE, so retention time is bounded
  by the remote tier's budget (and, in principle, by link bandwidth --
  which for GB/day volumes over GbE is never the binding constraint).

The model is analytic because simulating hundreds of days of traffic
page by page adds nothing: stale production per day and compression
ratio are the only inputs, and both are validated against short
simulated replays in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workloads.fiu import FIU_VOLUMES, figure2_volumes
from repro.workloads.msr import MSR_VOLUMES
from repro.workloads.synthetic import VolumeProfile

GB = 1024**3


def lookup_volume(name: str) -> VolumeProfile:
    """Find a volume profile across the MSR and FIU catalogues."""
    if name in MSR_VOLUMES:
        return MSR_VOLUMES[name]
    if name in FIU_VOLUMES:
        return FIU_VOLUMES[name]
    raise KeyError(
        f"unknown trace volume {name!r}; known volumes: "
        f"{sorted(set(MSR_VOLUMES) | set(FIU_VOLUMES))}"
    )


@dataclass(frozen=True)
class RetentionScenario:
    """Device / deployment parameters for the retention experiment.

    Defaults approximate the paper's setup: a 1 TB drive with 12.5%
    over-provisioning, a GbE NVMe-oE link, and a multi-terabyte remote
    budget across the storage server and cloud.
    """

    device_capacity_gb: float = 1024.0
    overprovision_ratio: float = 0.125
    local_retention_fraction: float = 0.7
    remote_budget_gb: float = 2048.0
    link_bandwidth_gbps: float = 1.0
    overwrite_fraction: float = 0.85
    horizon_days: float = 240.0

    def __post_init__(self) -> None:
        if self.device_capacity_gb <= 0 or self.remote_budget_gb <= 0:
            raise ValueError("capacities must be positive")
        if not 0.0 < self.overprovision_ratio < 1.0:
            raise ValueError("overprovision_ratio must be within (0, 1)")
        if not 0.0 < self.local_retention_fraction <= 1.0:
            raise ValueError("local_retention_fraction must be within (0, 1]")
        if not 0.0 < self.overwrite_fraction <= 1.0:
            raise ValueError("overwrite_fraction must be within (0, 1]")
        if self.link_bandwidth_gbps <= 0 or self.horizon_days <= 0:
            raise ValueError("link bandwidth and horizon must be positive")

    @property
    def local_retention_budget_gb(self) -> float:
        """Spare capacity (GB) available for holding stale data locally."""
        return (
            self.device_capacity_gb
            * self.overprovision_ratio
            * self.local_retention_fraction
        )

    @property
    def link_capacity_gb_per_day(self) -> float:
        """Payload the NVMe-oE link can move per day."""
        bytes_per_day = self.link_bandwidth_gbps * 1e9 / 8.0 * 86_400
        return bytes_per_day / GB


def stale_gb_per_day(profile: VolumeProfile, scenario: RetentionScenario) -> float:
    """Stale data produced per day: daily writes that displace older versions."""
    return profile.daily_write_gb * scenario.overwrite_fraction


def retention_days_local(profile: VolumeProfile, scenario: RetentionScenario) -> float:
    """Retention time of the LocalSSD baseline (spare capacity only)."""
    produced = stale_gb_per_day(profile, scenario)
    if produced == 0:
        return scenario.horizon_days
    return min(scenario.horizon_days, scenario.local_retention_budget_gb / produced)


def retention_days_local_compressed(
    profile: VolumeProfile, scenario: RetentionScenario
) -> float:
    """Retention time of LocalSSD when retained pages are compressed in place."""
    produced = stale_gb_per_day(profile, scenario) * profile.mean_compress_ratio
    if produced == 0:
        return scenario.horizon_days
    return min(scenario.horizon_days, scenario.local_retention_budget_gb / produced)


def retention_days_rssd(profile: VolumeProfile, scenario: RetentionScenario) -> float:
    """Retention time of RSSD (remote budget, compressed, link permitting)."""
    produced = stale_gb_per_day(profile, scenario) * profile.mean_compress_ratio
    if produced == 0:
        return scenario.horizon_days
    if produced > scenario.link_capacity_gb_per_day:
        # The link cannot keep up; retention degrades to what fits locally
        # plus whatever the link manages to drain per day.
        drained = scenario.link_capacity_gb_per_day
        local_days = scenario.local_retention_budget_gb / max(produced - drained, 1e-9)
        return min(scenario.horizon_days, local_days)
    return min(scenario.horizon_days, scenario.remote_budget_gb / produced)


@dataclass(frozen=True)
class FigureTwoRow:
    """One bar group of Figure 2."""

    volume: str
    local_days: float
    local_compressed_days: float
    rssd_days: float

    @property
    def rssd_advantage(self) -> float:
        """RSSD retention relative to the LocalSSD baseline."""
        if self.local_days == 0:
            return float("inf")
        return self.rssd_days / self.local_days


def figure2_rows(
    volumes: Optional[List[str]] = None,
    scenario: Optional[RetentionScenario] = None,
) -> List[FigureTwoRow]:
    """Compute every bar of Figure 2 for the requested volumes."""
    scenario = scenario if scenario is not None else RetentionScenario()
    names = volumes if volumes is not None else figure2_volumes()
    rows: List[FigureTwoRow] = []
    for name in names:
        profile = lookup_volume(name)
        rows.append(
            FigureTwoRow(
                volume=name,
                local_days=retention_days_local(profile, scenario),
                local_compressed_days=retention_days_local_compressed(profile, scenario),
                rssd_days=retention_days_rssd(profile, scenario),
            )
        )
    return rows


def figure2_summary(rows: List[FigureTwoRow]) -> Dict[str, float]:
    """Headline numbers quoted in the paper's performance summary."""
    return {
        "min_rssd_days": min(row.rssd_days for row in rows),
        "mean_rssd_days": sum(row.rssd_days for row in rows) / len(rows),
        "max_local_days": max(row.local_days for row in rows),
        "mean_local_days": sum(row.local_days for row in rows) / len(rows),
        "volumes_with_rssd_over_200_days": float(
            sum(1 for row in rows if row.rssd_days >= 200.0)
        ),
    }
