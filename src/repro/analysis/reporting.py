"""Plain-text / CSV / markdown rendering of experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from repro.sim import format_duration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.results import CampaignArtifact


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width text table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting; values must not contain commas)."""
    lines = [",".join(headers)]
    for row in rows:
        cells = [_stringify(cell) for cell in row]
        if any("," in cell for cell in cells):
            raise ValueError("CSV cells must not contain commas")
        lines.append(",".join(cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Campaign artifact views
# ---------------------------------------------------------------------------


def render_campaign_capability(artifact: "CampaignArtifact") -> str:
    """The paper's Table-1-style capability view of a campaign artifact.

    Rows are defenses, columns are attacks.  When a (defense, attack)
    pair was measured under several workloads or device configs, the
    cell shows the *worst* recovery fraction -- a defense only counts as
    covering an attack if it covers it under every scenario swept.
    """
    from repro.defenses.matrix import recovery_grade

    defenses: List[str] = []
    attacks: List[str] = []
    worst: Dict[tuple, float] = {}
    for cell in artifact.cells:
        if cell.defense not in defenses:
            defenses.append(cell.defense)
        if cell.attack not in attacks:
            attacks.append(cell.attack)
        key = (cell.defense, cell.attack)
        worst[key] = min(worst.get(key, 1.0), cell.recovery_fraction)
    rows = []
    for defense in defenses:
        row: List[object] = [defense]
        for attack in attacks:
            fraction = worst.get((defense, attack))
            row.append(
                "-" if fraction is None else f"{recovery_grade(fraction)} {fraction:.2f}"
            )
        rows.append(row)
    return format_table(["Defense", *attacks], rows)


def render_campaign_overhead(artifact: "CampaignArtifact") -> str:
    """Per-cell I/O overhead and provenance table for a campaign artifact."""
    rows = []
    for cell in artifact.cells:
        detection = (
            format_duration(cell.detection_latency_us)
            if cell.detection_latency_us is not None
            else "-"
        )
        rows.append(
            [
                cell.cell_key,
                cell.recovery_fraction,
                detection,
                cell.write_amplification,
                cell.mean_write_latency_us,
                cell.host_commands,
                cell.oplog_hash[:12] if cell.oplog_hash else "-",
            ]
        )
    return format_table(
        ["cell", "recovered", "detect in", "WA", "wr us", "host cmds", "oplog"],
        rows,
    )
