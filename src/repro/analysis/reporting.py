"""Plain-text / CSV / markdown rendering of experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width text table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting; values must not contain commas)."""
    lines = [",".join(headers)]
    for row in rows:
        cells = [_stringify(cell) for cell in row]
        if any("," in cell for cell in cells):
            raise ValueError("CSV cells must not contain commas")
        lines.append(",".join(cells))
    return "\n".join(lines)
