"""Plain-text / CSV / markdown rendering of experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from repro.sim import format_duration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ablation.study import AblationArtifact
    from repro.campaign.results import CampaignArtifact
    from repro.campaign.roc import RocArtifact
    from repro.forensics.report import ForensicReport
    from repro.forensics.timeline import OperationTimeline


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width text table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting; values must not contain commas)."""
    lines = [",".join(headers)]
    for row in rows:
        cells = [_stringify(cell) for cell in row]
        if any("," in cell for cell in cells):
            raise ValueError("CSV cells must not contain commas")
        lines.append(",".join(cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Campaign artifact views
# ---------------------------------------------------------------------------


def render_campaign_capability(artifact: "CampaignArtifact") -> str:
    """The paper's Table-1-style capability view of a campaign artifact.

    Rows are defenses, columns are attacks.  When a (defense, attack)
    pair was measured under several workloads or device configs, the
    cell shows the *worst* recovery fraction -- a defense only counts as
    covering an attack if it covers it under every scenario swept.
    """
    from repro.defenses.matrix import recovery_grade

    defenses: List[str] = []
    attacks: List[str] = []
    worst: Dict[tuple, float] = {}
    for cell in artifact.cells:
        if cell.defense not in defenses:
            defenses.append(cell.defense)
        if cell.attack not in attacks:
            attacks.append(cell.attack)
        key = (cell.defense, cell.attack)
        worst[key] = min(worst.get(key, 1.0), cell.recovery_fraction)
    rows = []
    for defense in defenses:
        row: List[object] = [defense]
        for attack in attacks:
            fraction = worst.get((defense, attack))
            row.append(
                "-" if fraction is None else f"{recovery_grade(fraction)} {fraction:.2f}"
            )
        rows.append(row)
    return format_table(["Defense", *attacks], rows)


def render_ablation_summary(artifact: "AblationArtifact") -> str:
    """Per-cell ablation results as an aligned text table.

    One row per (attack, ablation-config) cell; the ``config`` column is
    the :class:`~repro.ablation.config.AblationConfig` label (``full``
    or the ``no-<feature>`` terms disabled in that cell).
    """
    rows = []
    for cell in artifact.cells:
        detection = (
            format_duration(cell.detection_latency_us)
            if cell.detection_latency_us is not None
            else "-"
        )
        rows.append(
            [
                cell.attack,
                cell.config,
                cell.recovery_fraction,
                cell.detected,
                detection,
                cell.write_amplification,
                cell.data_loss_pages,
                cell.pages_offloaded_remote,
            ]
        )
    return format_table(
        [
            "attack",
            "config",
            "recovered",
            "detected",
            "detect in",
            "WA",
            "data loss",
            "offloaded",
        ],
        rows,
    )


def render_campaign_overhead(artifact: "CampaignArtifact") -> str:
    """Per-cell I/O overhead and provenance table for a campaign artifact."""
    rows = []
    for cell in artifact.cells:
        detection = (
            format_duration(cell.detection_latency_us)
            if cell.detection_latency_us is not None
            else "-"
        )
        rows.append(
            [
                cell.cell_key,
                cell.recovery_fraction,
                detection,
                cell.write_amplification,
                cell.mean_write_latency_us,
                cell.host_commands,
                cell.oplog_hash[:12] if cell.oplog_hash else "-",
            ]
        )
    return format_table(
        ["cell", "recovered", "detect in", "WA", "wr us", "host cmds", "oplog"],
        rows,
    )


def render_campaign_forensics(artifact: "CampaignArtifact") -> str:
    """Exact forensic / recovery metrics for the cells that have them.

    Returns an empty string when no cell in the artifact was run on a
    forensics-capable defense (nothing to show).
    """
    rows = []
    for cell in artifact.cells:
        if cell.forensic_pattern is None:
            continue
        rows.append(
            [
                cell.cell_key,
                cell.forensic_pattern,
                cell.blast_radius_pages if cell.blast_radius_pages is not None else "-",
                cell.exact_pages_recovered
                if cell.exact_pages_recovered is not None
                else "-",
                cell.exact_pages_lost if cell.exact_pages_lost is not None else "-",
                "yes" if cell.recovery_exact else "NO",
                "ok" if not cell.integrity_errors else "; ".join(cell.integrity_errors),
            ]
        )
    if not rows:
        return ""
    return format_table(
        ["cell", "pattern", "blast", "recovered", "lost", "exact", "evidence"],
        rows,
    )


def render_detection_roc(artifact: "RocArtifact") -> str:
    """The full ROC point table of a detection-quality artifact.

    One row per (cell, detector, threshold): confusion counts plus the
    TPR/FPR trade-off at that threshold.  This is the raw material the
    quality summary (:func:`render_detection_quality`) condenses.
    """
    rows = []
    for curve in artifact.curves:
        for point in curve.points:
            rows.append(
                [
                    curve.cell_key,
                    curve.detector,
                    point.threshold,
                    point.true_positives,
                    point.false_positives,
                    point.true_negatives,
                    point.false_negatives,
                    point.true_positive_rate,
                    point.false_positive_rate,
                ]
            )
    return format_table(
        ["cell", "detector", "thresh", "TP", "FP", "TN", "FN", "TPR", "FPR"],
        rows,
    )


def render_detection_quality(artifact: "RocArtifact") -> str:
    """Per-(cell, detector) quality summary of a detection-quality artifact.

    AUC over the whole sweep, the operating point at the deployed
    default threshold, and whether the cell's actual defense flagged
    the scenario at all -- the column that shows an evasive attack
    beating the shipped detector while the swept primitive would have
    caught it (or not).
    """
    rows = []
    for curve in artifact.curves:
        rows.append(
            [
                curve.cell_key,
                curve.detector,
                curve.samples,
                curve.auc,
                curve.default_threshold,
                curve.tpr_at_default,
                curve.fpr_at_default,
                "yes" if curve.defense_detected else "no",
            ]
        )
    return format_table(
        [
            "cell",
            "detector",
            "writes",
            "AUC",
            "default",
            "TPR@default",
            "FPR@default",
            "defense detected",
        ],
        rows,
    )


def render_attack_timeline(
    report: "ForensicReport", timeline: "OperationTimeline" = None, max_events: int = 20
) -> str:
    """Human-readable attack-timeline report for one investigated device.

    The header summarises the evidence chain and the classifier's
    verdict; when the live ``timeline`` is supplied, the malicious
    operations inside the attack window are listed, earliest first,
    truncated to ``max_events`` with the overflow count noted.
    """
    lines = [
        f"Evidence chain: {report.total_entries} entries, "
        f"{report.sealed_segments} sealed segments "
        f"({report.offloaded_segments} offloaded)",
        f"  chain verified: {report.chain_verified}"
        + (f" (tampered at entry {report.tampered_at})" if report.tampered_at is not None else ""),
        f"  remote time order: {report.remote_time_order_ok}",
        "",
        f"Attack: {report.pattern}",
    ]
    if report.attack_found:
        lines += [
            f"  first malicious op: sequence {report.first_malicious_sequence} "
            f"at t={format_duration(report.first_malicious_us)}",
            f"  window: {format_duration(report.last_malicious_us - report.first_malicious_us)}"
            f"  streams: {report.malicious_streams}",
            f"  blast radius: {report.blast_radius_pages} pages "
            f"({report.blast_radius_bytes} bytes), "
            f"{report.encrypted_writes} encrypted writes, "
            f"{report.trimmed_pages} pages trimmed",
        ]
    if report.recovery_target_us is not None:
        lines += [
            "",
            f"Point-in-time recovery to t={format_duration(report.recovery_target_us)}:",
            f"  recovered: {report.pages_recovered} pages "
            f"({report.pages_recovered_local} local, "
            f"{report.pages_recovered_remote} remote), "
            f"{report.pages_unmapped} correctly unmapped",
            f"  lost: {report.pages_lost} pages"
            + (f" {report.lost_lbas}" if report.lost_lbas else ""),
            f"  exact: {report.recovery_exact}",
        ]
    if timeline is not None and report.attack_found:
        events = [
            event
            for event in timeline.events_between(
                report.first_malicious_us, report.last_malicious_us
            )
            if event.stream_id in report.malicious_streams and event.destroys_data
        ]
        shown = events[:max_events]
        lines += ["", f"Malicious operations ({len(events)} total):"]
        lines.append(
            format_table(
                ["seq", "t", "op", "lba", "entropy"],
                [
                    [
                        event.sequence,
                        format_duration(event.timestamp_us),
                        event.op_type.value,
                        event.lba,
                        event.entropy,
                    ]
                    for event in shown
                ],
            )
        )
        if len(events) > len(shown):
            lines.append(f"  ... {len(events) - len(shown)} more")
    return "\n".join(lines)
