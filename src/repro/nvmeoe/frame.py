"""Ethernet framing for the NVMe-oE path."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

ETHERNET_HEADER_BYTES = 18  # dst MAC + src MAC + ethertype + FCS
DEFAULT_MTU = 1500
JUMBO_MTU = 9000
NVME_OE_ETHERTYPE = 0x88FF


@dataclass(frozen=True)
class EthernetFrame:
    """One Ethernet frame carrying a slice of an NVMe-oE capsule."""

    src_mac: str
    dst_mac: str
    payload_size: int
    sequence: int = 0
    ethertype: int = NVME_OE_ETHERTYPE

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        if not self.src_mac or not self.dst_mac:
            raise ValueError("frames need source and destination MAC addresses")

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including the Ethernet header and FCS."""
        return self.payload_size + ETHERNET_HEADER_BYTES


def fragment_payload(
    payload_bytes: int,
    mtu: int = DEFAULT_MTU,
    src_mac: str = "02:00:00:00:00:01",
    dst_mac: str = "02:00:00:00:00:02",
) -> List[EthernetFrame]:
    """Split a capsule of ``payload_bytes`` into MTU-sized frames."""
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if mtu < 64:
        raise ValueError("mtu must be at least 64 bytes")
    if payload_bytes == 0:
        return []
    frames: List[EthernetFrame] = []
    remaining = payload_bytes
    sequence = 0
    while remaining > 0:
        chunk = min(remaining, mtu)
        frames.append(
            EthernetFrame(
                src_mac=src_mac,
                dst_mac=dst_mac,
                payload_size=chunk,
                sequence=sequence,
            )
        )
        remaining -= chunk
        sequence += 1
    return frames


def wire_bytes_for_payload(payload_bytes: int, mtu: int = DEFAULT_MTU) -> int:
    """Total bytes on the wire (payload + per-frame headers) for a capsule.

    Closed form of summing :func:`fragment_payload` frame sizes -- the
    offload path computes this for every capsule, so it must not
    materialise the frame list.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if mtu < 64:
        raise ValueError("mtu must be at least 64 bytes")
    if payload_bytes == 0:
        return 0
    frame_count = (payload_bytes + mtu - 1) // mtu
    return payload_bytes + frame_count * ETHERNET_HEADER_BYTES
