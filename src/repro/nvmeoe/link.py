"""Network link model: bandwidth, propagation latency, utilisation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import SimClock, US_PER_SECOND
from repro.nvmeoe.frame import (
    DEFAULT_MTU,
    ETHERNET_HEADER_BYTES,
    wire_bytes_for_payload,
)


@dataclass
class LinkStats:
    """Traffic counters for one link."""

    payload_bytes_sent: int = 0
    wire_bytes_sent: int = 0
    transfers: int = 0
    busy_us: float = 0.0

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` the link spent transmitting, capped at 1.

        Use :meth:`raw_utilization` to see oversubscription; this view
        exists for ratio displays that expect a [0, 1] value.
        """
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.raw_utilization(elapsed_us))

    def raw_utilization(self, elapsed_us: float) -> float:
        """Unclamped transmit-time / elapsed-time ratio.

        Values above 1.0 mean the link was asked for more transmit time
        than has elapsed -- it is oversubscribed and transfers queue into
        the future (see :meth:`NetworkLink.backlog_us`).
        """
        if elapsed_us <= 0:
            return 0.0
        return self.busy_us / elapsed_us


class NetworkLink:
    """A point-to-point Ethernet link between the SSD NIC and a remote target.

    The link serialises transfers: a new transfer starts no earlier than
    the completion of the previous one, which is how sustained offload
    throughput is bounded by link bandwidth.
    """

    def __init__(
        self,
        clock: SimClock,
        bandwidth_gbps: float = 1.0,
        propagation_us: float = 200.0,
        mtu: int = DEFAULT_MTU,
    ) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if propagation_us < 0:
            raise ValueError("propagation_us must be non-negative")
        self.clock = clock
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_us = propagation_us
        self.mtu = mtu
        self.stats = LinkStats()
        self._busy_until_us: float = 0.0

    @property
    def bytes_per_us(self) -> float:
        """Link capacity in bytes per microsecond."""
        return self.bandwidth_gbps * 1e9 / 8.0 / US_PER_SECOND

    def serialization_us(self, payload_bytes: int) -> float:
        """Time to push ``payload_bytes`` (plus framing) onto the wire."""
        return self._wire_time_us(wire_bytes_for_payload(payload_bytes, mtu=self.mtu))

    def _wire_time_us(self, wire_bytes: int) -> float:
        """Transmit time for an already-framed byte count.

        The single serialization formula: :meth:`transfer` (which has
        the wire size in hand) and :meth:`serialization_us` both
        delegate here, so the two can never drift apart.
        """
        return wire_bytes / self.bytes_per_us

    def transfer(self, payload_bytes: int) -> float:
        """Submit a transfer and return its completion timestamp (us).

        The transfer queues behind any in-flight transfer; the returned
        timestamp is when the last byte arrives at the remote end.  The
        simulation clock is *not* advanced -- offloading is asynchronous
        with respect to host I/O.
        """
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        start_us = max(float(self.clock.now_us), self._busy_until_us)
        # One framing computation per transfer: this is the offload hot
        # path, and the closed form is the only non-trivial work here.
        wire_bytes = wire_bytes_for_payload(payload_bytes, mtu=self.mtu)
        serialization = self._wire_time_us(wire_bytes)
        self._busy_until_us = start_us + serialization
        completion = self._busy_until_us + self.propagation_us
        self.stats.transfers += 1
        self.stats.payload_bytes_sent += payload_bytes
        self.stats.wire_bytes_sent += wire_bytes
        self.stats.busy_us += serialization
        return completion

    def backlog_us(self) -> float:
        """How far ahead of the clock the link is already committed."""
        return max(0.0, self._busy_until_us - self.clock.now_us)

    @property
    def saturated(self) -> bool:
        """True when transfers are queuing behind committed transmit time."""
        return self.backlog_us() > 0.0

    def sustained_throughput_bytes_per_s(self) -> float:
        """Achievable payload throughput after framing overhead."""
        payload_per_frame = self.mtu
        wire_per_frame = payload_per_frame + ETHERNET_HEADER_BYTES
        efficiency = payload_per_frame / wire_per_frame
        return self.bandwidth_gbps * 1e9 / 8.0 * efficiency
