"""NVMe-over-Ethernet protocol capsules.

The offload engine packs retained pages and log segments into capsules;
the protocol layer sizes the capsules (headers, per-entry metadata) and
serialises small control capsules for the remote end.  Absolute byte
layouts are not important to the results -- capsule *sizes* are, since
they determine link utilisation and therefore retention time.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List

CAPSULE_HEADER_BYTES = 64
ENTRY_METADATA_BYTES = 40


class CapsuleType(enum.Enum):
    """NVMe-oE capsule types used by RSSD."""

    OFFLOAD_PAGES = "offload_pages"
    OFFLOAD_LOG_SEGMENT = "offload_log_segment"
    FETCH_PAGES = "fetch_pages"
    FETCH_RESPONSE = "fetch_response"
    ACK = "ack"
    HEARTBEAT = "heartbeat"


@dataclass(frozen=True)
class Capsule:
    """One protocol capsule.

    ``payload_bytes`` is the compressed+encrypted body size; ``entries``
    counts the retained pages or log records inside so the remote end
    can account for them without decoding the body in the simulator.
    """

    capsule_type: CapsuleType
    sequence: int
    payload_bytes: int
    entries: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if self.entries < 0:
            raise ValueError("entries must be non-negative")
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")

    @property
    def wire_payload_bytes(self) -> int:
        """Capsule size on the wire (header + per-entry metadata + body)."""
        return (
            CAPSULE_HEADER_BYTES
            + self.entries * ENTRY_METADATA_BYTES
            + self.payload_bytes
        )

    def to_control_json(self) -> bytes:
        """Serialise the control portion (no body) for remote bookkeeping."""
        control = {
            "type": self.capsule_type.value,
            "sequence": self.sequence,
            "payload_bytes": self.payload_bytes,
            "entries": self.entries,
            "metadata": self.metadata,
        }
        return json.dumps(control, sort_keys=True).encode("utf-8")

    @classmethod
    def from_control_json(cls, raw: bytes) -> "Capsule":
        """Rebuild a capsule's control portion from :meth:`to_control_json`."""
        control = json.loads(raw.decode("utf-8"))
        return cls(
            capsule_type=CapsuleType(control["type"]),
            sequence=int(control["sequence"]),
            payload_bytes=int(control["payload_bytes"]),
            entries=int(control["entries"]),
            metadata=dict(control.get("metadata", {})),
        )


class NVMeOEProtocol:
    """Builds correctly-sequenced capsules for one SSD/remote session."""

    def __init__(self) -> None:
        self._sequence = 0
        self._sent: List[Capsule] = []

    @property
    def capsules_sent(self) -> int:
        """Total capsules built by this protocol instance."""
        return len(self._sent)

    @property
    def history(self) -> List[Capsule]:
        """Every capsule built so far, in build order."""
        return list(self._sent)

    def _next(self, capsule: Capsule) -> Capsule:
        self._sent.append(capsule)
        self._sequence += 1
        return capsule

    def offload_pages(
        self, compressed_bytes: int, page_count: int, first_version: int, last_version: int
    ) -> Capsule:
        """Capsule carrying a batch of retained pages, in time order."""
        return self._next(
            Capsule(
                capsule_type=CapsuleType.OFFLOAD_PAGES,
                sequence=self._sequence,
                payload_bytes=compressed_bytes,
                entries=page_count,
                metadata={
                    "first_version": first_version,
                    "last_version": last_version,
                },
            )
        )

    def offload_log_segment(self, compressed_bytes: int, record_count: int, segment_id: int) -> Capsule:
        """Capsule carrying one sealed log segment."""
        return self._next(
            Capsule(
                capsule_type=CapsuleType.OFFLOAD_LOG_SEGMENT,
                sequence=self._sequence,
                payload_bytes=compressed_bytes,
                entries=record_count,
                metadata={"segment_id": segment_id},
            )
        )

    def fetch_pages(self, page_count: int) -> Capsule:
        """Request capsule asking the remote for retained pages (recovery)."""
        return self._next(
            Capsule(
                capsule_type=CapsuleType.FETCH_PAGES,
                sequence=self._sequence,
                payload_bytes=0,
                entries=page_count,
            )
        )

    def ack(self, acked_sequence: int) -> Capsule:
        """Acknowledgement for a previously sent capsule."""
        return self._next(
            Capsule(
                capsule_type=CapsuleType.ACK,
                sequence=self._sequence,
                payload_bytes=0,
                metadata={"acked_sequence": acked_sequence},
            )
        )

    def verify_ordering(self) -> bool:
        """Check that capsule sequence numbers are strictly increasing."""
        sequences = [capsule.sequence for capsule in self._sent]
        return all(b == a + 1 for a, b in zip(sequences, sequences[1:]))
