"""Remote targets for the NVMe-oE offload path.

Two kinds of remote tier are modelled, matching the paper's setup of
Amazon S3 plus local storage servers:

* :class:`ObjectStore` -- an S3-like key/value object store with
  effectively unbounded capacity and immutable, versioned objects.
* :class:`StorageServer` -- an append-only segment server with a finite
  capacity, representing an on-premise storage box.

Both record arrival order so the time-ordering guarantee that the
evidence chain depends on can be verified end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.nvmeoe.protocol import Capsule, CapsuleType


@dataclass(frozen=True)
class RemoteObject:
    """One stored object (an offload capsule body) on a remote target."""

    key: str
    size_bytes: int
    entries: int
    arrival_us: float
    sequence: int
    capsule_type: CapsuleType
    metadata: Dict[str, object] = field(default_factory=dict)


class RemoteTargetError(Exception):
    """Raised when a remote target cannot accept or serve a request."""


class ObjectStore:
    """S3-like object store: durable, versioned, effectively unbounded."""

    def __init__(self, name: str = "s3://rssd-retention") -> None:
        self.name = name
        self._objects: Dict[str, RemoteObject] = {}
        self._arrival_order: List[str] = []
        # Running totals; the store is append-only, so the counters are
        # exact and keep ``stored_bytes`` O(1) on the offload hot path.
        self._stored_bytes = 0
        self._stored_entries = 0

    @property
    def object_count(self) -> int:
        """Number of stored objects."""
        return len(self._objects)

    @property
    def stored_bytes(self) -> int:
        """Total payload bytes stored (exact, O(1))."""
        return self._stored_bytes

    @property
    def stored_entries(self) -> int:
        """Total log/page entries across stored objects."""
        return self._stored_entries

    def put_capsule(self, capsule: Capsule, arrival_us: float) -> RemoteObject:
        """Store one capsule body as an immutable object."""
        key = f"{capsule.capsule_type.value}/{capsule.sequence:012d}"
        if key in self._objects:
            raise RemoteTargetError(f"object {key} already exists (immutable store)")
        obj = RemoteObject(
            key=key,
            size_bytes=capsule.wire_payload_bytes,
            entries=capsule.entries,
            arrival_us=arrival_us,
            sequence=capsule.sequence,
            capsule_type=capsule.capsule_type,
            metadata=dict(capsule.metadata),
        )
        self._objects[key] = obj
        self._arrival_order.append(key)
        self._stored_bytes += obj.size_bytes
        self._stored_entries += obj.entries
        return obj

    def get(self, key: str) -> RemoteObject:
        """Fetch one stored object by key."""
        if key not in self._objects:
            raise RemoteTargetError(f"object {key} not found")
        return self._objects[key]

    def list_keys(self, prefix: str = "") -> List[str]:
        """List keys with the given prefix, in arrival order."""
        return [key for key in self._arrival_order if key.startswith(prefix)]

    def arrivals(self) -> List[RemoteObject]:
        """Objects in the order they arrived."""
        return [self._objects[key] for key in self._arrival_order]

    def verify_time_order(self) -> bool:
        """Check arrivals are ordered by both timestamp and capsule sequence."""
        arrivals = self.arrivals()
        for earlier, later in zip(arrivals, arrivals[1:]):
            if later.arrival_us < earlier.arrival_us:
                return False
        page_seqs = [
            obj.sequence
            for obj in arrivals
            if obj.capsule_type is CapsuleType.OFFLOAD_PAGES
        ]
        return all(b > a for a, b in zip(page_seqs, page_seqs[1:]))


class StorageServer:
    """Append-only storage server with finite capacity."""

    def __init__(self, name: str = "storage-server-0", capacity_bytes: int = 4 * 1024**4) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._segments: List[RemoteObject] = []
        # Running totals kept exact by the append-only discipline; the
        # free-space check runs on every capsule, so it must be O(1).
        self._stored_bytes = 0
        self._stored_entries = 0

    @property
    def stored_bytes(self) -> int:
        """Total payload bytes appended (exact, O(1))."""
        return self._stored_bytes

    @property
    def stored_entries(self) -> int:
        """Total log/page entries across appended segments."""
        return self._stored_entries

    @property
    def free_bytes(self) -> int:
        """Remaining capacity in bytes."""
        return self.capacity_bytes - self.stored_bytes

    @property
    def segment_count(self) -> int:
        """Number of appended segments."""
        return len(self._segments)

    def append_capsule(self, capsule: Capsule, arrival_us: float) -> RemoteObject:
        """Append one capsule body as a new immutable segment."""
        size = capsule.wire_payload_bytes
        if size > self.free_bytes:
            raise RemoteTargetError(
                f"{self.name} is full: {size} bytes requested, {self.free_bytes} free"
            )
        segment = RemoteObject(
            key=f"{self.name}/segment-{len(self._segments):08d}",
            size_bytes=size,
            entries=capsule.entries,
            arrival_us=arrival_us,
            sequence=capsule.sequence,
            capsule_type=capsule.capsule_type,
            metadata=dict(capsule.metadata),
        )
        self._segments.append(segment)
        self._stored_bytes += segment.size_bytes
        self._stored_entries += segment.entries
        return segment

    def segments(self) -> List[RemoteObject]:
        """All segments in append order."""
        return list(self._segments)

    def verify_time_order(self) -> bool:
        """Segments must be strictly append-ordered by arrival time."""
        return all(
            later.arrival_us >= earlier.arrival_us
            for earlier, later in zip(self._segments, self._segments[1:])
        )


class TieredRemote:
    """A remote tier that fills a finite storage server first, then spills to S3.

    Matches the paper's deployment where nearby storage servers absorb the
    offload stream at low latency and the cloud provides unbounded capacity.
    """

    def __init__(self, server: Optional[StorageServer] = None, cloud: Optional[ObjectStore] = None) -> None:
        self.server = server if server is not None else StorageServer()
        self.cloud = cloud if cloud is not None else ObjectStore()

    @property
    def stored_bytes(self) -> int:
        """Bytes stored across both tiers."""
        return self.server.stored_bytes + self.cloud.stored_bytes

    @property
    def stored_entries(self) -> int:
        """Entries stored across both tiers."""
        return self.server.stored_entries + self.cloud.stored_entries

    def store_capsule(self, capsule: Capsule, arrival_us: float) -> RemoteObject:
        """Store a capsule on the server if it fits, otherwise in the cloud."""
        try:
            return self.server.append_capsule(capsule, arrival_us)
        except RemoteTargetError:
            return self.cloud.put_capsule(capsule, arrival_us)

    def verify_time_order(self) -> bool:
        """Arrival-order check over both tiers (the evidence-chain guarantee)."""
        return self.server.verify_time_order() and self.cloud.verify_time_order()
