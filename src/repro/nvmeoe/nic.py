"""Embedded NIC model with the firmware-only access boundary.

In RSSD the NIC lives inside the SSD controller (Figure 1): DMA engine,
TX/RX buffers, MAC and control registers are reachable only by the SSD
firmware, never by the host.  This is what makes the offload path
trustworthy even when the OS is compromised.  The model enforces the
boundary with a :class:`FirmwareToken` capability object that only the
device firmware holds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.sim import SimClock
from repro.ssd.errors import FirmwareProtectionError
from repro.nvmeoe.link import NetworkLink


class FirmwareToken:
    """Capability proving the caller is the SSD firmware.

    Only :class:`EmbeddedNIC.issue_firmware_token` creates instances and
    it can be called exactly once -- the device firmware grabs the token
    at initialisation time, before any host software runs.
    """

    __slots__ = ("_nic_id",)

    def __init__(self, nic_id: int) -> None:
        self._nic_id = nic_id

    @property
    def nic_id(self) -> int:
        """Identity of the NIC this token authorises."""
        return self._nic_id


@dataclass
class NICStats:
    """Counters kept by the embedded NIC."""

    tx_capsules: int = 0
    tx_payload_bytes: int = 0
    rx_capsules: int = 0
    rx_payload_bytes: int = 0
    dma_transfers: int = 0
    rejected_host_accesses: int = 0


class EmbeddedNIC:
    """The SSD-internal NIC: DMA + TX/RX rings + MAC, firmware-only."""

    def __init__(
        self,
        clock: SimClock,
        link: NetworkLink,
        tx_ring_entries: int = 256,
        dma_us_per_kb: float = 0.25,
    ) -> None:
        if tx_ring_entries < 1:
            raise ValueError("tx_ring_entries must be at least 1")
        if dma_us_per_kb < 0:
            raise ValueError("dma_us_per_kb must be non-negative")
        self.clock = clock
        self.link = link
        self.tx_ring_entries = tx_ring_entries
        self.dma_us_per_kb = dma_us_per_kb
        self.stats = NICStats()
        self._token: Optional[FirmwareToken] = None
        self._tx_ring: Deque[int] = deque()
        self._nic_id = id(self)

    def issue_firmware_token(self) -> FirmwareToken:
        """Hand the single firmware capability to the caller (once)."""
        if self._token is not None:
            raise FirmwareProtectionError(
                "the firmware token has already been issued; host software "
                "cannot obtain NIC access"
            )
        self._token = FirmwareToken(self._nic_id)
        return self._token

    def _check_token(self, token: Optional[FirmwareToken]) -> None:
        if token is None or token is not self._token:
            self.stats.rejected_host_accesses += 1
            raise FirmwareProtectionError(
                "NVMe-oE control registers are hardware-isolated from the host"
            )

    def dma_latency_us(self, payload_bytes: int) -> float:
        """DMA cost of staging ``payload_bytes`` from flash/DRAM to the TX buffer."""
        return self.dma_us_per_kb * (payload_bytes / 1024.0)

    def send_capsule(self, token: Optional[FirmwareToken], payload_bytes: int) -> float:
        """Transmit one NVMe-oE capsule; returns arrival timestamp at the remote.

        Raises :class:`FirmwareProtectionError` when called without the
        firmware capability -- this is the attack surface the threat
        model closes off.
        """
        self._check_token(token)
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if len(self._tx_ring) >= self.tx_ring_entries:
            # Ring full: the oldest descriptor has certainly completed by
            # the time a new transfer is queued behind the link backlog.
            self._tx_ring.popleft()
        self._tx_ring.append(payload_bytes)
        self.stats.dma_transfers += 1
        self.stats.tx_capsules += 1
        self.stats.tx_payload_bytes += payload_bytes
        completion = self.link.transfer(payload_bytes)
        return completion + self.dma_latency_us(payload_bytes)

    def receive_capsule(self, token: Optional[FirmwareToken], payload_bytes: int) -> float:
        """Receive one capsule from the remote (used during recovery fetches)."""
        self._check_token(token)
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        self.stats.rx_capsules += 1
        self.stats.rx_payload_bytes += payload_bytes
        completion = self.link.transfer(payload_bytes)
        return completion + self.dma_latency_us(payload_bytes)

    @property
    def tx_backlog(self) -> int:
        """Descriptors currently queued in the TX ring."""
        return len(self._tx_ring)
