"""Hardware-isolated NVMe-over-Ethernet substrate.

The paper's RSSD prototype adds an Ethernet MAC, DMA engine and TX/RX
buffers directly to the SSD controller (Figure 1), so retained pages
and log segments can be shipped to remote cloud/storage servers without
traversing the (untrusted) host.  This package models that path:

* :mod:`repro.nvmeoe.frame` -- Ethernet framing and MTU fragmentation.
* :mod:`repro.nvmeoe.nic` -- the embedded NIC (rings + DMA) with the
  firmware-only access control that provides hardware isolation.
* :mod:`repro.nvmeoe.link` -- a bandwidth/latency link model.
* :mod:`repro.nvmeoe.protocol` -- NVMe-oE command capsules.
* :mod:`repro.nvmeoe.remote` -- remote targets: an S3-like object store
  and an append-only storage server.
"""

from repro.nvmeoe.frame import ETHERNET_HEADER_BYTES, EthernetFrame, fragment_payload
from repro.nvmeoe.link import LinkStats, NetworkLink
from repro.nvmeoe.nic import EmbeddedNIC, FirmwareToken
from repro.nvmeoe.protocol import Capsule, CapsuleType, NVMeOEProtocol
from repro.nvmeoe.remote import ObjectStore, RemoteObject, StorageServer, TieredRemote

__all__ = [
    "Capsule",
    "CapsuleType",
    "ETHERNET_HEADER_BYTES",
    "EmbeddedNIC",
    "EthernetFrame",
    "FirmwareToken",
    "LinkStats",
    "NetworkLink",
    "NVMeOEProtocol",
    "ObjectStore",
    "RemoteObject",
    "StorageServer",
    "TieredRemote",
    "fragment_payload",
]
