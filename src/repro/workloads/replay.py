"""Replay block traces against any device that speaks the SSD interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.ssd.device import SSD
from repro.ssd.flash import PageContent
from repro.workloads.records import TraceOp, TraceRecord


@dataclass
class ReplayResult:
    """Summary of one trace replay."""

    records_replayed: int = 0
    reads: int = 0
    writes: int = 0
    trims: int = 0
    flushes: int = 0
    pages_written: int = 0
    pages_read: int = 0
    pages_trimmed: int = 0
    #: Host commands actually issued to the device.  Equals
    #: ``records_replayed`` on the per-op path; smaller when the batched
    #: replayer coalesces contiguous runs into one command.
    device_calls: int = 0
    total_read_latency_us: float = 0.0
    total_write_latency_us: float = 0.0
    end_timestamp_us: int = 0

    @property
    def coalescing_factor(self) -> float:
        """Trace records per issued device command (1.0 = no coalescing)."""
        return self.records_replayed / self.device_calls if self.device_calls else 0.0

    @property
    def mean_write_latency_us(self) -> float:
        return self.total_write_latency_us / self.writes if self.writes else 0.0

    @property
    def mean_read_latency_us(self) -> float:
        return self.total_read_latency_us / self.reads if self.reads else 0.0


class TraceReplayer:
    """Replays a trace in timestamp order against a device.

    The replayer synthesises descriptor-only page contents from each
    record's entropy / compressibility attributes (carrying real bytes
    for multi-gigabyte traces is neither necessary nor feasible).  A
    deterministic fingerprint is derived from (stream, lba, sequence) so
    recovery tests can check *which version* of a page was restored.
    """

    def __init__(self, device: SSD, honor_timestamps: bool = True) -> None:
        self.device = device
        self.honor_timestamps = honor_timestamps
        self._write_sequence = 0

    def _content_for(self, record: TraceRecord, page_offset: int) -> PageContent:
        self._write_sequence += 1
        fingerprint = hash(
            (record.stream_id, record.lba + page_offset, self._write_sequence)
        ) & 0xFFFFFFFFFFFFFFFF
        return PageContent.synthetic(
            fingerprint=fingerprint,
            length=self.device.page_size,
            entropy=record.entropy,
            compress_ratio=record.compress_ratio,
        )

    def replay(self, records: Iterable[TraceRecord]) -> ReplayResult:
        """Apply every record to the device, in the order given."""
        result = ReplayResult()
        before_read = self.device.metrics.latency["read"].total_us
        before_write = self.device.metrics.latency["write"].total_us
        for record in records:
            if self.honor_timestamps:
                self.device.clock.advance_to(record.timestamp_us)
            self._apply(record, result)
            result.records_replayed += 1
            result.end_timestamp_us = self.device.clock.now_us
        result.total_read_latency_us = (
            self.device.metrics.latency["read"].total_us - before_read
        )
        result.total_write_latency_us = (
            self.device.metrics.latency["write"].total_us - before_write
        )
        return result

    def _mapped_lba(self, record: TraceRecord) -> int:
        """Map a trace LBA into the device's exported range."""
        capacity = self.device.capacity_pages
        return record.lba % max(1, capacity - record.npages) if record.npages else record.lba

    def _apply(self, record: TraceRecord, result: ReplayResult) -> None:
        lba = self._mapped_lba(record)
        result.device_calls += 1
        if record.op is TraceOp.READ:
            npages = max(1, record.npages)
            self.device.read(lba, npages, stream_id=record.stream_id)
            result.reads += 1
            result.pages_read += npages
        elif record.op is TraceOp.WRITE:
            npages = max(1, record.npages)
            contents = [self._content_for(record, offset) for offset in range(npages)]
            self.device.write(lba, contents, stream_id=record.stream_id)
            result.writes += 1
            result.pages_written += npages
        elif record.op is TraceOp.TRIM:
            npages = max(1, record.npages)
            self.device.trim(lba, npages, stream_id=record.stream_id)
            result.trims += 1
            result.pages_trimmed += npages
        elif record.op is TraceOp.FLUSH:
            self.device.flush(stream_id=record.stream_id)
            result.flushes += 1


class BatchTraceReplayer(TraceReplayer):
    """Replays a trace through the device's batched (vectorized) path.

    Runs of consecutive records with the same operation type and stream
    whose page ranges are contiguous are coalesced into one
    ``write_batch`` / ``read_batch`` / ``trim_range`` call of up to
    ``max_batch_pages`` pages -- the software analogue of doorbell
    batching on a real NVMe submission queue.

    Equivalence contract: a batch call is bit-identical to the per-op
    call covering the same pages (the equivalence property tests pin
    this down), so replaying coalesced preserves the *logical* device
    state exactly -- every live page holds the same content version as
    under per-op replay, and host page counters match.  What changes is
    the command stream itself: host command counts, the operation log
    (one aggregated entry per batch) and background-maintenance cadence
    (GC/wear checks run per command) follow the merged commands, so
    physical page placement may legitimately differ.
    """

    def __init__(
        self,
        device: SSD,
        honor_timestamps: bool = True,
        max_batch_pages: int = 64,
    ) -> None:
        super().__init__(device, honor_timestamps=honor_timestamps)
        if max_batch_pages < 1:
            raise ValueError("max_batch_pages must be at least 1")
        self.max_batch_pages = max_batch_pages

    def replay(self, records: Iterable[TraceRecord]) -> ReplayResult:
        """Apply every record, coalescing contiguous same-op runs.

        The grouping scan is the per-record cost of the batched path, so
        it runs with everything hoisted into locals: for each run the
        inner loop consumes records until the run breaks (op change,
        stream change, discontiguity, or the page cap), then issues one
        vectorized device call.
        """
        trace = records if isinstance(records, list) else list(records)
        result = ReplayResult()
        device = self.device
        metrics = device.metrics
        before_read = metrics.latency["read"].total_us
        before_write = metrics.latency["write"].total_us
        max_pages = self.max_batch_pages
        honor_timestamps = self.honor_timestamps
        capacity = device.capacity_pages
        page_size = device.page_size
        synthetic_run = PageContent.synthetic_run
        mask = 0xFFFFFFFFFFFFFFFF
        write_seq = self._write_sequence
        advance_to = device.clock.advance_to
        write_batch = device.write_batch
        read_batch = device.read_batch
        trim_range = device.trim_range
        WRITE, READ, FLUSH = TraceOp.WRITE, TraceOp.READ, TraceOp.FLUSH

        index = 0
        total = len(trace)
        while index < total:
            record = trace[index]
            op = record.op
            if op is FLUSH:
                if honor_timestamps:
                    advance_to(record.timestamp_us)
                device.flush(stream_id=record.stream_id)
                result.flushes += 1
                result.device_calls += 1
                result.records_replayed += 1
                index += 1
                continue
            stream = record.stream_id
            npages = record.npages
            raw_lba = record.lba
            if npages:
                modulus = capacity - npages
                start_lba = raw_lba % (modulus if modulus > 1 else 1)
            else:
                npages = 1
                start_lba = raw_lba
            pages = npages
            merged = 1
            if op is WRITE:
                contents = synthetic_run(
                    [
                        hash((stream, raw_lba + offset, write_seq + 1 + offset)) & mask
                        for offset in range(npages)
                    ],
                    page_size,
                    record.entropy,
                    record.compress_ratio,
                )
                write_seq += npages
            cursor = index + 1
            while cursor < total:
                nxt = trace[cursor]
                if nxt.op is not op or nxt.stream_id != stream:
                    break
                next_pages = nxt.npages
                raw_lba = nxt.lba
                if next_pages:
                    if pages + next_pages > max_pages:
                        break
                    modulus = capacity - next_pages
                    lba = raw_lba % (modulus if modulus > 1 else 1)
                else:
                    next_pages = 1
                    if pages + 1 > max_pages:
                        break
                    lba = raw_lba
                if lba != start_lba + pages:
                    break
                if op is WRITE:
                    contents.extend(
                        synthetic_run(
                            [
                                hash((stream, raw_lba + offset, write_seq + 1 + offset)) & mask
                                for offset in range(next_pages)
                            ],
                            page_size,
                            nxt.entropy,
                            nxt.compress_ratio,
                        )
                    )
                    write_seq += next_pages
                pages += next_pages
                merged += 1
                cursor += 1
            if honor_timestamps:
                advance_to(trace[cursor - 1].timestamp_us)
            if op is WRITE:
                write_batch(start_lba, contents, stream_id=stream)
                result.writes += merged
                result.pages_written += pages
            elif op is READ:
                read_batch(start_lba, pages, stream_id=stream)
                result.reads += merged
                result.pages_read += pages
            else:
                trim_range(start_lba, pages, stream_id=stream)
                result.trims += merged
                result.pages_trimmed += pages
            result.device_calls += 1
            result.records_replayed += merged
            index = cursor

        self._write_sequence = write_seq
        result.end_timestamp_us = device.clock.now_us
        result.total_read_latency_us = metrics.latency["read"].total_us - before_read
        result.total_write_latency_us = metrics.latency["write"].total_us - before_write
        return result
