"""Replay block traces against any device that speaks the SSD interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.ssd.device import SSD
from repro.ssd.flash import PageContent
from repro.workloads.records import TraceOp, TraceRecord


@dataclass
class ReplayResult:
    """Summary of one trace replay."""

    records_replayed: int = 0
    reads: int = 0
    writes: int = 0
    trims: int = 0
    flushes: int = 0
    pages_written: int = 0
    pages_read: int = 0
    pages_trimmed: int = 0
    total_read_latency_us: float = 0.0
    total_write_latency_us: float = 0.0
    end_timestamp_us: int = 0

    @property
    def mean_write_latency_us(self) -> float:
        return self.total_write_latency_us / self.writes if self.writes else 0.0

    @property
    def mean_read_latency_us(self) -> float:
        return self.total_read_latency_us / self.reads if self.reads else 0.0


class TraceReplayer:
    """Replays a trace in timestamp order against a device.

    The replayer synthesises descriptor-only page contents from each
    record's entropy / compressibility attributes (carrying real bytes
    for multi-gigabyte traces is neither necessary nor feasible).  A
    deterministic fingerprint is derived from (stream, lba, sequence) so
    recovery tests can check *which version* of a page was restored.
    """

    def __init__(self, device: SSD, honor_timestamps: bool = True) -> None:
        self.device = device
        self.honor_timestamps = honor_timestamps
        self._write_sequence = 0

    def _content_for(self, record: TraceRecord, page_offset: int) -> PageContent:
        self._write_sequence += 1
        fingerprint = hash(
            (record.stream_id, record.lba + page_offset, self._write_sequence)
        ) & 0xFFFFFFFFFFFFFFFF
        return PageContent.synthetic(
            fingerprint=fingerprint,
            length=self.device.page_size,
            entropy=record.entropy,
            compress_ratio=record.compress_ratio,
        )

    def replay(self, records: Iterable[TraceRecord]) -> ReplayResult:
        """Apply every record to the device, in the order given."""
        result = ReplayResult()
        before_read = self.device.metrics.latency["read"].total_us
        before_write = self.device.metrics.latency["write"].total_us
        for record in records:
            if self.honor_timestamps:
                self.device.clock.advance_to(record.timestamp_us)
            self._apply(record, result)
            result.records_replayed += 1
            result.end_timestamp_us = self.device.clock.now_us
        result.total_read_latency_us = (
            self.device.metrics.latency["read"].total_us - before_read
        )
        result.total_write_latency_us = (
            self.device.metrics.latency["write"].total_us - before_write
        )
        return result

    def _apply(self, record: TraceRecord, result: ReplayResult) -> None:
        capacity = self.device.capacity_pages
        lba = record.lba % max(1, capacity - record.npages) if record.npages else record.lba
        if record.op is TraceOp.READ:
            npages = max(1, record.npages)
            self.device.read(lba, npages, stream_id=record.stream_id)
            result.reads += 1
            result.pages_read += npages
        elif record.op is TraceOp.WRITE:
            npages = max(1, record.npages)
            contents = [self._content_for(record, offset) for offset in range(npages)]
            self.device.write(lba, contents, stream_id=record.stream_id)
            result.writes += 1
            result.pages_written += npages
        elif record.op is TraceOp.TRIM:
            npages = max(1, record.npages)
            self.device.trim(lba, npages, stream_id=record.stream_id)
            result.trims += 1
            result.pages_trimmed += npages
        elif record.op is TraceOp.FLUSH:
            self.device.flush(stream_id=record.stream_id)
            result.flushes += 1
