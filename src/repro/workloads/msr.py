"""MSR-Cambridge volume profiles.

The MSR-Cambridge traces (SNIA IOTTA) cover a week of block I/O from
enterprise servers.  The actual traces are not redistributable, so each
volume used by the paper's Figure 2 is represented by a
:class:`~repro.workloads.synthetic.VolumeProfile` calibrated to the
published per-volume characteristics: daily write volume, write/read
mix, request sizes and working-set skew.  Retention time is driven by
daily write volume and overwrite locality, which these profiles encode.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.workloads.records import TraceOp, TraceParseError, TraceRecord
from repro.workloads.synthetic import VolumeProfile, profile_workload

#: Per-volume statistical profiles (daily write volume in GB/day).
MSR_VOLUMES: Dict[str, VolumeProfile] = {
    "hm": VolumeProfile(
        name="hm",
        daily_write_gb=2.2,
        write_fraction=0.64,
        mean_request_pages=2,
        working_set_pages=250_000,
        zipf_theta=0.95,
        mean_entropy=4.1,
        mean_compress_ratio=0.42,
    ),
    "src": VolumeProfile(
        name="src",
        daily_write_gb=6.5,
        write_fraction=0.57,
        mean_request_pages=4,
        working_set_pages=600_000,
        zipf_theta=0.9,
        mean_entropy=4.6,
        mean_compress_ratio=0.5,
    ),
    "ts": VolumeProfile(
        name="ts",
        daily_write_gb=1.8,
        write_fraction=0.82,
        mean_request_pages=2,
        working_set_pages=150_000,
        zipf_theta=1.0,
        mean_entropy=3.8,
        mean_compress_ratio=0.4,
    ),
    "wdev": VolumeProfile(
        name="wdev",
        daily_write_gb=1.1,
        write_fraction=0.8,
        mean_request_pages=2,
        working_set_pages=120_000,
        zipf_theta=1.0,
        mean_entropy=3.9,
        mean_compress_ratio=0.38,
    ),
    "rsrch": VolumeProfile(
        name="rsrch",
        daily_write_gb=1.4,
        write_fraction=0.91,
        mean_request_pages=2,
        working_set_pages=110_000,
        zipf_theta=1.05,
        mean_entropy=4.0,
        mean_compress_ratio=0.41,
    ),
    "stg": VolumeProfile(
        name="stg",
        daily_write_gb=5.8,
        write_fraction=0.85,
        mean_request_pages=3,
        working_set_pages=500_000,
        zipf_theta=0.85,
        mean_entropy=4.4,
        mean_compress_ratio=0.47,
    ),
    "usr": VolumeProfile(
        name="usr",
        daily_write_gb=4.1,
        write_fraction=0.4,
        mean_request_pages=5,
        working_set_pages=900_000,
        zipf_theta=0.8,
        mean_entropy=4.8,
        mean_compress_ratio=0.55,
    ),
    "web": VolumeProfile(
        name="web",
        daily_write_gb=2.9,
        write_fraction=0.46,
        mean_request_pages=3,
        working_set_pages=400_000,
        zipf_theta=0.9,
        mean_entropy=4.5,
        mean_compress_ratio=0.5,
    ),
    "proj": VolumeProfile(
        name="proj",
        daily_write_gb=8.9,
        write_fraction=0.6,
        mean_request_pages=6,
        working_set_pages=1_200_000,
        zipf_theta=0.8,
        mean_entropy=4.7,
        mean_compress_ratio=0.52,
    ),
    "prn": VolumeProfile(
        name="prn",
        daily_write_gb=5.3,
        write_fraction=0.75,
        mean_request_pages=3,
        working_set_pages=450_000,
        zipf_theta=0.88,
        mean_entropy=4.3,
        mean_compress_ratio=0.46,
    ),
}


def msr_profile(volume: str) -> VolumeProfile:
    """Look up the profile of an MSR volume by name."""
    try:
        return MSR_VOLUMES[volume]
    except KeyError:
        raise KeyError(
            f"unknown MSR volume {volume!r}; available: {sorted(MSR_VOLUMES)}"
        ) from None


def msr_trace(
    volume: str,
    capacity_pages: int,
    duration_s: float,
    seed: int = 1,
    time_compression: float = 1.0,
) -> List[TraceRecord]:
    """Generate a synthetic trace for one MSR volume."""
    return profile_workload(
        msr_profile(volume),
        capacity_pages=capacity_pages,
        duration_s=duration_s,
        seed=seed,
        time_compression=time_compression,
    )


#: Windows FILETIME ticks (100 ns) per microsecond -- the MSR traces'
#: timestamp unit.
MSR_TICKS_PER_US = 10

#: Column count of the published MSR-Cambridge CSV format.
_MSR_FIELDS = 7


def load_msr_trace(
    path: str,
    *,
    page_size: int = 4096,
    strict: bool = True,
    max_records: Optional[int] = None,
) -> List[TraceRecord]:
    """Load a real MSR-Cambridge CSV trace file.

    The published format is one request per line::

        Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

    where ``Timestamp`` is a Windows FILETIME (100 ns ticks since 1601),
    ``Type`` is ``Read`` or ``Write`` (case-insensitive), and ``Offset``
    / ``Size`` are bytes.  Timestamps become microseconds relative to
    the first record (clamped at zero for the occasional out-of-order
    request), offsets become ``page_size`` logical pages, and sizes
    round up to at least one page.

    ``strict=True`` raises :class:`~repro.workloads.records.TraceParseError`
    (with path and line number) on the first malformed line; with
    ``strict=False`` malformed lines are skipped, so a truncated
    download still loads its intact prefix.  ``max_records`` caps the
    load for sampling huge traces.  An empty file is an empty trace.
    """
    records: List[TraceRecord] = []
    origin_ticks: Optional[int] = None
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            if max_records is not None and len(records) >= max_records:
                break
            fields = text.split(",")
            try:
                if len(fields) != _MSR_FIELDS:
                    raise ValueError(
                        f"expected {_MSR_FIELDS} comma-separated fields, "
                        f"got {len(fields)}"
                    )
                ticks = int(fields[0])
                kind = fields[3].strip().lower()
                if kind not in ("read", "write"):
                    raise ValueError(f"unknown request type {fields[3]!r}")
                offset = int(fields[4])
                size = int(fields[5])
                if offset < 0 or size < 0:
                    raise ValueError("offset and size must be non-negative")
            except ValueError as error:
                if strict:
                    raise TraceParseError(
                        f"malformed MSR trace line: {error}",
                        path=path,
                        line_no=line_no,
                    ) from None
                continue
            if origin_ticks is None:
                origin_ticks = ticks
            timestamp_us = max(0, (ticks - origin_ticks) // MSR_TICKS_PER_US)
            records.append(
                TraceRecord(
                    timestamp_us=timestamp_us,
                    op=TraceOp.READ if kind == "read" else TraceOp.WRITE,
                    lba=offset // page_size,
                    npages=max(1, (size + page_size - 1) // page_size),
                )
            )
    return records
