"""MSR-Cambridge volume profiles.

The MSR-Cambridge traces (SNIA IOTTA) cover a week of block I/O from
enterprise servers.  The actual traces are not redistributable, so each
volume used by the paper's Figure 2 is represented by a
:class:`~repro.workloads.synthetic.VolumeProfile` calibrated to the
published per-volume characteristics: daily write volume, write/read
mix, request sizes and working-set skew.  Retention time is driven by
daily write volume and overwrite locality, which these profiles encode.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.records import TraceRecord
from repro.workloads.synthetic import VolumeProfile, profile_workload

#: Per-volume statistical profiles (daily write volume in GB/day).
MSR_VOLUMES: Dict[str, VolumeProfile] = {
    "hm": VolumeProfile(
        name="hm",
        daily_write_gb=2.2,
        write_fraction=0.64,
        mean_request_pages=2,
        working_set_pages=250_000,
        zipf_theta=0.95,
        mean_entropy=4.1,
        mean_compress_ratio=0.42,
    ),
    "src": VolumeProfile(
        name="src",
        daily_write_gb=6.5,
        write_fraction=0.57,
        mean_request_pages=4,
        working_set_pages=600_000,
        zipf_theta=0.9,
        mean_entropy=4.6,
        mean_compress_ratio=0.5,
    ),
    "ts": VolumeProfile(
        name="ts",
        daily_write_gb=1.8,
        write_fraction=0.82,
        mean_request_pages=2,
        working_set_pages=150_000,
        zipf_theta=1.0,
        mean_entropy=3.8,
        mean_compress_ratio=0.4,
    ),
    "wdev": VolumeProfile(
        name="wdev",
        daily_write_gb=1.1,
        write_fraction=0.8,
        mean_request_pages=2,
        working_set_pages=120_000,
        zipf_theta=1.0,
        mean_entropy=3.9,
        mean_compress_ratio=0.38,
    ),
    "rsrch": VolumeProfile(
        name="rsrch",
        daily_write_gb=1.4,
        write_fraction=0.91,
        mean_request_pages=2,
        working_set_pages=110_000,
        zipf_theta=1.05,
        mean_entropy=4.0,
        mean_compress_ratio=0.41,
    ),
    "stg": VolumeProfile(
        name="stg",
        daily_write_gb=5.8,
        write_fraction=0.85,
        mean_request_pages=3,
        working_set_pages=500_000,
        zipf_theta=0.85,
        mean_entropy=4.4,
        mean_compress_ratio=0.47,
    ),
    "usr": VolumeProfile(
        name="usr",
        daily_write_gb=4.1,
        write_fraction=0.4,
        mean_request_pages=5,
        working_set_pages=900_000,
        zipf_theta=0.8,
        mean_entropy=4.8,
        mean_compress_ratio=0.55,
    ),
    "web": VolumeProfile(
        name="web",
        daily_write_gb=2.9,
        write_fraction=0.46,
        mean_request_pages=3,
        working_set_pages=400_000,
        zipf_theta=0.9,
        mean_entropy=4.5,
        mean_compress_ratio=0.5,
    ),
    "proj": VolumeProfile(
        name="proj",
        daily_write_gb=8.9,
        write_fraction=0.6,
        mean_request_pages=6,
        working_set_pages=1_200_000,
        zipf_theta=0.8,
        mean_entropy=4.7,
        mean_compress_ratio=0.52,
    ),
    "prn": VolumeProfile(
        name="prn",
        daily_write_gb=5.3,
        write_fraction=0.75,
        mean_request_pages=3,
        working_set_pages=450_000,
        zipf_theta=0.88,
        mean_entropy=4.3,
        mean_compress_ratio=0.46,
    ),
}


def msr_profile(volume: str) -> VolumeProfile:
    """Look up the profile of an MSR volume by name."""
    try:
        return MSR_VOLUMES[volume]
    except KeyError:
        raise KeyError(
            f"unknown MSR volume {volume!r}; available: {sorted(MSR_VOLUMES)}"
        ) from None


def msr_trace(
    volume: str,
    capacity_pages: int,
    duration_s: float,
    seed: int = 1,
    time_compression: float = 1.0,
) -> List[TraceRecord]:
    """Generate a synthetic trace for one MSR volume."""
    return profile_workload(
        msr_profile(volume),
        capacity_pages=capacity_pages,
        duration_s=duration_s,
        seed=seed,
        time_compression=time_compression,
    )
