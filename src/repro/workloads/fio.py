"""fio-like benchmark job specifications.

The paper measures local storage performance overhead with standard
storage benchmarks.  :func:`standard_jobs` returns the usual quartet of
sequential/random read/write jobs plus a mixed OLTP-like job; each job
knows how to generate its trace for a given device capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workloads.records import TraceOp, TraceParseError, TraceRecord
from repro.workloads.synthetic import (
    SequentialWorkload,
    UniformRandomWorkload,
    ZipfianWorkload,
)


@dataclass(frozen=True)
class FioJob:
    """One benchmark job description (a tiny subset of fio's job file)."""

    name: str
    pattern: str  # "seq" | "rand" | "zipf"
    write_fraction: float
    iops: float = 2000.0
    request_pages: int = 8
    duration_s: float = 2.0

    def __post_init__(self) -> None:
        if self.pattern not in ("seq", "rand", "zipf"):
            raise ValueError("pattern must be 'seq', 'rand' or 'zipf'")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if self.iops <= 0 or self.duration_s <= 0:
            raise ValueError("iops and duration_s must be positive")

    def generate(self, capacity_pages: int, seed: int = 7) -> List[TraceRecord]:
        """Generate the trace for this job on a device of ``capacity_pages``."""
        kwargs = dict(
            iops=self.iops,
            write_fraction=self.write_fraction,
            mean_request_pages=self.request_pages,
            seed=seed,
        )
        if self.pattern == "seq":
            workload = SequentialWorkload(capacity_pages, **kwargs)
        elif self.pattern == "rand":
            workload = UniformRandomWorkload(capacity_pages, **kwargs)
        else:
            workload = ZipfianWorkload(capacity_pages, **kwargs)
        return workload.generate(self.duration_s)


def standard_jobs(duration_s: float = 2.0) -> Dict[str, FioJob]:
    """The benchmark jobs used by the performance-overhead experiment."""
    return {
        "seq-read": FioJob("seq-read", "seq", write_fraction=0.0, duration_s=duration_s),
        "seq-write": FioJob("seq-write", "seq", write_fraction=1.0, duration_s=duration_s),
        "rand-read": FioJob("rand-read", "rand", write_fraction=0.0, duration_s=duration_s),
        "rand-write": FioJob("rand-write", "rand", write_fraction=1.0, duration_s=duration_s),
        "oltp-mix": FioJob(
            "oltp-mix", "zipf", write_fraction=0.3, request_pages=2, duration_s=duration_s
        ),
    }


#: The fio iolog ops replayed as device requests (v2 column 2 verbs).
_FIO_OPS = {
    "read": TraceOp.READ,
    "write": TraceOp.WRITE,
    "trim": TraceOp.TRIM,
    "sync": TraceOp.FLUSH,
    "datasync": TraceOp.FLUSH,
}

#: File-management verbs that carry no I/O (skipped during load).
_FIO_FILE_OPS = ("add", "open", "close")


def load_fio_iolog(
    path: str,
    *,
    page_size: int = 4096,
    strict: bool = True,
    default_interval_us: int = 100,
    max_records: Optional[int] = None,
) -> List[TraceRecord]:
    """Load an fio ``write_iolog`` file (version 2 or 3).

    Version 2 lines are ``<file> <op> [<offset> <length>]`` with no
    timestamps -- records are spaced ``default_interval_us`` apart in
    issue order.  Version 3 prefixes each line with a millisecond
    timestamp (``<ts_ms> <file> <op> [<offset> <length>]``), converted
    to microseconds relative to the first record.  File-management ops
    (``add``/``open``/``close``) carry no I/O and are skipped;
    ``sync``/``datasync`` become flushes; offsets and lengths (bytes)
    scale to ``page_size`` logical pages.

    The first line must be the ``fio version N iolog`` banner.
    ``strict`` and ``max_records`` behave like the other loaders:
    strict mode raises :class:`~repro.workloads.records.TraceParseError`
    on malformed lines, lenient mode skips them, and an empty file is
    an empty trace.
    """
    records: List[TraceRecord] = []
    version: Optional[int] = None
    origin_ms: Optional[float] = None
    sequence = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            if version is None:
                parts = text.split()
                if (
                    len(parts) == 4
                    and parts[0] == "fio"
                    and parts[1] == "version"
                    and parts[2] in ("2", "3")
                    and parts[3] == "iolog"
                ):
                    version = int(parts[2])
                    continue
                raise TraceParseError(
                    f"not an fio iolog: expected 'fio version 2|3 iolog' "
                    f"banner, got {text!r}",
                    path=path,
                    line_no=line_no,
                )
            if max_records is not None and len(records) >= max_records:
                break
            fields = text.split()
            try:
                timestamp_ms: Optional[float] = None
                if version == 3:
                    timestamp_ms = float(fields[0])
                    fields = fields[1:]
                if len(fields) < 2:
                    raise ValueError("expected '<file> <op> ...'")
                op_name = fields[1].lower()
                if op_name in _FIO_FILE_OPS:
                    continue
                if op_name not in _FIO_OPS:
                    raise ValueError(f"unknown iolog op {fields[1]!r}")
                op = _FIO_OPS[op_name]
                offset = length = 0
                if op is not TraceOp.FLUSH:
                    if len(fields) < 4:
                        raise ValueError(
                            f"op {op_name!r} needs '<offset> <length>'"
                        )
                    offset = int(fields[2])
                    length = int(fields[3])
                    if offset < 0 or length < 0:
                        raise ValueError("offset and length must be non-negative")
            except (ValueError, IndexError) as error:
                if strict:
                    raise TraceParseError(
                        f"malformed fio iolog line: {error}",
                        path=path,
                        line_no=line_no,
                    ) from None
                continue
            if timestamp_ms is not None:
                if origin_ms is None:
                    origin_ms = timestamp_ms
                timestamp_us = max(0, int((timestamp_ms - origin_ms) * 1000))
            else:
                timestamp_us = sequence * default_interval_us
            sequence += 1
            records.append(
                TraceRecord(
                    timestamp_us=timestamp_us,
                    op=op,
                    lba=offset // page_size,
                    npages=(
                        max(1, (length + page_size - 1) // page_size)
                        if op is not TraceOp.FLUSH
                        else 0
                    ),
                )
            )
    return records
