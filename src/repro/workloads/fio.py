"""fio-like benchmark job specifications.

The paper measures local storage performance overhead with standard
storage benchmarks.  :func:`standard_jobs` returns the usual quartet of
sequential/random read/write jobs plus a mixed OLTP-like job; each job
knows how to generate its trace for a given device capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.records import TraceRecord
from repro.workloads.synthetic import (
    SequentialWorkload,
    UniformRandomWorkload,
    ZipfianWorkload,
)


@dataclass(frozen=True)
class FioJob:
    """One benchmark job description (a tiny subset of fio's job file)."""

    name: str
    pattern: str  # "seq" | "rand" | "zipf"
    write_fraction: float
    iops: float = 2000.0
    request_pages: int = 8
    duration_s: float = 2.0

    def __post_init__(self) -> None:
        if self.pattern not in ("seq", "rand", "zipf"):
            raise ValueError("pattern must be 'seq', 'rand' or 'zipf'")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if self.iops <= 0 or self.duration_s <= 0:
            raise ValueError("iops and duration_s must be positive")

    def generate(self, capacity_pages: int, seed: int = 7) -> List[TraceRecord]:
        """Generate the trace for this job on a device of ``capacity_pages``."""
        kwargs = dict(
            iops=self.iops,
            write_fraction=self.write_fraction,
            mean_request_pages=self.request_pages,
            seed=seed,
        )
        if self.pattern == "seq":
            workload = SequentialWorkload(capacity_pages, **kwargs)
        elif self.pattern == "rand":
            workload = UniformRandomWorkload(capacity_pages, **kwargs)
        else:
            workload = ZipfianWorkload(capacity_pages, **kwargs)
        return workload.generate(self.duration_s)


def standard_jobs(duration_s: float = 2.0) -> Dict[str, FioJob]:
    """The benchmark jobs used by the performance-overhead experiment."""
    return {
        "seq-read": FioJob("seq-read", "seq", write_fraction=0.0, duration_s=duration_s),
        "seq-write": FioJob("seq-write", "seq", write_fraction=1.0, duration_s=duration_s),
        "rand-read": FioJob("rand-read", "rand", write_fraction=0.0, duration_s=duration_s),
        "rand-write": FioJob("rand-write", "rand", write_fraction=1.0, duration_s=duration_s),
        "oltp-mix": FioJob(
            "oltp-mix", "zipf", write_fraction=0.3, request_pages=2, duration_s=duration_s
        ),
    }
