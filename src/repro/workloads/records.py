"""Block trace records and summary statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List

from repro.compat import DATACLASS_SLOTS


class TraceParseError(ValueError):
    """A trace file line that could not be parsed.

    Carries the file path and 1-based line number so loader errors
    point at the offending line, not just the offending file.
    """

    def __init__(self, message: str, *, path: str = "", line_no: int = 0) -> None:
        location = f"{path}:{line_no}: " if path else ""
        super().__init__(f"{location}{message}")
        self.path = path
        self.line_no = line_no


class TraceOp(enum.Enum):
    """Operation types that appear in block traces."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"
    FLUSH = "flush"


@dataclass(frozen=True, **DATACLASS_SLOTS)
class TraceRecord:
    """One block-level I/O request.

    Attributes
    ----------
    timestamp_us:
        Issue time relative to the start of the trace.
    op:
        Request type.
    lba:
        Starting logical page address.
    npages:
        Number of logical pages touched.
    stream_id:
        Which process / VM issued the request (attacks and user
        workloads run as separate streams in the same trace).
    entropy:
        Content entropy of written data in bits/byte (ignored for reads).
    compress_ratio:
        Expected compression ratio of written data.
    """

    timestamp_us: int
    op: TraceOp
    lba: int
    npages: int = 1
    stream_id: int = 0
    entropy: float = 4.0
    compress_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.timestamp_us < 0:
            raise ValueError("timestamp_us must be non-negative")
        if self.lba < 0:
            raise ValueError("lba must be non-negative")
        if self.npages < 0:
            raise ValueError("npages must be non-negative")
        if not 0.0 <= self.entropy <= 8.0:
            raise ValueError("entropy must be within [0, 8]")
        if not 0.0 < self.compress_ratio <= 1.0:
            raise ValueError("compress_ratio must be within (0, 1]")

    def to_line(self) -> str:
        """Serialise the record as one CSV line (MSR-style column order)."""
        return (
            f"{self.timestamp_us},{self.op.value},{self.lba},{self.npages},"
            f"{self.stream_id},{self.entropy:.3f},{self.compress_ratio:.3f}"
        )

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        """Parse a record serialised by :meth:`to_line`."""
        fields = line.strip().split(",")
        if len(fields) != 7:
            raise ValueError(f"malformed trace line: {line!r}")
        return cls(
            timestamp_us=int(fields[0]),
            op=TraceOp(fields[1]),
            lba=int(fields[2]),
            npages=int(fields[3]),
            stream_id=int(fields[4]),
            entropy=float(fields[5]),
            compress_ratio=float(fields[6]),
        )


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a trace."""

    records: int
    reads: int
    writes: int
    trims: int
    pages_read: int
    pages_written: int
    pages_trimmed: int
    duration_us: int
    unique_lbas_written: int

    @property
    def write_fraction(self) -> float:
        total = self.reads + self.writes
        return self.writes / total if total else 0.0

    @property
    def bytes_written(self) -> int:
        """Pages written x 4 KiB (the library's canonical page size)."""
        return self.pages_written * 4096

    @property
    def overwrite_ratio(self) -> float:
        """Pages written per unique LBA written (>= 1 implies overwrites)."""
        if self.unique_lbas_written == 0:
            return 0.0
        return self.pages_written / self.unique_lbas_written

    def write_bandwidth_mb_per_day(self) -> float:
        """Average write bandwidth extrapolated to a full day."""
        if self.duration_us == 0:
            return 0.0
        bytes_per_us = self.bytes_written / self.duration_us
        return bytes_per_us * 86_400 * 1_000_000 / (1024 * 1024)


def collect_stats(records: Iterable[TraceRecord]) -> TraceStats:
    """Compute :class:`TraceStats` over any iterable of records."""
    reads = writes = trims = 0
    pages_read = pages_written = pages_trimmed = 0
    duration = 0
    count = 0
    unique_written = set()
    for record in records:
        count += 1
        duration = max(duration, record.timestamp_us)
        if record.op is TraceOp.READ:
            reads += 1
            pages_read += record.npages
        elif record.op is TraceOp.WRITE:
            writes += 1
            pages_written += record.npages
            for offset in range(record.npages):
                unique_written.add(record.lba + offset)
        elif record.op is TraceOp.TRIM:
            trims += 1
            pages_trimmed += record.npages
    return TraceStats(
        records=count,
        reads=reads,
        writes=writes,
        trims=trims,
        pages_read=pages_read,
        pages_written=pages_written,
        pages_trimmed=pages_trimmed,
        duration_us=duration,
        unique_lbas_written=len(unique_written),
    )


def merge_traces(*traces: List[TraceRecord]) -> List[TraceRecord]:
    """Merge several traces into one, ordered by timestamp (stable)."""
    merged: List[TraceRecord] = []
    for trace in traces:
        merged.extend(trace)
    merged.sort(key=lambda record: record.timestamp_us)
    return merged


def save_trace(records: Iterable[TraceRecord], path: str) -> int:
    """Write a trace to ``path`` in the line format.  Returns records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_line() + "\n")
            count += 1
    return count


def load_trace(path: str) -> List[TraceRecord]:
    """Load a trace previously written by :func:`save_trace`."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                records.append(TraceRecord.from_line(line))
    return records
