"""Fleet-scale trace replay: one trace, many devices.

The fleet runner replays a block trace against a whole fleet of
simulated devices -- RSSD next to each baseline defense -- through the
batched replay path, and emits a comparison report.  Two scenarios are
supported:

* ``mirror`` -- every device replays the full trace.  This is the
  apples-to-apples comparison mode: identical traffic, one report row
  per defense.
* ``shard``  -- the trace is split round-robin into one shard per
  device, modelling a multi-tenant deployment where a pool of devices
  absorbs the aggregate traffic of many users.

Devices are independent simulations (each owns its clock), so shards
can also be replayed on real OS threads with ``parallel=True``.  The
replays run through the same :class:`~repro.campaign.runner
.ExperimentRunner` the campaign engine uses, so both evaluation paths
share one parallelism implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.workloads.records import TraceRecord
from repro.workloads.replay import BatchTraceReplayer, ReplayResult, TraceReplayer

#: A factory returning either a bare device (``SSD``/``RSSD``) or a
#: defense object exposing ``.device`` and ``.detect()``.
FleetFactory = Callable[[], object]


def default_fleet_factories(geometry=None) -> Dict[str, FleetFactory]:
    """RSSD plus the hardware baseline defenses, ready for the fleet runner.

    Imported lazily so the workloads package keeps no hard dependency on
    the defense layer.
    """
    from repro.defenses.flashguard import FlashGuardDefense
    from repro.defenses.rssd_adapter import RSSDDefense
    from repro.defenses.ssdinsider import SSDInsiderDefense
    from repro.defenses.timessd import TimeSSDDefense
    from repro.defenses.unprotected import UnprotectedSSD
    from repro.ssd.geometry import SSDGeometry

    geometry = geometry if geometry is not None else SSDGeometry.tiny()
    return {
        "LocalSSD": lambda: UnprotectedSSD(geometry=geometry),
        "FlashGuard": lambda: FlashGuardDefense(geometry=geometry),
        "TimeSSD": lambda: TimeSSDDefense(geometry=geometry),
        "SSDInsider": lambda: SSDInsiderDefense(geometry=geometry),
        "RSSD": lambda: RSSDDefense(geometry=geometry),
    }


def shard_trace(
    records: Sequence[TraceRecord], shards: int, chunk_records: int = 256
) -> List[List[TraceRecord]]:
    """Split a trace into ``shards`` interleaved sub-traces.

    Chunks of ``chunk_records`` consecutive records are dealt round-robin
    across the shards: every shard stays statistically similar to the
    full trace (same mix, same time span) -- what a load balancer
    spreading tenants over a device pool produces -- while bursts inside
    a chunk stay contiguous, so the batched replay path keeps its
    coalescing opportunities.  ``chunk_records=1`` degenerates to plain
    per-record round-robin.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if chunk_records < 1:
        raise ValueError("chunk_records must be at least 1")
    buckets: List[List[TraceRecord]] = [[] for _ in range(shards)]
    for chunk_index, start in enumerate(range(0, len(records), chunk_records)):
        buckets[chunk_index % shards].extend(records[start : start + chunk_records])
    return buckets


@dataclass
class FleetDeviceReport:
    """Replay outcome for one device of the fleet."""

    name: str
    result: ReplayResult
    wall_seconds: float
    detected: bool
    write_amplification: float
    mean_write_latency_us: float
    retained_pages: int

    @property
    def ops_per_second(self) -> float:
        """Trace records replayed per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.result.records_replayed / self.wall_seconds


@dataclass
class FleetReport:
    """Comparison report across the whole fleet."""

    mode: str
    total_records: int
    batched: bool
    #: Whether the devices replayed concurrently (affects how per-device
    #: wall times combine into an aggregate).
    parallel: bool = False
    devices: List[FleetDeviceReport] = field(default_factory=list)

    def device(self, name: str) -> FleetDeviceReport:
        for report in self.devices:
            if report.name == name:
                return report
        raise KeyError(f"no fleet device named {name!r}")

    @property
    def total_ops_per_second(self) -> float:
        """Aggregate replay throughput across the fleet.

        Concurrent replays overlap, so their combined wall time is the
        slowest device; sequential replays add up.
        """
        if self.parallel:
            wall = max((report.wall_seconds for report in self.devices), default=0.0)
        else:
            wall = sum(report.wall_seconds for report in self.devices)
        if wall <= 0:
            return 0.0
        return sum(report.result.records_replayed for report in self.devices) / wall

    def format_table(self) -> str:
        """Render one row per device, capability-matrix style."""
        header = (
            f"{'Device':<12} {'records':>8} {'cmds':>8} {'coalesce':>9} "
            f"{'ops/s':>10} {'WA':>6} {'wr us':>8} {'retained':>9} {'det':>4}"
        )
        lines = [header, "-" * len(header)]
        for report in self.devices:
            lines.append(
                f"{report.name:<12} "
                f"{report.result.records_replayed:>8} "
                f"{report.result.device_calls:>8} "
                f"{report.result.coalescing_factor:>9.2f} "
                f"{report.ops_per_second:>10.0f} "
                f"{report.write_amplification:>6.2f} "
                f"{report.mean_write_latency_us:>8.1f} "
                f"{report.retained_pages:>9} "
                f"{'✔' if report.detected else '✗':>4}"
            )
        return "\n".join(lines)


class FleetRunner:
    """Replays traces against a fleet of devices and compares them.

    Direct construction is deprecated: :func:`repro.api.run_fleet` is
    the supported entry point (it shares this implementation).  The
    shim keeps working -- it warns once per process and behaves exactly
    as before.
    """

    def __init__(
        self,
        factories: Optional[Dict[str, FleetFactory]] = None,
        batched: bool = True,
        max_batch_pages: int = 64,
        honor_timestamps: bool = False,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        from repro._deprecation import warn_once

        warn_once("repro.workloads.fleet.FleetRunner", "repro.api.run_fleet")
        self._init(
            factories=factories,
            batched=batched,
            max_batch_pages=max_batch_pages,
            honor_timestamps=honor_timestamps,
            timer=timer,
        )

    @classmethod
    def _create(
        cls,
        factories: Optional[Dict[str, FleetFactory]] = None,
        batched: bool = True,
        max_batch_pages: int = 64,
        honor_timestamps: bool = False,
        timer: Optional[Callable[[], float]] = None,
    ) -> "FleetRunner":
        """Internal constructor for the facade path (no deprecation warning)."""
        runner = cls.__new__(cls)
        runner._init(
            factories=factories,
            batched=batched,
            max_batch_pages=max_batch_pages,
            honor_timestamps=honor_timestamps,
            timer=timer,
        )
        return runner

    def _init(
        self,
        factories: Optional[Dict[str, FleetFactory]],
        batched: bool,
        max_batch_pages: int,
        honor_timestamps: bool,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        self.factories = factories if factories is not None else default_fleet_factories()
        if not self.factories:
            raise ValueError("the fleet needs at least one device factory")
        self.batched = batched
        self.max_batch_pages = max_batch_pages
        self.honor_timestamps = honor_timestamps
        # wall_seconds is throughput *reporting*, not simulation state, so
        # the clock is injectable: tests pass a fake timer for deterministic
        # reports, and nothing inside scenario execution reads it.
        self.timer: Callable[[], float] = timer if timer is not None else time.perf_counter

    # -- single device ------------------------------------------------------

    def _replay_one(self, name: str, records: Sequence[TraceRecord]) -> FleetDeviceReport:
        target = self.factories[name]()
        device = getattr(target, "device", target)
        if self.batched:
            replayer: TraceReplayer = BatchTraceReplayer(
                device,
                honor_timestamps=self.honor_timestamps,
                max_batch_pages=self.max_batch_pages,
            )
        else:
            replayer = TraceReplayer(device, honor_timestamps=self.honor_timestamps)
        started = self.timer()
        result = replayer.replay(records)
        wall = self.timer() - started
        detect = getattr(target, "detect", None)
        metrics = device.metrics
        retained = getattr(device, "retained_pages_local", None)
        if retained is None:
            retained = device.ftl.stale_pages if hasattr(device, "ftl") else 0
        return FleetDeviceReport(
            name=name,
            result=result,
            wall_seconds=wall,
            detected=bool(detect()) if callable(detect) else False,
            write_amplification=metrics.write_amplification,
            mean_write_latency_us=metrics.latency["write"].mean_us,
            retained_pages=retained,
        )

    # -- fleet scenarios ----------------------------------------------------

    def run_mirrored(
        self, records: Sequence[TraceRecord], parallel: bool = False
    ) -> FleetReport:
        """Every device replays the full trace (comparison mode)."""
        return self._run(
            {name: records for name in self.factories}, mode="mirror", parallel=parallel
        )

    def run_sharded(
        self, records: Sequence[TraceRecord], parallel: bool = False
    ) -> FleetReport:
        """The trace is split round-robin, one shard per device."""
        shards = shard_trace(records, len(self.factories))
        assignment = {
            name: shard for name, shard in zip(self.factories, shards)
        }
        return self._run(assignment, mode="shard", parallel=parallel)

    def _run(
        self,
        assignment: Dict[str, Sequence[TraceRecord]],
        mode: str,
        parallel: bool,
    ) -> FleetReport:
        # Imported lazily: the campaign package sits above the defense and
        # attack layers, and importing it at module level would close an
        # import cycle through repro.host -> repro.workloads.
        from repro.campaign.runner import ExperimentRunner

        concurrent = parallel and len(assignment) > 1
        report = FleetReport(
            mode=mode,
            total_records=sum(len(records) for records in assignment.values()),
            batched=self.batched,
            parallel=concurrent,
        )
        # Thread backend: the factories close over live simulator objects,
        # which a process pool could not pickle.
        runner = ExperimentRunner(
            backend="thread" if concurrent else "sequential",
            jobs=len(assignment),
        )
        report.devices = runner.map(
            lambda name: self._replay_one(name, assignment[name]), list(assignment)
        )
        return report
