"""FIU (Florida International University) trace profiles.

The FIU IODedup traces cover end-user and departmental servers (mail,
web, research home directories).  As with the MSR volumes, the actual
traces cannot be redistributed, so each volume used by Figure 2 is
described by a calibrated :class:`VolumeProfile`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.workloads.records import TraceOp, TraceParseError, TraceRecord
from repro.workloads.synthetic import VolumeProfile, profile_workload

#: Per-volume statistical profiles for the FIU traces.
FIU_VOLUMES: Dict[str, VolumeProfile] = {
    "fiu-res": VolumeProfile(
        name="fiu-res",
        daily_write_gb=3.4,
        write_fraction=0.77,
        mean_request_pages=2,
        working_set_pages=300_000,
        zipf_theta=0.95,
        mean_entropy=4.2,
        mean_compress_ratio=0.44,
    ),
    "email": VolumeProfile(
        name="email",
        daily_write_gb=7.8,
        write_fraction=0.88,
        mean_request_pages=2,
        working_set_pages=700_000,
        zipf_theta=1.0,
        mean_entropy=4.9,
        mean_compress_ratio=0.58,
    ),
    "online": VolumeProfile(
        name="online",
        daily_write_gb=2.4,
        write_fraction=0.74,
        mean_request_pages=2,
        working_set_pages=220_000,
        zipf_theta=1.0,
        mean_entropy=4.3,
        mean_compress_ratio=0.45,
    ),
    "webusers": VolumeProfile(
        name="webusers",
        daily_write_gb=1.9,
        write_fraction=0.72,
        mean_request_pages=2,
        working_set_pages=180_000,
        zipf_theta=0.92,
        mean_entropy=4.4,
        mean_compress_ratio=0.47,
    ),
    "webresearch": VolumeProfile(
        name="webresearch",
        daily_write_gb=1.2,
        write_fraction=0.69,
        mean_request_pages=2,
        working_set_pages=140_000,
        zipf_theta=0.9,
        mean_entropy=4.1,
        mean_compress_ratio=0.43,
    ),
}


def fiu_profile(volume: str) -> VolumeProfile:
    """Look up the profile of an FIU volume by name."""
    try:
        return FIU_VOLUMES[volume]
    except KeyError:
        raise KeyError(
            f"unknown FIU volume {volume!r}; available: {sorted(FIU_VOLUMES)}"
        ) from None


def fiu_trace(
    volume: str,
    capacity_pages: int,
    duration_s: float,
    seed: int = 1,
    time_compression: float = 1.0,
) -> List[TraceRecord]:
    """Generate a synthetic trace for one FIU volume."""
    return profile_workload(
        fiu_profile(volume),
        capacity_pages=capacity_pages,
        duration_s=duration_s,
        seed=seed,
        time_compression=time_compression,
    )


def figure2_volumes() -> List[str]:
    """The volume labels plotted in the paper's Figure 2, in order."""
    return [
        "hm",
        "src",
        "ts",
        "wdev",
        "rsrch",
        "stg",
        "usr",
        "fiu-res",
        "email",
        "online",
        "web",
        "webusers",
    ]


#: Bytes per sector in the FIU trace format.
FIU_SECTOR_BYTES = 512

#: Minimum whitespace-separated fields of one FIU trace line.
_FIU_MIN_FIELDS = 6


def load_fiu_trace(
    path: str,
    *,
    page_size: int = 4096,
    strict: bool = True,
    max_records: Optional[int] = None,
) -> List[TraceRecord]:
    """Load a real FIU IODedup trace file.

    The published format is whitespace-separated, one request per
    line::

        timestamp pid process lba_sector size_sectors op [hash ...]

    with ``timestamp`` in (possibly fractional) seconds, addresses and
    sizes in 512-byte sectors, and ``op`` a ``W``/``R`` flag
    (case-insensitive).  Timestamps become microseconds relative to the
    first record (clamped at zero), sector addresses scale to
    ``page_size`` logical pages, and sizes round up to at least one
    page.  Trailing fields (the per-block content hashes) are ignored.

    ``strict`` and ``max_records`` behave exactly like
    :func:`~repro.workloads.msr.load_msr_trace`: strict mode raises
    :class:`~repro.workloads.records.TraceParseError` with path and
    line number, lenient mode skips malformed lines, and an empty file
    is an empty trace.
    """
    records: List[TraceRecord] = []
    origin_us: Optional[int] = None
    sectors_per_page = max(1, page_size // FIU_SECTOR_BYTES)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            if max_records is not None and len(records) >= max_records:
                break
            fields = text.split()
            try:
                if len(fields) < _FIU_MIN_FIELDS:
                    raise ValueError(
                        f"expected at least {_FIU_MIN_FIELDS} fields, "
                        f"got {len(fields)}"
                    )
                timestamp_s = float(fields[0])
                lba_sector = int(fields[3])
                size_sectors = int(fields[4])
                kind = fields[5].strip().lower()
                if kind not in ("r", "w", "read", "write"):
                    raise ValueError(f"unknown request type {fields[5]!r}")
                if lba_sector < 0 or size_sectors < 0:
                    raise ValueError("lba and size must be non-negative")
                if timestamp_s != timestamp_s or timestamp_s in (
                    float("inf"),
                    float("-inf"),
                ):
                    raise ValueError(f"non-finite timestamp {fields[0]!r}")
            except ValueError as error:
                if strict:
                    raise TraceParseError(
                        f"malformed FIU trace line: {error}",
                        path=path,
                        line_no=line_no,
                    ) from None
                continue
            timestamp_us = int(timestamp_s * 1_000_000)
            if origin_us is None:
                origin_us = timestamp_us
            records.append(
                TraceRecord(
                    timestamp_us=max(0, timestamp_us - origin_us),
                    op=TraceOp.READ if kind.startswith("r") else TraceOp.WRITE,
                    lba=lba_sector // sectors_per_page,
                    npages=max(
                        1, (size_sectors + sectors_per_page - 1) // sectors_per_page
                    ),
                )
            )
    return records
