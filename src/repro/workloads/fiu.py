"""FIU (Florida International University) trace profiles.

The FIU IODedup traces cover end-user and departmental servers (mail,
web, research home directories).  As with the MSR volumes, the actual
traces cannot be redistributed, so each volume used by Figure 2 is
described by a calibrated :class:`VolumeProfile`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.records import TraceRecord
from repro.workloads.synthetic import VolumeProfile, profile_workload

#: Per-volume statistical profiles for the FIU traces.
FIU_VOLUMES: Dict[str, VolumeProfile] = {
    "fiu-res": VolumeProfile(
        name="fiu-res",
        daily_write_gb=3.4,
        write_fraction=0.77,
        mean_request_pages=2,
        working_set_pages=300_000,
        zipf_theta=0.95,
        mean_entropy=4.2,
        mean_compress_ratio=0.44,
    ),
    "email": VolumeProfile(
        name="email",
        daily_write_gb=7.8,
        write_fraction=0.88,
        mean_request_pages=2,
        working_set_pages=700_000,
        zipf_theta=1.0,
        mean_entropy=4.9,
        mean_compress_ratio=0.58,
    ),
    "online": VolumeProfile(
        name="online",
        daily_write_gb=2.4,
        write_fraction=0.74,
        mean_request_pages=2,
        working_set_pages=220_000,
        zipf_theta=1.0,
        mean_entropy=4.3,
        mean_compress_ratio=0.45,
    ),
    "webusers": VolumeProfile(
        name="webusers",
        daily_write_gb=1.9,
        write_fraction=0.72,
        mean_request_pages=2,
        working_set_pages=180_000,
        zipf_theta=0.92,
        mean_entropy=4.4,
        mean_compress_ratio=0.47,
    ),
    "webresearch": VolumeProfile(
        name="webresearch",
        daily_write_gb=1.2,
        write_fraction=0.69,
        mean_request_pages=2,
        working_set_pages=140_000,
        zipf_theta=0.9,
        mean_entropy=4.1,
        mean_compress_ratio=0.43,
    ),
}


def fiu_profile(volume: str) -> VolumeProfile:
    """Look up the profile of an FIU volume by name."""
    try:
        return FIU_VOLUMES[volume]
    except KeyError:
        raise KeyError(
            f"unknown FIU volume {volume!r}; available: {sorted(FIU_VOLUMES)}"
        ) from None


def fiu_trace(
    volume: str,
    capacity_pages: int,
    duration_s: float,
    seed: int = 1,
    time_compression: float = 1.0,
) -> List[TraceRecord]:
    """Generate a synthetic trace for one FIU volume."""
    return profile_workload(
        fiu_profile(volume),
        capacity_pages=capacity_pages,
        duration_s=duration_s,
        seed=seed,
        time_compression=time_compression,
    )


def figure2_volumes() -> List[str]:
    """The volume labels plotted in the paper's Figure 2, in order."""
    return [
        "hm",
        "src",
        "ts",
        "wdev",
        "rsrch",
        "stg",
        "usr",
        "fiu-res",
        "email",
        "online",
        "web",
        "webusers",
    ]
