"""Workload and block-trace substrate.

The paper evaluates RSSD with MSR-Cambridge and FIU block traces plus
fio-style storage benchmarks.  Those traces are not redistributable, so
this package provides statistical generators calibrated to the
published per-volume characteristics (write intensity, read/write mix,
request sizes, working-set skew).  Retention-time results depend on the
*write volume and overwrite behaviour per day*, which the generators
reproduce per volume.

* :mod:`repro.workloads.records` -- the trace record format and stats.
* :mod:`repro.workloads.synthetic` -- generic generators (sequential,
  uniform random, Zipfian, mixed).
* :mod:`repro.workloads.msr` -- MSR-Cambridge volume profiles.
* :mod:`repro.workloads.fiu` -- FIU volume profiles.
* :mod:`repro.workloads.fio` -- fio-like benchmark job specifications.
* :mod:`repro.workloads.replay` -- replay a trace against any device
  (per-op, or batched/coalescing for high-throughput replay).
* :mod:`repro.workloads.fleet` -- replay traces against a fleet of
  devices (RSSD + baselines) and compare them.
"""

from repro.workloads.fio import FioJob, load_fio_iolog, standard_jobs
from repro.workloads.fiu import FIU_VOLUMES, fiu_profile, load_fiu_trace
from repro.workloads.fleet import (
    FleetDeviceReport,
    FleetReport,
    FleetRunner,
    default_fleet_factories,
    shard_trace,
)
from repro.workloads.msr import MSR_VOLUMES, load_msr_trace, msr_profile
from repro.workloads.records import (
    TraceParseError,
    TraceRecord,
    TraceStats,
    collect_stats,
)
from repro.workloads.replay import BatchTraceReplayer, ReplayResult, TraceReplayer
from repro.workloads.synthetic import (
    BurstyWorkload,
    MixedWorkload,
    SequentialWorkload,
    UniformRandomWorkload,
    VolumeProfile,
    ZipfianWorkload,
    profile_workload,
)

__all__ = [
    "BatchTraceReplayer",
    "BurstyWorkload",
    "FIU_VOLUMES",
    "FioJob",
    "FleetDeviceReport",
    "FleetReport",
    "FleetRunner",
    "MSR_VOLUMES",
    "MixedWorkload",
    "ReplayResult",
    "SequentialWorkload",
    "TraceParseError",
    "TraceRecord",
    "TraceReplayer",
    "TraceStats",
    "UniformRandomWorkload",
    "VolumeProfile",
    "ZipfianWorkload",
    "collect_stats",
    "default_fleet_factories",
    "fiu_profile",
    "load_fio_iolog",
    "load_fiu_trace",
    "load_msr_trace",
    "msr_profile",
    "profile_workload",
    "shard_trace",
    "standard_jobs",
]
