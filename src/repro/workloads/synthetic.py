"""Synthetic workload generators.

Each generator produces a list of :class:`TraceRecord` for a requested
duration.  Generators are deterministic given a seed so every experiment
is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.sim import US_PER_SECOND
from repro.workloads.records import TraceOp, TraceRecord


@dataclass(frozen=True)
class VolumeProfile:
    """Statistical profile of one traced storage volume.

    The per-volume numbers in :mod:`repro.workloads.msr` and
    :mod:`repro.workloads.fiu` instantiate this profile; the retention
    experiments also consume it analytically (see
    :mod:`repro.analysis.retention`).

    Attributes
    ----------
    name:
        Volume label (e.g. ``"hm"``, ``"src"``).
    daily_write_gb:
        Average gigabytes written per day.
    write_fraction:
        Fraction of requests that are writes.
    mean_request_pages:
        Mean request size in 4 KiB pages.
    working_set_pages:
        Number of distinct hot logical pages the volume touches.
    zipf_theta:
        Skew of accesses over the working set (0 = uniform).
    mean_entropy:
        Typical content entropy of written data (bits/byte).
    mean_compress_ratio:
        Typical compression ratio of written data.
    trim_fraction:
        Fraction of requests that are trims (most volumes: 0).
    """

    name: str
    daily_write_gb: float
    write_fraction: float
    mean_request_pages: int = 2
    working_set_pages: int = 65_536
    zipf_theta: float = 0.9
    mean_entropy: float = 4.2
    mean_compress_ratio: float = 0.45
    trim_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.daily_write_gb < 0:
            raise ValueError("daily_write_gb must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if self.mean_request_pages < 1:
            raise ValueError("mean_request_pages must be at least 1")
        if self.working_set_pages < 1:
            raise ValueError("working_set_pages must be at least 1")
        if not 0.0 <= self.trim_fraction <= 1.0:
            raise ValueError("trim_fraction must be within [0, 1]")

    @property
    def daily_write_bytes(self) -> float:
        return self.daily_write_gb * 1024**3

    @property
    def daily_write_pages(self) -> float:
        return self.daily_write_bytes / 4096.0


class ZipfSampler:
    """Zipf-distributed integer sampler over ``[0, population)``.

    Uses the classic power-law weights ``1 / rank**theta``; ranks are
    shuffled so hot pages are spread across the address space the way
    real volumes behave rather than clustered at LBA 0.
    """

    def __init__(self, population: int, theta: float, rng: random.Random) -> None:
        if population < 1:
            raise ValueError("population must be at least 1")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.population = population
        self.theta = theta
        self._rng = rng
        sample_size = min(population, 4096)
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(sample_size)]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._bucket_span = population / sample_size
        self._rank_to_bucket = list(range(sample_size))
        self._rng.shuffle(self._rank_to_bucket)

    def sample(self) -> int:
        """Draw one page index."""
        point = self._rng.random()
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        bucket = self._rank_to_bucket[low]
        offset = self._rng.randrange(max(1, int(self._bucket_span)))
        return min(self.population - 1, int(bucket * self._bucket_span) + offset)


class _BaseWorkload:
    """Common machinery for synthetic generators."""

    def __init__(
        self,
        capacity_pages: int,
        iops: float = 200.0,
        write_fraction: float = 0.5,
        mean_request_pages: int = 2,
        entropy: float = 4.2,
        compress_ratio: float = 0.45,
        trim_fraction: float = 0.0,
        stream_id: int = 0,
        seed: int = 1,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be at least 1")
        if iops <= 0:
            raise ValueError("iops must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if mean_request_pages < 1:
            raise ValueError("mean_request_pages must be at least 1")
        self.capacity_pages = capacity_pages
        self.iops = iops
        self.write_fraction = write_fraction
        self.mean_request_pages = mean_request_pages
        self.entropy = entropy
        self.compress_ratio = compress_ratio
        self.trim_fraction = trim_fraction
        self.stream_id = stream_id
        self.rng = random.Random(seed)

    def _next_lba(self, npages: int) -> int:
        raise NotImplementedError

    def _request_pages(self) -> int:
        # Geometric-ish size distribution around the mean.
        pages = 1 + int(self.rng.expovariate(1.0 / self.mean_request_pages))
        return max(1, min(pages, 64))

    def generate(self, duration_s: float, start_us: int = 0) -> List[TraceRecord]:
        """Generate records covering ``duration_s`` seconds of activity."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        records: List[TraceRecord] = []
        interarrival_us = US_PER_SECOND / self.iops
        timestamp = float(start_us)
        end_us = start_us + duration_s * US_PER_SECOND
        while timestamp < end_us:
            npages = self._request_pages()
            lba = self._next_lba(npages)
            roll = self.rng.random()
            if roll < self.trim_fraction:
                op = TraceOp.TRIM
            elif roll < self.trim_fraction + self.write_fraction:
                op = TraceOp.WRITE
            else:
                op = TraceOp.READ
            records.append(
                TraceRecord(
                    timestamp_us=int(timestamp),
                    op=op,
                    lba=lba,
                    npages=npages,
                    stream_id=self.stream_id,
                    entropy=min(8.0, max(0.0, self.rng.gauss(self.entropy, 0.5))),
                    compress_ratio=min(
                        1.0, max(0.05, self.rng.gauss(self.compress_ratio, 0.1))
                    ),
                )
            )
            timestamp += self.rng.expovariate(1.0 / interarrival_us)
        return records


class SequentialWorkload(_BaseWorkload):
    """Sequential streaming access (large file copies, backups, video)."""

    def __init__(self, capacity_pages: int, **kwargs) -> None:
        super().__init__(capacity_pages, **kwargs)
        self._cursor = 0

    def _next_lba(self, npages: int) -> int:
        lba = self._cursor
        if lba + npages >= self.capacity_pages:
            lba = 0
            self._cursor = 0
        self._cursor = lba + npages
        return lba


class UniformRandomWorkload(_BaseWorkload):
    """Uniformly random access over the full device."""

    def _next_lba(self, npages: int) -> int:
        return self.rng.randrange(max(1, self.capacity_pages - npages))


class ZipfianWorkload(_BaseWorkload):
    """Skewed access over a bounded working set (typical server volumes)."""

    def __init__(
        self,
        capacity_pages: int,
        working_set_pages: Optional[int] = None,
        zipf_theta: float = 0.9,
        **kwargs,
    ) -> None:
        super().__init__(capacity_pages, **kwargs)
        working_set = working_set_pages or max(1, capacity_pages // 4)
        working_set = min(working_set, capacity_pages)
        self._sampler = ZipfSampler(working_set, zipf_theta, self.rng)
        self._working_set = working_set

    def _next_lba(self, npages: int) -> int:
        lba = self._sampler.sample()
        return min(lba, max(0, self.capacity_pages - npages))


class BurstyWorkload:
    """Burst-structured traffic: runs of contiguous same-type requests.

    Real block traces arrive in phases -- a bulk ingest streams
    thousands of sequential writes, a scan issues a long run of
    sequential reads, a cleanup discards a contiguous extent.  This
    generator emits that shape directly: each burst picks an operation
    type, a length, and a starting point, then issues contiguous
    single-request records.  It is the canonical input for the batched
    replay path (contiguous same-op runs are exactly what command
    coalescing merges) and for the fleet runner's ingest scenarios.
    """

    def __init__(
        self,
        capacity_pages: int,
        write_fraction: float = 0.5,
        read_fraction: float = 0.4,
        burst_records: tuple = (64, 256),
        request_pages: int = 1,
        entropy: float = 6.5,
        compress_ratio: float = 0.9,
        interarrival_us: tuple = (5, 40),
        span_fraction: float = 0.9,
        stream_id: int = 0,
        seed: int = 1,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be at least 1")
        if not 0.0 <= write_fraction + read_fraction <= 1.0:
            raise ValueError("write_fraction + read_fraction must be within [0, 1]")
        if burst_records[0] < 1 or burst_records[1] < burst_records[0]:
            raise ValueError("burst_records must be a (lo, hi) pair with 1 <= lo <= hi")
        if not 0.0 < span_fraction <= 1.0:
            raise ValueError("span_fraction must be within (0, 1]")
        self.capacity_pages = capacity_pages
        self.write_fraction = write_fraction
        self.read_fraction = read_fraction
        self.burst_records = burst_records
        self.request_pages = max(1, request_pages)
        self.entropy = entropy
        self.compress_ratio = compress_ratio
        self.interarrival_us = interarrival_us
        self.span = max(1, int(capacity_pages * span_fraction))
        self.stream_id = stream_id
        self.rng = random.Random(seed)

    def generate(self, n_records: int, start_us: int = 0) -> List[TraceRecord]:
        """Generate exactly ``n_records`` burst-structured records."""
        if n_records < 1:
            raise ValueError("n_records must be at least 1")
        rng = self.rng
        records: List[TraceRecord] = []
        timestamp = start_us
        cursor = 0
        lo, hi = self.burst_records
        gap_lo, gap_hi = self.interarrival_us
        span = self.span
        npages = self.request_pages
        while len(records) < n_records:
            roll = rng.random()
            burst = rng.randint(lo, hi)
            if roll < self.write_fraction:
                # Sequential ingest burst at the write frontier.
                for _ in range(burst):
                    timestamp += rng.randint(gap_lo, gap_hi)
                    records.append(
                        TraceRecord(
                            timestamp_us=timestamp,
                            op=TraceOp.WRITE,
                            lba=cursor % span,
                            npages=npages,
                            stream_id=self.stream_id,
                            entropy=self.entropy,
                            compress_ratio=self.compress_ratio,
                        )
                    )
                    cursor += npages
            elif roll < self.write_fraction + self.read_fraction:
                # Sequential scan over previously written data.
                start = rng.randrange(max(1, cursor)) % span if cursor else 0
                for offset in range(burst):
                    timestamp += rng.randint(gap_lo, gap_hi)
                    records.append(
                        TraceRecord(
                            timestamp_us=timestamp,
                            op=TraceOp.READ,
                            lba=(start + offset * npages) % span,
                            npages=npages,
                            stream_id=self.stream_id,
                        )
                    )
            else:
                # Discard of a cold contiguous extent behind the frontier.
                start = max(0, (cursor % span) - rng.randint(4 * burst, 8 * burst))
                for offset in range(burst // 2 + 1):
                    timestamp += rng.randint(gap_lo, gap_hi)
                    records.append(
                        TraceRecord(
                            timestamp_us=timestamp,
                            op=TraceOp.TRIM,
                            lba=(start + offset * npages) % span,
                            npages=npages,
                            stream_id=self.stream_id,
                        )
                    )
        return records[:n_records]


class MixedWorkload:
    """Interleaves several generators into one time-ordered trace."""

    def __init__(self, components: List[_BaseWorkload]) -> None:
        if not components:
            raise ValueError("MixedWorkload needs at least one component")
        self.components = components

    def generate(self, duration_s: float, start_us: int = 0) -> List[TraceRecord]:
        merged: List[TraceRecord] = []
        for component in self.components:
            merged.extend(component.generate(duration_s, start_us=start_us))
        merged.sort(key=lambda record: record.timestamp_us)
        return merged


def profile_workload(
    profile: VolumeProfile,
    capacity_pages: int,
    duration_s: float,
    seed: int = 1,
    stream_id: int = 0,
    time_compression: float = 1.0,
) -> List[TraceRecord]:
    """Generate a trace matching a :class:`VolumeProfile`.

    ``time_compression`` > 1 squeezes a day's worth of traffic into a
    shorter simulated window while preserving total volume -- the
    retention experiments use this to avoid simulating wall-clock days
    request by request.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if time_compression <= 0:
        raise ValueError("time_compression must be positive")
    pages_per_second = profile.daily_write_pages / 86_400.0 * time_compression
    total_iops = max(
        1.0, pages_per_second / profile.mean_request_pages / max(profile.write_fraction, 0.01)
    )
    workload = ZipfianWorkload(
        capacity_pages=capacity_pages,
        working_set_pages=min(profile.working_set_pages, capacity_pages),
        zipf_theta=profile.zipf_theta,
        iops=total_iops,
        write_fraction=profile.write_fraction,
        mean_request_pages=profile.mean_request_pages,
        entropy=profile.mean_entropy,
        compress_ratio=profile.mean_compress_ratio,
        trim_fraction=profile.trim_fraction,
        stream_id=stream_id,
        seed=seed,
    )
    return workload.generate(duration_s)
