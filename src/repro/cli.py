"""Command-line interface: run any of the paper's experiments from a shell.

Examples::

    python -m repro run --spec scenario.json
    python -m repro run --defense RSSD --attack trimming-attack
    python -m repro table1 --defenses RSSD FlashGuard LocalSSD
    python -m repro figure2
    python -m repro overhead
    python -m repro lifetime --volumes hm src
    python -m repro recovery
    python -m repro forensics
    python -m repro roc --grid tiny
    python -m repro ablate --features enhanced-trim remote-offload
    python -m repro ablation-offload
    python -m repro ablation-trim
    python -m repro ablation-detection

``repro run`` is the universal entry point: one scenario, described by
a :class:`repro.api.ScenarioSpec` (from a JSON file or flags), executed
through a :class:`repro.api.Session`.  The campaign / roc / fleet
subcommands are grid- and fleet-level conveniences over the same path.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.analysis import experiments as ex
from repro.analysis.figures import render_figure2
from repro.analysis.reporting import format_table
from repro.defenses.matrix import CapabilityMatrix


def _cmd_table1(args: argparse.Namespace) -> str:
    rows = ex.run_capability_matrix(defense_names=args.defenses)
    return CapabilityMatrix.format_table(rows)


def _cmd_figure2(args: argparse.Namespace) -> str:
    rows = ex.run_retention_experiment(volumes=args.volumes)
    if args.bars:
        return render_figure2(rows)
    return format_table(
        ["volume", "LocalSSD (days)", "LocalSSD+Compr (days)", "RSSD (days)"],
        [[r.volume, r.local_days, r.local_compressed_days, r.rssd_days] for r in rows],
    )


def _cmd_overhead(args: argparse.Namespace) -> str:
    rows = ex.run_performance_overhead(duration_s=args.duration)
    return format_table(
        ["job", "write overhead %", "read overhead %"],
        [[r.job, r.write_overhead * 100, r.read_overhead * 100] for r in rows],
    )


def _cmd_lifetime(args: argparse.Namespace) -> str:
    rows = ex.run_lifetime_experiment(volumes=args.volumes)
    return format_table(
        ["volume", "baseline WAF", "RSSD WAF", "WAF overhead %", "erase overhead %"],
        [
            [r.volume, r.baseline_waf, r.rssd_waf, r.waf_overhead * 100, r.erase_overhead * 100]
            for r in rows
        ],
    )


def _cmd_recovery(args: argparse.Namespace) -> str:
    rows = ex.run_recovery_experiment()
    return format_table(
        ["attack", "victim pages", "restored", "unrecoverable", "files ok", "recovery s"],
        [
            [r.attack, r.victim_pages, r.pages_restored, r.pages_unrecoverable,
             f"{r.files_fully_recovered}/{r.files_total}", r.recovery_seconds]
            for r in rows
        ],
    )


def _cmd_forensics(args: argparse.Namespace) -> str:
    rows = ex.run_forensics_experiment()
    return format_table(
        ["background ops", "log entries", "verified", "attacker found", "reconstruction s"],
        [
            [r.background_ops, r.log_entries, r.chain_verified, r.attacker_identified,
             r.reconstruction_seconds]
            for r in rows
        ],
    )


def _cmd_ablation_offload(args: argparse.Namespace) -> str:
    from repro.ablation import run_offload_ablation

    rows = run_offload_ablation(volumes=args.volumes)
    return format_table(
        ["volume", "pages offloaded", "compression ratio", "wire MB"],
        [[r.volume, r.pages_offloaded, r.compression_ratio, r.wire_mb] for r in rows],
    )


def _cmd_ablation_trim(args: argparse.Namespace) -> str:
    from repro.ablation import run_trim_ablation

    rows = run_trim_ablation()
    return format_table(
        ["mode", "pages trimmed", "recovered fraction", "trim rejected"],
        [[r.mode, r.pages_trimmed, r.recovered_fraction, r.trim_rejected] for r in rows],
    )


def _cmd_ablation_detection(args: argparse.Namespace) -> str:
    from repro.ablation import run_detection_ablation

    rows = run_detection_ablation()
    return format_table(
        ["attack", "local detected", "remote detected", "attacker identified"],
        [[r.attack, r.local_detected, r.remote_detected, r.remote_identified_attacker] for r in rows],
    )


def _grid_with_overrides(grid, pairs) -> object:
    """Apply non-``None`` CLI override values onto a campaign grid.

    ``replace()`` re-runs ``__post_init__``, so unknown names and
    invalid sizes fail fast here instead of deep inside a pool worker.
    """
    import dataclasses

    overrides = {name: value for name, value in pairs if value is not None}
    return dataclasses.replace(grid, **overrides) if overrides else grid


def _resolve_backend(args: argparse.Namespace) -> str:
    """Pick the concrete backend for ``auto`` (process pool unless --jobs 1)."""
    if args.backend == "auto":
        return "process" if args.jobs != 1 else "sequential"
    return args.backend


def _expand_cells(grid, filters):
    """Expand a grid's cells, refusing to run a silently empty filter.

    When ``--filter`` patterns leave no cells, exits 1 listing which
    patterns matched nothing (and the grid's cell keys) instead of
    letting the run write an empty artifact that looks like success.
    """
    from repro.campaign.grid import filter_specs

    specs = grid.cells(filters)
    if filters and not specs:
        everything = grid.cells()
        unmatched = [
            pattern
            for pattern in filters
            if not filter_specs(everything, [pattern])
        ]
        lines = [
            "error: --filter matched no cells; nothing to run",
            "unmatched patterns: " + ", ".join(unmatched),
            "grid cells:",
        ]
        lines += [f"  {spec.cell_key}" for spec in everything]
        raise SystemExit("\n".join(lines))
    return specs


def _persistence_from_args(args):
    """Build the cache / journal / resume trio from the shared CLI flags.

    ``--cache-dir DIR`` turns on the content-addressed result cache
    (``DIR/cache/``) and the checkpoint journal (``DIR/journal.jsonl``);
    ``--resume DIR`` reuses an existing directory's journal, re-running
    only the cells it is missing; ``--no-cache`` keeps the journal but
    skips cache lookups and stores.  ``REPRO_CRASH_AFTER_CELLS=N`` arms
    the fault-injection hook that hard-exits after the N-th executed
    cell (the kill/resume test harness and CI ``resume-smoke`` job).
    """
    import os

    from repro.campaign.cache import ResultCache
    from repro.campaign.checkpoint import CheckpointJournal, crash_hook_from_env

    resume = bool(getattr(args, "resume", None))
    state_dir = getattr(args, "resume", None) or getattr(args, "cache_dir", None)
    cache = journal = None
    if state_dir:
        os.makedirs(state_dir, exist_ok=True)
        if not getattr(args, "no_cache", False):
            cache = ResultCache(os.path.join(state_dir, "cache"))
        journal = CheckpointJournal(os.path.join(state_dir, "journal.jsonl"))
    return cache, journal, resume, crash_hook_from_env()


def _persistence_sections(sections, artifact, cache, resume) -> None:
    """Append the cache/resume accounting lines to the report."""
    if cache is not None and artifact.cache_stats is not None:
        sections.append(f"cache: {artifact.cache_stats.summary()} ({cache.root})")
    if resume:
        resumed = getattr(artifact, "cells_resumed", None)
        if resumed is not None:
            sections.append(f"resume: {resumed} cells restored from the journal")


def _save_and_check_baseline(sections, artifact, args, journal=None) -> str:
    """Shared artifact tail of `campaign` / `roc`: --output and --baseline.

    Appends the save/compare outcome to ``sections`` and returns the
    joined output; a baseline mismatch prints everything and exits 1.
    When a campaign checkpoint ``journal`` is active, the output is
    written through the streaming artifact writer (reading cells back
    from the journal, sorted, one at a time) -- same bytes, bounded
    memory.
    """
    if args.output:
        from repro.campaign.results import CampaignArtifact

        if journal is not None and isinstance(artifact, CampaignArtifact):
            from repro.campaign.results import write_artifact_stream

            write_artifact_stream(
                args.output,
                artifact.campaign_seed,
                artifact.grid,
                journal.iter_payloads_sorted(keys=set(artifact.cell_keys)),
                version=artifact.version,
            )
        else:
            artifact.save(args.output)
        sections.append(f"artifact written to {args.output}")
    if args.baseline:
        baseline = type(artifact).load(args.baseline)
        differences = artifact.diff(baseline)
        if differences:
            sections.append(
                f"BASELINE MISMATCH vs {args.baseline}:\n" + "\n".join(differences)
            )
            print("\n\n".join(sections))
            raise SystemExit(1)
        sections.append(f"baseline match: {args.baseline}")
    return "\n\n".join(sections)


def _cmd_campaign(args: argparse.Namespace) -> str:
    from repro.analysis.reporting import (
        render_campaign_capability,
        render_campaign_forensics,
        render_campaign_overhead,
    )
    from repro.api import run_campaign
    from repro.campaign import CampaignGrid

    grid = _grid_with_overrides(
        CampaignGrid.tiny() if args.grid == "tiny" else CampaignGrid(),
        (
            ("defenses", args.defenses),
            ("attacks", args.attacks),
            ("workloads", args.workloads),
            ("device_configs", args.device_configs),
            ("seed", args.seed),
            ("victim_files", args.victim_files),
        ),
    )
    backend = _resolve_backend(args)
    specs = _expand_cells(grid, args.filter)
    cache, journal, resume, after_cell = _persistence_from_args(args)
    artifact = run_campaign(
        grid,
        backend=backend,
        jobs=args.jobs,
        specs=specs,
        cache=cache,
        journal=journal,
        resume=resume,
        after_cell=after_cell,
    )

    sections = [
        f"Campaign: {len(artifact.cells)} cells, seed {grid.seed}, "
        f"backend {backend}, jobs {args.jobs or 'auto'}",
        render_campaign_capability(artifact),
        render_campaign_overhead(artifact),
    ]
    forensics_table = render_campaign_forensics(artifact)
    if forensics_table:
        sections.append(forensics_table)
    _persistence_sections(sections, artifact, cache, resume)
    return _save_and_check_baseline(sections, artifact, args, journal=journal)


def _cmd_roc(args: argparse.Namespace) -> str:
    from repro.analysis.reporting import (
        render_detection_quality,
        render_detection_roc,
    )
    from repro.api import run_roc
    from repro.campaign import CampaignGrid

    grid = _grid_with_overrides(
        CampaignGrid.evasion_tiny()
        if args.grid == "tiny"
        else CampaignGrid.evasion_full(),
        (
            ("defenses", args.defenses),
            ("attacks", args.attacks),
            ("seed", args.seed),
            ("victim_files", args.victim_files),
        ),
    )
    backend = _resolve_backend(args)
    specs = _expand_cells(grid, args.filter)
    cache, journal, resume, after_cell = _persistence_from_args(args)
    artifact = run_roc(
        grid,
        backend=backend,
        jobs=args.jobs,
        specs=specs,
        cache=cache,
        journal=journal,
        resume=resume,
        after_cell=after_cell,
    )

    sections = [
        f"Detection quality: {len(artifact.curves)} ROC curves over "
        f"{len({c.cell_key for c in artifact.curves})} cells, seed {grid.seed}, "
        f"backend {backend}, jobs {args.jobs or 'auto'}",
        render_detection_quality(artifact),
    ]
    if not args.quality_only:
        sections.append(render_detection_roc(artifact))
    _persistence_sections(sections, artifact, cache, resume)
    return _save_and_check_baseline(sections, artifact, args)


def _cmd_ablate(args: argparse.Namespace) -> str:
    import dataclasses

    from repro.ablation import (
        AblationError,
        AblationStudy,
        calculate_metrics,
        render_impact_csv,
        render_impact_markdown,
        render_impact_table,
    )
    from repro.analysis.reporting import render_ablation_summary

    study = AblationStudy.tiny()
    base = study.base_spec
    overrides = {
        name: value
        for name, value in (
            ("defense", args.defense),
            ("workload", args.workload),
            ("device", args.device),
            ("victim_files", args.victim_files),
            ("user_activity_hours", args.hours),
            ("seed", args.seed),
        )
        if value is not None
    }
    try:
        if overrides:
            base = dataclasses.replace(base, **overrides)
        study = AblationStudy(
            base_spec=base,
            features=tuple(args.features) if args.features else study.features,
            mode=args.mode,
            attacks=tuple(args.attacks) if args.attacks else study.attacks,
        )
    except (AblationError, KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    backend = _resolve_backend(args)
    cache, journal, resume, after_cell = _persistence_from_args(args)
    artifact = study.run(
        backend=backend,
        jobs=args.jobs,
        cache=cache,
        journal=journal,
        resume=resume,
        after_cell=after_cell,
    )
    impacts = calculate_metrics(artifact)

    sections = [
        f"Ablation: {len(artifact.cells)} cells "
        f"({len(study.configs)} configs x {len(study.attacks)} attacks, "
        f"mode {study.mode}), seed {base.seed}, "
        f"backend {backend}, jobs {args.jobs or 'auto'}",
        render_ablation_summary(artifact),
    ]
    if impacts:
        sections.append(render_impact_table(impacts))
    _persistence_sections(sections, artifact, cache, resume)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(render_impact_csv(impacts) + "\n")
        sections.append(f"impact CSV written to {args.csv}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(render_impact_markdown(impacts) + "\n")
        sections.append(f"impact markdown written to {args.markdown}")
    return _save_and_check_baseline(sections, artifact, args)


def _cmd_recover(args: argparse.Namespace) -> str:
    from repro.analysis.reporting import render_attack_timeline
    from repro.campaign.engine import execute_cell_scenario
    from repro.campaign.grid import CampaignGrid
    from repro.forensics import reference_image
    from repro.sim import format_duration

    if args.apply and args.to is None:
        raise SystemExit("--apply only makes sense with --to (nothing was applied)")
    grid = CampaignGrid.tiny() if args.grid == "tiny" else CampaignGrid()
    matches = [spec for spec in grid.cells() if spec.cell_key == args.cell]
    if not matches:
        known = "\n  ".join(spec.cell_key for spec in grid.cells())
        raise SystemExit(f"unknown cell {args.cell!r}; cells in this grid:\n  {known}")
    scenario = execute_cell_scenario(matches[0])
    defense = scenario.defense
    if not hasattr(defense, "forensics_engine"):
        raise SystemExit(
            f"cell {args.cell!r} runs on {defense.name}, which has no evidence "
            "chain; forensics and recovery need an RSSD cell"
        )
    engine = defense.forensics_engine()
    outcome = scenario.attack_outcome
    sections = [
        f"Scenario: {args.cell} (campaign seed {grid.seed}); attack ran "
        f"{format_duration(outcome.start_us)} -> {format_duration(outcome.end_us)}"
    ]

    if args.list_snapshots:
        snapshots = engine.snapshots()
        sections.append(
            format_table(
                ["kind", "segment", "last seq", "timestamp", "entries", "offloaded"],
                [
                    [
                        snap.kind,
                        snap.segment_id if snap.segment_id is not None else "-",
                        snap.last_sequence,
                        format_duration(snap.timestamp_us),
                        snap.entries,
                        snap.offloaded,
                    ]
                    for snap in snapshots
                ],
            )
        )
        sections.append(
            f"{len(snapshots)} recoverable points; any timestamp up to "
            f"{format_duration(engine.timeline.events[-1].timestamp_us)} is a "
            "valid --to target" if engine.timeline.events else "empty log"
        )
        return "\n\n".join(sections)

    if args.verify_chain:
        status = engine.verify_chain()
        sections.append(
            "\n".join(
                [
                    f"entries:            {status.total_entries}",
                    f"sealed segments:    {status.sealed_segments} "
                    f"({status.offloaded_segments} offloaded)",
                    f"chain verified:     {status.chain_verified}",
                    f"remote time order:  {status.remote_time_order_ok}",
                    f"trustworthy:        {status.trustworthy}",
                ]
            )
        )
        errors = status.errors()
        if errors:
            sections.append("INTEGRITY ERRORS:\n" + "\n".join(errors))
            print("\n\n".join(sections))
            raise SystemExit(1)
        return "\n\n".join(sections)

    if args.to is not None:
        if args.to == "pre-attack":
            target_us = outcome.start_us
        else:
            try:
                target_us = int(args.to)
            except ValueError:
                raise SystemExit(
                    f"--to must be an integer microsecond timestamp or "
                    f"'pre-attack', got {args.to!r}"
                )
        image = engine.recover_to(target_us, simulate_fetch=True)
        report = engine.investigate(image=image)
        sections.append(render_attack_timeline(report, engine.timeline))
        reference = reference_image(scenario.recorder.ops, target_us)
        # Same bar as campaign recovery_exact: every page hash-verified
        # AND the image equal to the independent trace-prefix replay.
        exact = image.is_exact and image.matches(reference)
        if exact:
            verdict = "MATCHES exactly"
        elif image.matches(reference):
            verdict = (
                f"matches by coverage only ({len(image.unverified)} pages "
                "recovered without a pinned hash)"
            )
        else:
            verdict = "DIVERGES"
        sections.append(
            f"reference replay of the trace prefix (<= t={target_us}): "
            f"{len(reference)} pages; rebuilt image {verdict}"
        )
        sections.append(
            f"recovery transfer time: {format_duration(int(image.duration_us))}"
        )
        if not exact:
            if args.apply:
                sections.append(
                    "refusing --apply: the rebuilt image is not exact; the "
                    "device was left untouched"
                )
            print("\n\n".join(sections))
            raise SystemExit(1)
        if args.apply:
            written = engine.recovery().apply(image)
            sections.append(f"applied: {written} pages written back to the device")
        return "\n\n".join(sections)

    # Default action: the full forensic report (canonical JSON + summary).
    report = engine.investigate()
    sections.append(render_attack_timeline(report, engine.timeline))
    if args.json:
        sections.append(report.to_json().rstrip("\n"))
    return "\n\n".join(sections)


def _expand_spec_paths(values: List[str]) -> List[str]:
    """Expand ``--spec`` operands: files stay, directories become their
    sorted ``*.json`` members.

    A directory with no ``*.json`` files exits 1 -- running nothing
    while claiming success would hide a mistyped path.
    """
    paths: List[str] = []
    for value in values:
        candidate = Path(value)
        if candidate.is_dir():
            matches = sorted(candidate.glob("*.json"))
            if not matches:
                raise SystemExit(
                    f"error: --spec directory {value} contains no *.json files"
                )
            paths.extend(str(match) for match in matches)
        else:
            paths.append(value)
    return paths


def _spec_with_overrides(spec, args: argparse.Namespace):
    """Apply explicit flag overrides onto a loaded spec.

    Anything that changes the scenario key or the master seed also
    drops the stored per-stream seeds, so they re-derive from
    ``(seed, scenario_key)`` -- otherwise the run would silently reuse
    seeds resolved for a different scenario.
    """
    import dataclasses

    overrides = {
        name: value
        for name, value in (
            ("defense", args.defense),
            ("attack", args.attack),
            ("workload", args.workload),
            ("device", args.device),
            ("victim_files", args.victim_files),
            ("seed", args.seed),
        )
        if value is not None and value != getattr(spec, name)
    }
    if overrides.keys() & {"defense", "attack", "workload", "device", "seed"}:
        overrides.update(env_seed=None, workload_seed=None, attack_seed=None)
    return dataclasses.replace(spec, **overrides) if overrides else spec


def _render_session(spec, session, result) -> str:
    """The ``repro run`` report block for one executed scenario."""
    from repro.sim import format_duration

    outcome = result.attack_outcome
    lines = [
        f"Scenario: {spec.scenario_key} (spec hash {spec.spec_hash()[:16]})",
        f"attack ran {format_duration(outcome.start_us)} -> "
        f"{format_duration(outcome.end_us)}, "
        f"{len(outcome.victim_lbas)} victim pages",
        f"recovery:  {result.recovery_fraction:.3f} "
        f"({result.pages_recovered} pages) -> "
        f"{'DEFENDED' if result.defended else 'COMPROMISED'}",
        f"detected:  {result.detected}"
        + (
            f" (latency {format_duration(result.detection_latency_us)})"
            if result.detection_latency_us is not None
            else ""
        ),
        f"overhead:  WA {result.write_amplification:.2f}, "
        f"mean write {result.mean_write_latency_us:.1f}us, "
        f"{result.host_commands} host commands",
    ]
    if result.forensic_pattern is not None:
        lines.append(
            f"forensics: pattern {result.forensic_pattern}, "
            f"exact recovery {result.recovery_exact}, "
            f"blast radius {result.blast_radius_pages} pages"
        )
    counts = ", ".join(
        f"{name}={count}" for name, count in sorted(session.bus.published_counts.items())
    )
    lines.append(f"events:    {counts}")
    return "\n".join(lines)


def _run_pack(args: argparse.Namespace) -> str:
    """The ``repro run --pack`` path: replay a pack against its pins."""
    import json

    from repro.api.spec import SpecValidationError
    from repro.scenarios import ScenarioPack, run_pack

    try:
        pack = ScenarioPack.load(args.pack)
    except (SpecValidationError, ValueError, OSError) as exc:
        raise SystemExit(f"error: cannot load pack {args.pack}: {exc}")
    report = run_pack(pack)
    header = f"Pack: {pack.name} ({len(pack.entries)} entries)"
    if pack.description:
        header += f" -- {pack.description}"
    lines = [header]
    for entry in report.entries:
        status = "ok  " if entry.ok else "FAIL"
        hash_head = str(entry.payload.get("spec_hash", ""))[:16]
        suffix = f" (hash {hash_head})" if hash_head else ""
        lines.append(f"  [{status}] {entry.name}{suffix}")
        for failure in entry.failures:
            lines.append(f"         {failure}")
    passed = sum(1 for entry in report.entries if entry.ok)
    lines.append(f"{passed}/{len(report.entries)} entries ok")
    sections = ["\n".join(lines)]
    if args.output:
        payloads = {entry.name: entry.payload for entry in report.entries}
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payloads, indent=2, sort_keys=True) + "\n")
        sections.append(f"results written to {args.output}")
    output = "\n\n".join(sections)
    if not report.ok:
        print(output)
        raise SystemExit(1)
    return output


def _cmd_run(args: argparse.Namespace) -> str:
    import json

    from repro.api import ScenarioSpec, Session, SpecValidationError

    if args.pack:
        if args.spec:
            raise SystemExit("error: --pack and --spec are mutually exclusive")
        return _run_pack(args)

    spec_paths = _expand_spec_paths(args.spec) if args.spec else []
    if args.emit_spec and len(spec_paths) > 1:
        raise SystemExit(
            f"error: --emit-spec needs exactly one spec, got {len(spec_paths)}"
        )

    if len(spec_paths) > 1:
        # Multi-spec mode: run every spec, report each, exit 1 if any
        # fails (to load, to validate, or to execute).
        sections = []
        results = {}
        failed = []
        for path in spec_paths:
            try:
                spec = _spec_with_overrides(ScenarioSpec.load(path), args)
                session = Session(spec)
                result = session.run()
            except (SpecValidationError, KeyError, ValueError, OSError) as exc:
                failed.append(path)
                sections.append(f"[FAIL] {path}: {exc}")
                continue
            results[path] = result.to_dict()
            sections.append(f"[ok] {path}\n{_render_session(spec, session, result)}")
        sections.append(
            f"{len(spec_paths) - len(failed)}/{len(spec_paths)} specs ok"
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(results, indent=2, sort_keys=True) + "\n")
            sections.append(f"results written to {args.output}")
        output = "\n\n".join(sections)
        if failed:
            print(output)
            raise SystemExit(1)
        return output

    if spec_paths:
        spec = _spec_with_overrides(ScenarioSpec.load(spec_paths[0]), args)
    else:
        spec = ScenarioSpec(
            defense=args.defense or "RSSD",
            attack=args.attack or "classic",
            workload=args.workload or "office-edit",
            device=args.device or "tiny",
            **{
                name: value
                for name, value in (
                    ("victim_files", args.victim_files),
                    ("seed", args.seed),
                )
                if value is not None
            },
        )
    if args.emit_spec:
        spec.save(args.emit_spec)
    if args.no_run:
        sections = [f"validated spec for {spec.scenario_key} (hash {spec.spec_hash()[:16]})"]
        if args.emit_spec:
            sections.append(f"spec written to {args.emit_spec}")
        return "; ".join(sections)

    session = Session(spec)
    result = session.run()
    sections = [_render_session(spec, session, result)]
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
        sections.append(f"result written to {args.output}")
    return "\n\n".join(sections)


def _cmd_fuzz(args: argparse.Namespace) -> str:
    import os

    from repro.scenarios import (
        CoverageLedger,
        FuzzConfig,
        PackEntry,
        ScenarioPack,
        run_fuzz,
    )

    config = FuzzConfig.tiny() if args.space == "tiny" else FuzzConfig()
    seed = args.seed if args.seed is not None else 7
    ledger = None
    if args.coverage_ledger and os.path.exists(args.coverage_ledger):
        ledger = CoverageLedger.load(args.coverage_ledger)
    backend = _resolve_backend(args)
    cache, journal, resume, after_cell = _persistence_from_args(args)
    artifact = run_fuzz(
        seed,
        args.budget,
        config,
        backend=backend,
        jobs=args.jobs,
        ledger=ledger,
        toward_uncovered=args.toward_uncovered,
        cache=cache,
        journal=journal,
        resume=resume,
        after_cell=after_cell,
    )

    universe = config.universe()
    merged = ledger if ledger is not None else CoverageLedger()
    merged.merge(artifact.ledger)
    sections = [
        f"Fuzz: seed {seed}, budget {args.budget}, space {args.space}, "
        f"backend {backend}, jobs {args.jobs or 'auto'}"
        + (", toward-uncovered" if args.toward_uncovered else ""),
        f"specs: {len(artifact.spec_hashes)} drawn, {len(artifact.cells)} "
        f"distinct executed; rejected draws {artifact.stats['rejected']}, "
        f"guided redraws {artifact.stats['guided_redraws']}",
        format_table(
            ["scenario", "region", "recovery", "defended", "detected", "status"],
            [
                [
                    cell.scenario_key,
                    cell.region,
                    cell.recovery_fraction,
                    cell.defended,
                    cell.detected,
                    cell.status,
                ]
                for cell in artifact.cells
            ],
        ),
        f"coverage: this run {len(artifact.ledger.covered_regions)} regions; "
        f"ledger {len(merged.uncovered(universe))} of {len(universe)} regions "
        f"uncovered ({merged.coverage_fraction(universe):.0%} covered)",
    ]
    if args.coverage_ledger:
        merged.save(args.coverage_ledger)
        sections.append(f"coverage ledger written to {args.coverage_ledger}")
    if args.emit_pack:
        entries = tuple(
            PackEntry(
                name=f"fuzz-{seed}-{cell.spec_hash[:12]}",
                spec=cell.spec,
                expect={
                    "recovery_fraction": cell.recovery_fraction,
                    "defended": cell.defended,
                    "detected": cell.detected,
                    "oplog_hash": cell.oplog_hash,
                    "status": cell.status,
                },
            )
            for cell in artifact.cells
        )
        pack = ScenarioPack(
            name=f"fuzz-seed{seed}",
            description=(
                f"Frozen fuzz session: seed {seed}, budget {args.budget}, "
                f"space {args.space}"
            ),
            entries=entries,
        )
        pack.save(args.emit_pack)
        sections.append(
            f"pack with {len(entries)} pinned entries written to {args.emit_pack}"
        )
    _persistence_sections(sections, artifact, cache, resume)
    return _save_and_check_baseline(sections, artifact, args)


def _cmd_fleet(args: argparse.Namespace) -> str:
    from repro.api import run_fleet
    from repro.ssd.geometry import SSDGeometry
    from repro.workloads.fleet import default_fleet_factories
    from repro.workloads.synthetic import BurstyWorkload

    # The small geometry gives the fleet enough capacity that retention-
    # pinning baselines survive the ingest instead of exhausting flash.
    geometry = SSDGeometry.small()
    seed = args.seed if args.seed is not None else 11
    trace = BurstyWorkload(
        capacity_pages=geometry.exported_pages, seed=seed
    ).generate(args.records)
    report = run_fleet(
        trace,
        factories=default_fleet_factories(geometry=geometry),
        mode="shard" if args.shard else "mirror",
        parallel=args.parallel,
        batched=not args.per_op,
        max_batch_pages=args.max_batch_pages,
        honor_timestamps=False,
    )
    header = (
        f"Fleet replay ({report.mode}, {'batched' if report.batched else 'per-op'}): "
        f"{report.total_records:,} records, "
        f"{report.total_ops_per_second:,.0f} ops/s aggregate\n"
    )
    return header + report.format_table()


def _cmd_lint(args: argparse.Namespace) -> str:
    from repro.lint import (
        BaselineError,
        LayerModel,
        LintConfig,
        apply_baseline,
        lint_paths,
        load_baseline,
        prune_baseline,
        write_baseline,
        write_fingerprint,
    )
    from repro.lint.runner import build_contexts, discover_files

    config = LintConfig(
        layers_path=args.layers,
        fingerprint_path=args.schema_fingerprint,
        check_schemas=not args.no_schema_check,
    )
    paths = [Path(p) for p in args.paths]

    if args.write_schema_fingerprint:
        model = LayerModel.load(args.layers)
        files = discover_files(paths)
        by_module, _, _ = build_contexts(files, model, Path.cwd())
        target = write_fingerprint(by_module, model, args.schema_fingerprint)
        return f"wrote schema fingerprint: {target}"

    findings = lint_paths(paths, config)

    if args.write_baseline:
        if args.baseline is None:
            raise SystemExit("--write-baseline requires --baseline FILE")
        try:
            write_baseline(args.baseline, findings)
        except BaselineError as exc:
            raise SystemExit(f"error: {exc}")
        return f"wrote baseline with {len(findings)} entries: {args.baseline}"

    suppressed: list = []
    stale: list = []
    if args.baseline is not None and args.baseline.exists():
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            raise SystemExit(f"error: {exc}")
        result = apply_baseline(findings, baseline)
        findings, suppressed, stale = result.new, result.suppressed, result.stale
        if args.prune_baseline and stale:
            removed = prune_baseline(args.baseline, result)
            stale_note = f"pruned {removed} stale baseline entries"
            stale = []
        else:
            stale_note = None
    else:
        stale_note = None

    if args.fmt == "json":
        report = json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "suppressed": len(suppressed),
                "stale": stale,
            },
            indent=2,
            sort_keys=True,
        )
    else:
        lines = [f.format() for f in findings]
        for entry in stale:
            lines.append(
                f"stale baseline entry: {entry['rule']} {entry['path']}: "
                f"{entry['message']} (use --prune-baseline to drop)"
            )
        if stale_note:
            lines.append(stale_note)
        summary = (
            f"{len(findings)} finding(s)"
            + (f", {len(suppressed)} suppressed" if suppressed else "")
        )
        lines.append(summary)
        report = "\n".join(lines)

    if findings:
        print(report)
        raise SystemExit(1)
    return report


def _parent_parsers() -> dict:
    """Shared parent parsers for flags repeated across subcommands.

    ``campaign`` / ``roc`` / ``run`` / ``fleet`` used to each declare
    their own copies of ``--jobs`` / ``--backend`` / ``--output`` /
    ``--seed``; declaring them once keeps help texts, defaults and types
    in a single place.
    """
    seed = argparse.ArgumentParser(add_help=False)
    seed.add_argument(
        "--seed", type=int, default=None,
        help="master seed (every derived per-scenario seed follows from it)",
    )
    parallel = argparse.ArgumentParser(add_help=False)
    parallel.add_argument(
        "--jobs", type=int, default=1, help="parallel workers (0 = all cores)"
    )
    parallel.add_argument(
        "--backend", choices=["auto", "sequential", "thread", "process"], default="auto",
        help="execution backend (auto = process pool when --jobs != 1)",
    )
    output = argparse.ArgumentParser(add_help=False)
    output.add_argument(
        "--output", default=None, help="write the result/artifact JSON here"
    )
    artifact = argparse.ArgumentParser(add_help=False)
    artifact.add_argument(
        "--baseline", default=None, metavar="ARTIFACT",
        help="diff against a stored artifact; exit 1 on any difference",
    )
    artifact.add_argument(
        "--filter", nargs="*", default=None, metavar="PATTERN",
        help="only run cells whose defense/attack/workload/device key matches",
    )
    cache = argparse.ArgumentParser(add_help=False)
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache + checkpoint journal directory; "
             "re-runs of unchanged cells are served from the store",
    )
    cache.add_argument(
        "--no-cache", action="store_true",
        help="with --cache-dir/--resume: keep the checkpoint journal but "
             "skip cache lookups and stores",
    )
    cache.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume a killed sweep from DIR's checkpoint journal; only the "
             "missing cells run, and the final artifact is byte-identical "
             "to an uninterrupted run",
    )
    return {
        "seed": seed,
        "parallel": parallel,
        "output": output,
        "artifact": artifact,
        "cache": cache,
    }


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the RSSD paper's experiments from the command line.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parents = _parent_parsers()
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        parents=[parents["seed"], parents["output"]],
        help="Run one scenario through the repro.api Session facade",
        description=(
            "The universal entry point: execute one ScenarioSpec -- loaded "
            "from JSON (--spec) or assembled from flags -- through a "
            "repro.api.Session, and report recovery, detection, overhead, "
            "forensics and the typed event counts."
        ),
    )
    run.add_argument(
        "--spec", action="append", default=None, metavar="SPEC_JSON",
        help="scenario spec JSON (as written by --emit-spec or "
             "ScenarioSpec.save); repeatable, and a directory runs every "
             "*.json inside it -- with several specs, exit 1 if any fails",
    )
    run.add_argument(
        "--pack", default=None, metavar="PACK_JSON",
        help="run every entry of a scenario pack (plain and compound "
             "scenarios) against its pinned expectations; exit 1 on any "
             "mismatch",
    )
    run.add_argument(
        "--defense", default=None,
        help="defense registry name (default RSSD; overrides --spec)",
    )
    run.add_argument(
        "--attack", default=None,
        help="attack registry name (default classic; overrides --spec)",
    )
    run.add_argument(
        "--workload", default=None,
        help="workload registry name (default office-edit; overrides --spec)",
    )
    run.add_argument(
        "--device", default=None,
        help="device-config registry name (default tiny; overrides --spec)",
    )
    run.add_argument("--victim-files", type=int, default=None)
    run.add_argument(
        "--emit-spec", default=None, metavar="SPEC_JSON",
        help="write the (seed-resolved) spec JSON here before running",
    )
    run.add_argument(
        "--no-run", action="store_true",
        help="validate (and with --emit-spec, write) the spec without executing it",
    )
    run.set_defaults(func=_cmd_run)

    fuzz = subparsers.add_parser(
        "fuzz",
        parents=[
            parents["seed"], parents["parallel"], parents["output"],
            parents["cache"],
        ],
        help="Coverage-guided scenario fuzzing over the spec space",
        description=(
            "Walk the registry-validated ScenarioSpec space with a "
            "deterministic seeded fuzzer: every spec is reproducible from "
            "(seed, index), executed cells ride the campaign result cache "
            "and checkpoint journal, and a mergeable coverage ledger tracks "
            "which scenario regions have ever run.  --toward-uncovered "
            "steers new draws at regions the ledger has not seen, and "
            "--emit-pack freezes the session into a runnable scenario pack."
        ),
    )
    fuzz.add_argument(
        "--budget", type=int, default=16,
        help="walk length: how many spec indices to generate and run",
    )
    fuzz.add_argument(
        "--space", choices=["tiny", "full"], default="tiny",
        help="candidate pools (tiny = the CI smoke slice, full = every registry)",
    )
    fuzz.add_argument(
        "--coverage-ledger", default=None, metavar="LEDGER_JSON",
        help="persistent coverage ledger: loaded if present, merged with "
             "this session's coverage, and written back",
    )
    fuzz.add_argument(
        "--toward-uncovered", action="store_true",
        help="redraw specs whose region the ledger already covers "
             "(bounded, deterministic)",
    )
    fuzz.add_argument(
        "--emit-pack", default=None, metavar="PACK_JSON",
        help="freeze the executed cells into a scenario pack with pinned "
             "expectations (runnable via repro run --pack)",
    )
    fuzz.add_argument(
        "--baseline", default=None, metavar="ARTIFACT",
        help="diff against a stored fuzz artifact; exit 1 on any difference",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    table1 = subparsers.add_parser("table1", help="Table 1: defense capability matrix")
    table1.add_argument("--defenses", nargs="*", default=None, help="subset of defense names")
    table1.set_defaults(func=_cmd_table1)

    figure2 = subparsers.add_parser("figure2", help="Figure 2: retention time per volume")
    figure2.add_argument("--volumes", nargs="*", default=None)
    figure2.add_argument("--bars", action="store_true", help="render ASCII bars instead of a table")
    figure2.set_defaults(func=_cmd_figure2)

    overhead = subparsers.add_parser("overhead", help="P1: storage performance overhead")
    overhead.add_argument("--duration", type=float, default=0.5, help="seconds of benchmark workload")
    overhead.set_defaults(func=_cmd_overhead)

    lifetime = subparsers.add_parser("lifetime", help="P2: device lifetime impact")
    lifetime.add_argument("--volumes", nargs="*", default=None)
    lifetime.set_defaults(func=_cmd_lifetime)

    recovery = subparsers.add_parser("recovery", help="P3: recovery after every attack")
    recovery.set_defaults(func=_cmd_recovery)

    forensics = subparsers.add_parser("forensics", help="P4: evidence-chain construction")
    forensics.set_defaults(func=_cmd_forensics)

    ablation_offload = subparsers.add_parser("ablation-offload", help="A1: offload path ablation")
    ablation_offload.add_argument("--volumes", nargs="*", default=None)
    ablation_offload.set_defaults(func=_cmd_ablation_offload)

    ablation_trim = subparsers.add_parser("ablation-trim", help="A2: enhanced trim ablation")
    ablation_trim.set_defaults(func=_cmd_ablation_trim)

    ablation_detection = subparsers.add_parser(
        "ablation-detection", help="A3: local vs offloaded detection"
    )
    ablation_detection.set_defaults(func=_cmd_ablation_detection)

    ablate = subparsers.add_parser(
        "ablate",
        parents=[
            parents["seed"], parents["parallel"], parents["output"], parents["cache"]
        ],
        help="Component-level ablation sweep over one scenario",
    )
    ablate.add_argument(
        "--features", nargs="*", default=None,
        help="defense features to sweep (default: the tiny study's three)",
    )
    ablate.add_argument(
        "--mode", choices=["drop-one", "power-set"], default="drop-one",
        help="sweep shape: full + one config per feature, or every subset",
    )
    ablate.add_argument(
        "--attacks", nargs="*", default=None,
        help="attack axis (default: classic and trimming-attack)",
    )
    ablate.add_argument("--defense", default=None, help="defense under ablation")
    ablate.add_argument("--workload", default=None, help="pre-attack workload name")
    ablate.add_argument("--device", default=None, help="device geometry name")
    ablate.add_argument("--victim-files", type=int, default=None)
    ablate.add_argument(
        "--hours", type=float, default=None, help="pre-attack activity hours"
    )
    ablate.add_argument(
        "--baseline", default=None, metavar="ARTIFACT",
        help="diff against a stored ablation artifact; exit 1 on any difference",
    )
    ablate.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the per-feature impact table as CSV here",
    )
    ablate.add_argument(
        "--markdown", default=None, metavar="PATH",
        help="write the per-feature impact table as markdown here",
    )
    ablate.set_defaults(func=_cmd_ablate)

    campaign = subparsers.add_parser(
        "campaign",
        parents=[
            parents["seed"], parents["parallel"], parents["output"],
            parents["artifact"], parents["cache"],
        ],
        help="Run a defense x attack x workload campaign grid",
        description=(
            "Execute a declarative scenario grid through the campaign engine "
            "with per-cell deterministic seeding, optionally in parallel, and "
            "emit/compare versioned JSON artifacts."
        ),
    )
    campaign.add_argument(
        "--grid", choices=["default", "tiny"], default="default",
        help="base grid (tiny = the CI smoke / golden-run grid)",
    )
    campaign.add_argument("--defenses", nargs="*", default=None, help="override defense rows")
    campaign.add_argument("--attacks", nargs="*", default=None, help="override attack columns")
    campaign.add_argument("--workloads", nargs="*", default=None, help="override workload generators")
    campaign.add_argument("--device-configs", nargs="*", default=None, help="override device geometries")
    campaign.add_argument("--victim-files", type=int, default=None)
    campaign.set_defaults(func=_cmd_campaign)

    roc = subparsers.add_parser(
        "roc",
        parents=[
            parents["seed"], parents["parallel"], parents["output"],
            parents["artifact"], parents["cache"],
        ],
        help="Detection-quality (ROC) sweep of evasive attacks vs defenses",
        description=(
            "Run the adaptive-attack grid with labelled-operation capture and "
            "sweep every detector primitive (absolute entropy, entropy jump, "
            "sliding window) across its thresholds, emitting per-cell ROC "
            "points and AUC / operating-point quality tables.  Deterministic "
            "and bit-identical across backends; artifacts diff like campaign "
            "artifacts."
        ),
    )
    roc.add_argument(
        "--grid", choices=["tiny", "full"], default="tiny",
        help="evasion grid (tiny = the CI smoke / golden-run grid)",
    )
    roc.add_argument("--defenses", nargs="*", default=None, help="override defense rows")
    roc.add_argument("--attacks", nargs="*", default=None, help="override attack columns")
    roc.add_argument("--victim-files", type=int, default=None)
    roc.add_argument(
        "--quality-only", action="store_true",
        help="print only the AUC / operating-point summary, not every ROC point",
    )
    roc.set_defaults(func=_cmd_roc)

    recover = subparsers.add_parser(
        "recover",
        help="Post-attack forensics and point-in-time recovery on a campaign cell",
        description=(
            "Re-execute one campaign cell deterministically, then analyze the "
            "attack from the device's hardware evidence chain: list recoverable "
            "snapshots, verify the chain, classify the attack, and rebuild the "
            "device image as of any timestamp with exact recovered/lost page "
            "sets (checked against an independent replay of the recorded "
            "command stream)."
        ),
    )
    recover.add_argument(
        "--cell", default="RSSD/classic/office-edit/tiny",
        help="campaign cell key to investigate (defense/attack/workload/device)",
    )
    recover.add_argument(
        "--grid", choices=["default", "tiny"], default="tiny",
        help="grid the cell comes from (tiny = the golden-run grid)",
    )
    recover_mode = recover.add_mutually_exclusive_group()
    recover_mode.add_argument(
        "--list-snapshots", action="store_true",
        help="list the recoverable points in the evidence chain and exit",
    )
    recover_mode.add_argument(
        "--verify-chain", action="store_true",
        help="verify the hash chain and remote arrival order; exit 1 on failure",
    )
    recover_mode.add_argument(
        "--to", default=None, metavar="TIMESTAMP",
        help="rebuild the device image as of this microsecond timestamp "
             "(or 'pre-attack'); exit 1 if the rebuild is not exact",
    )
    recover.add_argument(
        "--apply", action="store_true",
        help="with --to: write the rebuilt image back to the device",
    )
    recover.add_argument(
        "--json", action="store_true",
        help="append the canonical JSON forensic report to the output",
    )
    recover.set_defaults(func=_cmd_recover)

    fleet = subparsers.add_parser(
        "fleet",
        parents=[parents["seed"]],
        help="Replay a synthetic trace against a fleet of devices",
    )
    fleet.add_argument("--records", type=int, default=20_000, help="trace length")
    fleet.add_argument("--shard", action="store_true", help="split the trace across devices")
    fleet.add_argument("--parallel", action="store_true", help="replay devices on threads")
    fleet.add_argument("--per-op", action="store_true", help="use the per-op replay loop")
    fleet.add_argument("--max-batch-pages", type=int, default=128)
    fleet.set_defaults(func=_cmd_fleet)

    lint = subparsers.add_parser(
        "lint",
        help="AST-based invariant checks: determinism, layering, "
        "serialization, concurrency",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="report format",
    )
    lint.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file suppressing known findings (add-only)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="create the baseline from current findings (refuses to overwrite)",
    )
    lint.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline without stale entries",
    )
    lint.add_argument(
        "--layers", type=Path, default=None,
        help="layer table override (default: packaged layers.toml)",
    )
    lint.add_argument(
        "--schema-fingerprint", type=Path, default=None,
        help="pinned schema fingerprint override",
    )
    lint.add_argument(
        "--write-schema-fingerprint", action="store_true",
        help="regenerate the pinned schema fingerprint and exit",
    )
    lint.add_argument(
        "--no-schema-check", action="store_true",
        help="skip the project-level schema fingerprint comparison",
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments, run the experiment, print its table."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = args.func(args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
