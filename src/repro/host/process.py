"""Process model: each process owns an I/O stream and a privilege level."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workloads.records import TraceRecord


class Privilege(enum.Enum):
    """Host privilege levels relevant to the threat model."""

    USER = "user"
    ADMIN = "admin"
    KERNEL = "kernel"


@dataclass
class IOProcess:
    """A host process that issues block I/O.

    ``stream_id`` tags every request the process issues so device-side
    observers (and the evidence chain) can attribute operations, even
    though the device itself does not trust the tag for security
    decisions.
    """

    pid: int
    name: str
    stream_id: int
    privilege: Privilege = Privilege.USER
    is_malicious: bool = False

    def records_with_stream(self, records: List[TraceRecord]) -> List[TraceRecord]:
        """Re-tag trace records with this process's stream id."""
        return [
            TraceRecord(
                timestamp_us=record.timestamp_us,
                op=record.op,
                lba=record.lba,
                npages=record.npages,
                stream_id=self.stream_id,
                entropy=record.entropy,
                compress_ratio=record.compress_ratio,
            )
            for record in records
        ]


class ProcessRegistry:
    """Tracks the processes participating in a scenario."""

    def __init__(self) -> None:
        self._processes: Dict[int, IOProcess] = {}
        self._pid_counter = itertools.count(100)
        self._stream_counter = itertools.count(1)

    def spawn(
        self,
        name: str,
        privilege: Privilege = Privilege.USER,
        is_malicious: bool = False,
    ) -> IOProcess:
        """Create and register a new process."""
        pid = next(self._pid_counter)
        process = IOProcess(
            pid=pid,
            name=name,
            stream_id=next(self._stream_counter),
            privilege=privilege,
            is_malicious=is_malicious,
        )
        self._processes[pid] = process
        return process

    def kill(self, pid: int) -> Optional[IOProcess]:
        """Remove a process (ransomware killing a backup agent, say)."""
        return self._processes.pop(pid, None)

    def by_stream(self, stream_id: int) -> Optional[IOProcess]:
        """Look up the process that owns a stream id."""
        for process in self._processes.values():
            if process.stream_id == stream_id:
                return process
        return None

    def malicious_streams(self) -> List[int]:
        """Stream ids owned by known-malicious processes (ground truth)."""
        return [
            process.stream_id
            for process in self._processes.values()
            if process.is_malicious
        ]

    def __len__(self) -> int:
        return len(self._processes)

    def processes(self) -> List[IOProcess]:
        return list(self._processes.values())
