"""Host-side substrate.

The threat model assumes the OS is *not* trusted: ransomware can run
with administrator privilege, kill software defenses and issue any
block command.  This package models exactly the host pieces the attack
scenarios need:

* :mod:`repro.host.blockdev` -- a byte-addressable block layer over the
  SSD's page interface.
* :mod:`repro.host.filesystem` -- a small extent-based file system so
  ransomware samples can attack real files with real bytes and the
  recovery experiments can check content round-trips.
* :mod:`repro.host.process` -- processes that own I/O streams.
* :mod:`repro.host.scheduler` -- interleaving of multiple streams into
  the single command queue the device sees.
"""

from repro.host.blockdev import HostBlockDevice
from repro.host.filesystem import FileRecord, FileSystemError, SimpleFS
from repro.host.process import IOProcess, ProcessRegistry
from repro.host.scheduler import IOScheduler

__all__ = [
    "FileRecord",
    "FileSystemError",
    "HostBlockDevice",
    "IOProcess",
    "IOScheduler",
    "ProcessRegistry",
    "SimpleFS",
]
