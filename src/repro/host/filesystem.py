"""A small extent-based file system.

Ransomware encrypts *files*; recovery is judged by whether file
contents survive.  ``SimpleFS`` keeps each file in one contiguous
extent of logical pages on the underlying block device, stores real
bytes, and exposes exactly the operations the attack models need:
create, read, overwrite (in place or via rename), delete, and
"secure delete" via trim.

The file system's metadata (the extent table) lives in host memory, as
it would in the page cache; the paper's threat model lets ransomware
corrupt it freely -- RSSD's recovery works from flash-level history,
not from file-system metadata.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.host.blockdev import HostBlockDevice


class FileSystemError(Exception):
    """Raised for file-system level failures (no space, missing file, ...)."""


@dataclass
class FileRecord:
    """Metadata of one file: name, extent and logical size."""

    name: str
    start_lba: int
    reserved_pages: int
    size_bytes: int

    @property
    def end_lba(self) -> int:
        """First LBA past the file's extent."""
        return self.start_lba + self.reserved_pages


class SimpleFS:
    """An extent-based file system over a :class:`HostBlockDevice`."""

    def __init__(self, blockdev: HostBlockDevice, reserved_pages: int = 0) -> None:
        self.blockdev = blockdev
        self._files: Dict[str, FileRecord] = {}
        # Simple bump allocator with a free list of reclaimed extents.
        self._next_free_lba = reserved_pages
        self._free_extents: List[tuple] = []

    # -- namespace ---------------------------------------------------------

    def list_files(self) -> List[str]:
        """Names of all live files, sorted."""
        return sorted(self._files)

    def exists(self, name: str) -> bool:
        return name in self._files

    def stat(self, name: str) -> FileRecord:
        """Return the metadata record of ``name``."""
        record = self._files.get(name)
        if record is None:
            raise FileSystemError(f"no such file: {name}")
        return record

    @property
    def file_count(self) -> int:
        return len(self._files)

    @property
    def used_pages(self) -> int:
        return sum(record.reserved_pages for record in self._files.values())

    # -- allocation ---------------------------------------------------------

    def _pages_for(self, size_bytes: int) -> int:
        page_size = self.blockdev.page_size
        return max(1, (size_bytes + page_size - 1) // page_size)

    def _allocate_extent(self, pages: int) -> int:
        for index, (start, length) in enumerate(self._free_extents):
            if length >= pages:
                remaining = (start + pages, length - pages)
                if remaining[1] > 0:
                    self._free_extents[index] = remaining
                else:
                    self._free_extents.pop(index)
                return start
        start = self._next_free_lba
        if start + pages > self.blockdev.capacity_pages:
            raise FileSystemError(
                f"no space: need {pages} pages, device has "
                f"{self.blockdev.capacity_pages - start} unallocated"
            )
        self._next_free_lba += pages
        return start

    def free_pages_remaining(self) -> int:
        """Pages still allocatable (bump region + free-list extents)."""
        free_listed = sum(length for _, length in self._free_extents)
        return (self.blockdev.capacity_pages - self._next_free_lba) + free_listed

    # -- file operations -----------------------------------------------------

    def create_file(self, name: str, data: bytes) -> FileRecord:
        """Create ``name`` with ``data`` as its content."""
        if name in self._files:
            raise FileSystemError(f"file already exists: {name}")
        if not data:
            raise FileSystemError("cannot create an empty file")
        pages = self._pages_for(len(data))
        start_lba = self._allocate_extent(pages)
        self.blockdev.write_bytes(start_lba * self.blockdev.page_size, data)
        record = FileRecord(
            name=name, start_lba=start_lba, reserved_pages=pages, size_bytes=len(data)
        )
        self._files[name] = record
        return record

    def read_file(self, name: str) -> bytes:
        """Read the full content of ``name``."""
        record = self.stat(name)
        return self.blockdev.read_bytes(
            record.start_lba * self.blockdev.page_size, record.size_bytes
        )

    def overwrite_file(self, name: str, data: bytes) -> FileRecord:
        """Overwrite ``name`` in place (the classic ransomware pattern).

        If the new content needs more pages than the original extent the
        file is reallocated, which is how in-place encryption of a file
        that grows (header + ciphertext) behaves.
        """
        record = self.stat(name)
        pages_needed = self._pages_for(len(data))
        if pages_needed > record.reserved_pages:
            self.delete_file(name, trim=False)
            return self.create_file(name, data)
        self.blockdev.write_bytes(record.start_lba * self.blockdev.page_size, data)
        record.size_bytes = len(data)
        return record

    def delete_file(self, name: str, trim: bool = False) -> FileRecord:
        """Delete ``name``; with ``trim=True`` also trim its extent.

        Trimming tells the SSD the pages are dead -- on an unmodified
        device this physically erases the data soon after, which is the
        lever the trimming attack pulls.
        """
        record = self._files.pop(name, None)
        if record is None:
            raise FileSystemError(f"no such file: {name}")
        if trim:
            self.blockdev.trim_pages(record.start_lba, record.reserved_pages)
        self._free_extents.append((record.start_lba, record.reserved_pages))
        return record

    def rename_file(self, old: str, new: str) -> FileRecord:
        """Rename ``old`` to ``new`` (metadata only)."""
        if new in self._files:
            raise FileSystemError(f"target already exists: {new}")
        record = self._files.pop(old, None)
        if record is None:
            raise FileSystemError(f"no such file: {old}")
        record.name = new
        self._files[new] = record
        return record

    def file_lbas(self, name: str) -> List[int]:
        """The logical pages backing ``name`` (used by forensic backtracking)."""
        record = self.stat(name)
        used_pages = self._pages_for(record.size_bytes)
        return list(range(record.start_lba, record.start_lba + used_pages))

    # -- bulk helpers used by scenarios -----------------------------------------

    def populate(
        self, count: int, file_size_bytes: int, prefix: str = "doc", seed: int = 11
    ) -> List[str]:
        """Create ``count`` files of compressible pseudo-text content."""
        rng = random.Random(seed)
        words = [
            b"storage", b"flash", b"report", b"quarter", b"meeting", b"budget",
            b"photo", b"draft", b"model", b"results", b"backup", b"invoice",
        ]
        names = []
        for index in range(count):
            chunks = []
            size = 0
            while size < file_size_bytes:
                word = rng.choice(words) + b" "
                chunks.append(word)
                size += len(word)
            data = b"".join(chunks)[:file_size_bytes]
            name = f"{prefix}_{index:05d}.txt"
            self.create_file(name, data)
            names.append(name)
        return names
