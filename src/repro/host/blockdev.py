"""Host block layer: byte-addressable helpers over the SSD page interface."""

from __future__ import annotations

from typing import List

from repro.ssd.device import SSD
from repro.ssd.flash import PageContent


class HostBlockDevice:
    """A thin byte-addressable wrapper around an :class:`SSD`.

    The file system and ransomware samples operate on byte ranges; the
    wrapper handles page alignment and read-modify-write of partial
    pages.  All accesses carry a ``stream_id`` so the device observers
    can attribute operations to a process.
    """

    def __init__(self, ssd: SSD, stream_id: int = 0) -> None:
        self.ssd = ssd
        self.stream_id = stream_id

    @property
    def page_size(self) -> int:
        return self.ssd.page_size

    @property
    def capacity_bytes(self) -> int:
        return self.ssd.capacity_pages * self.ssd.page_size

    @property
    def capacity_pages(self) -> int:
        return self.ssd.capacity_pages

    def _split_range(self, offset: int, length: int) -> List[tuple]:
        """Split a byte range into (lba, page_offset, chunk_length) pieces."""
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        if offset + length > self.capacity_bytes:
            raise ValueError("byte range exceeds device capacity")
        pieces = []
        position = offset
        remaining = length
        while remaining > 0:
            lba = position // self.page_size
            page_offset = position % self.page_size
            chunk = min(remaining, self.page_size - page_offset)
            pieces.append((lba, page_offset, chunk))
            position += chunk
            remaining -= chunk
        return pieces

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at byte ``offset``."""
        output = bytearray()
        for lba, page_offset, chunk in self._split_range(offset, length):
            page = self.ssd.read(lba, 1, stream_id=self.stream_id)
            output.extend(page[page_offset : page_offset + chunk])
        return bytes(output)

    def write_bytes(self, offset: int, data: bytes) -> int:
        """Write ``data`` starting at byte ``offset``.  Returns bytes written."""
        if not data:
            return 0
        for lba, page_offset, chunk in self._split_range(offset, len(data)):
            start = (lba * self.page_size + page_offset) - offset
            piece = data[start : start + chunk]
            if page_offset == 0 and chunk == self.page_size:
                page_bytes = piece
            else:
                existing = self.ssd.read(lba, 1, stream_id=self.stream_id)
                page_bytes = (
                    existing[:page_offset] + piece + existing[page_offset + chunk :]
                )
            self.ssd.write(
                lba, PageContent.from_bytes(page_bytes), stream_id=self.stream_id
            )
        return len(data)

    def write_pages(self, lba: int, contents: List[PageContent]) -> None:
        """Write whole pages (used by trace-driven callers)."""
        self.ssd.write(lba, contents, stream_id=self.stream_id)

    def trim_pages(self, lba: int, npages: int) -> None:
        """Issue a trim for ``npages`` pages starting at ``lba``."""
        self.ssd.trim(lba, npages, stream_id=self.stream_id)

    def trim_bytes(self, offset: int, length: int) -> None:
        """Trim every page fully covered by the byte range."""
        first_page = (offset + self.page_size - 1) // self.page_size
        last_page = (offset + length) // self.page_size
        if last_page > first_page:
            self.ssd.trim(first_page, last_page - first_page, stream_id=self.stream_id)

    def flush(self) -> None:
        self.ssd.flush(stream_id=self.stream_id)
