"""I/O scheduler: merges multiple process streams into one device queue.

The timing attack hides its encryption writes *between* normal user
requests; the scheduler is what produces that interleaved view at the
device, so detectors only ever see the merged stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.workloads.records import TraceRecord


@dataclass(frozen=True)
class StreamShare:
    """Fraction of the merged queue each stream contributed."""

    stream_id: int
    records: int
    fraction: float


class IOScheduler:
    """Timestamp-ordered merge of several per-process traces."""

    def __init__(self, max_queue_depth: int = 128) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.max_queue_depth = max_queue_depth

    def merge(self, streams: Sequence[Iterable[TraceRecord]]) -> List[TraceRecord]:
        """Merge per-stream traces into one queue ordered by timestamp.

        Ties are broken by stream order so the merge is deterministic.
        """
        merged: List[TraceRecord] = []
        for stream_index, stream in enumerate(streams):
            for record in stream:
                merged.append((record.timestamp_us, stream_index, record))  # type: ignore[arg-type]
        merged.sort(key=lambda item: (item[0], item[1]))  # type: ignore[index]
        return [item[2] for item in merged]  # type: ignore[index]

    def shares(self, records: Sequence[TraceRecord]) -> Dict[int, StreamShare]:
        """Per-stream share of a merged queue."""
        counts: Dict[int, int] = {}
        for record in records:
            counts[record.stream_id] = counts.get(record.stream_id, 0) + 1
        total = len(records)
        return {
            stream_id: StreamShare(
                stream_id=stream_id,
                records=count,
                fraction=count / total if total else 0.0,
            )
            for stream_id, count in counts.items()
        }

    def interleave_ratio(
        self, records: Sequence[TraceRecord], suspect_stream: int
    ) -> float:
        """How "hidden" a suspect stream is: fraction of its requests that are
        immediately preceded and followed by another stream's requests."""
        hidden = 0
        suspect_positions = [
            index for index, record in enumerate(records) if record.stream_id == suspect_stream
        ]
        for position in suspect_positions:
            before_ok = position == 0 or records[position - 1].stream_id != suspect_stream
            after_ok = (
                position == len(records) - 1
                or records[position + 1].stream_id != suspect_stream
            )
            if before_ok and after_ok:
                hidden += 1
        return hidden / len(suspect_positions) if suspect_positions else 0.0
