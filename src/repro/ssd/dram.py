"""On-board DRAM write buffer model.

Commodity SSDs acknowledge writes from an on-board DRAM buffer and
destage them to flash asynchronously, which is why host-visible write
latency sits far below the NAND program time.  The buffer here is a
token-bucket style model: while the buffer has headroom, host writes
complete at DRAM latency; when the buffer is saturated (sustained write
bursts), host writes are exposed to the full program latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WriteBufferStats:
    """Counters kept by the write buffer."""

    buffered_writes: int = 0
    exposed_writes: int = 0
    drained_pages: int = 0


class WriteBuffer:
    """A fixed-capacity page buffer that drains at the flash program rate."""

    def __init__(self, capacity_pages: int = 256, drain_rate_pages_per_ms: float = 4.0) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be at least 1")
        if drain_rate_pages_per_ms <= 0:
            raise ValueError("drain_rate_pages_per_ms must be positive")
        self.capacity_pages = capacity_pages
        self.drain_rate_pages_per_ms = drain_rate_pages_per_ms
        self.stats = WriteBufferStats()
        self._occupancy = 0.0
        self._last_update_us = 0

    @property
    def occupancy(self) -> float:
        """Current number of pages waiting in the buffer (fractional)."""
        return self._occupancy

    def _drain(self, now_us: int) -> None:
        elapsed_ms = max(0, now_us - self._last_update_us) / 1000.0
        drained = min(self._occupancy, elapsed_ms * self.drain_rate_pages_per_ms)
        self._occupancy -= drained
        self.stats.drained_pages += int(drained)
        self._last_update_us = now_us

    def admit(self, now_us: int, pages: int = 1) -> bool:
        """Try to absorb ``pages`` host pages at time ``now_us``.

        Returns ``True`` if the write is absorbed at DRAM latency, or
        ``False`` if the buffer is saturated and the host must wait for
        flash programming.
        """
        if pages < 1:
            raise ValueError("pages must be at least 1")
        self._drain(now_us)
        if self._occupancy + pages <= self.capacity_pages:
            self._occupancy += pages
            self.stats.buffered_writes += 1
            return True
        self.stats.exposed_writes += 1
        return False

    def admit_run(self, now_us: int, count: int) -> int:
        """Admit ``count`` single-page writes at ``now_us`` in one call.

        Returns how many of them were absorbed at DRAM latency.  The
        result and the statistics are identical to calling
        :meth:`admit` ``count`` times at the same timestamp: the first
        ``floor(capacity - occupancy)`` calls succeed (each raising the
        occupancy by one page) and every later call is rejected, since
        no draining happens between same-timestamp calls.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        self._drain(now_us)
        headroom = self.capacity_pages - self._occupancy
        admitted = min(count, max(0, int(headroom)))
        self._occupancy += admitted
        self.stats.buffered_writes += admitted
        self.stats.exposed_writes += count - admitted
        return admitted

    def flush(self, now_us: int) -> int:
        """Force the buffer empty (host FLUSH).  Returns pages destaged."""
        self._drain(now_us)
        destaged = int(self._occupancy)
        self.stats.drained_pages += destaged
        self._occupancy = 0.0
        self._last_update_us = now_us
        return destaged
