"""Wear-leveling statistics and static wear-leveling helper.

Dynamic wear leveling (always open the least-worn free block) lives in
:class:`repro.ssd.ftl.BlockAllocator`.  This module adds the wear
statistics the lifetime experiments report and a static wear-leveling
pass that migrates cold data out of under-erased blocks when the wear
spread grows too large.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ssd.flash import FlashArray, PageState
from repro.ssd.ftl import FTL


@dataclass(frozen=True)
class WearStats:
    """Summary of erase-count distribution across the array."""

    total_erases: int
    mean_erases: float
    min_erases: int
    max_erases: int

    @property
    def spread(self) -> int:
        """Difference between the most- and least-worn blocks."""
        return self.max_erases - self.min_erases

    def lifetime_consumed(self, endurance_cycles: int = 3000) -> float:
        """Fraction of rated P/E cycles consumed by the *most worn* block."""
        if endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive")
        return self.max_erases / endurance_cycles


def compute_wear_stats(flash: FlashArray) -> WearStats:
    """Collect wear statistics for the whole array.

    Reads the array's incrementally maintained counters, so it is cheap
    enough to consult on every host command.
    """
    total = flash.total_erases()
    blocks = flash.block_count
    return WearStats(
        total_erases=total,
        mean_erases=total / blocks if blocks else 0.0,
        min_erases=flash.min_erase_count(),
        max_erases=flash.max_erase_count(),
    )


class StaticWearLeveler:
    """Migrates cold valid data out of the least-worn blocks.

    Triggered when the erase-count spread exceeds ``threshold``.  The
    migration itself reuses the FTL's relocation path, so retained stale
    pages are never destroyed by wear leveling.
    """

    def __init__(self, threshold: int = 20, max_blocks_per_pass: int = 2) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if max_blocks_per_pass < 1:
            raise ValueError("max_blocks_per_pass must be at least 1")
        self.threshold = threshold
        self.max_blocks_per_pass = max_blocks_per_pass
        self.migrations = 0

    def should_run(self, flash: FlashArray) -> bool:
        """True when the wear spread exceeds the configured threshold."""
        return flash.max_erase_count() - flash.min_erase_count() >= self.threshold

    def run(self, ftl: FTL) -> int:
        """Migrate valid pages out of the coldest blocks.  Returns pages moved."""
        if not self.should_run(ftl.flash):
            return 0
        moved = 0
        candidates = sorted(
            ftl.closed_blocks(), key=lambda block: block.erase_count
        )[: self.max_blocks_per_pass]
        for block in candidates:
            for page in list(block.iter_pages(PageState.VALID)):
                ftl.relocate_valid_page(page.ppn)
                moved += 1
                self.migrations += 1
        return moved
