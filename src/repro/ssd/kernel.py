"""The array-backed simulation kernel.

:class:`SimKernel` is the single authoritative store for the simulator's
hot state, laid out as contiguous struct-of-arrays (numpy) instead of
the dict-of-dataclass representation the first five PRs grew up on:

* **flash plane** -- per physical page: state, logical owner, program
  timestamp, entropy, and the :class:`~repro.ssd.flash.PageContent`
  descriptor (an object column, so content identity survives the
  refactor bit-for-bit);
* **block plane** -- per erase block: program frontier, valid/invalid
  counters, erase counts and the newest program timestamp;
* **mapping plane** -- per logical page: the LPN→PPN translation as an
  int array with ``-1`` as the "unmapped" sentinel (the validity mask
  that replaced ``Dict[int, PageMetadata]``), the write timestamp and
  the monotonically increasing version counter.

The object layers above (:class:`~repro.ssd.flash.FlashArray`,
:class:`~repro.ssd.ftl.FTL`, :class:`~repro.ssd.gc.GarbageCollector`)
are views and orchestration over these arrays: scalar accessors keep the
historical per-op semantics and exceptions, while the batch surfaces
(``write_run`` / ``read_run`` / ``trim_run``) operate on whole array
slices per call.  Nothing observable moved: page placement, counters,
timestamps and content identity are exactly what the dict-backed
implementation produced, which the batch-equivalence and differential
property suites pin down.

Invariants the kernel maintains (and the test suite cross-checks
against full page walks):

* ``block_next_off[b]`` pages of block ``b`` are programmed; pages are
  programmed strictly in order inside a block (NAND constraint);
* ``block_valid[b] + block_invalid[b] <= block_next_off[b]`` with
  equality outside the erased state;
* ``map_ppn[lpn] >= 0`` implies ``page_state[map_ppn[lpn]] == VALID``
  and ``page_lpn[map_ppn[lpn]] == lpn``;
* ``map_version`` never decreases, and survives trims (a re-written
  page continues the version sequence, which recovery relies on).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ssd.geometry import SSDGeometry

#: Page-state encoding used across every array consumer.  The values
#: are stable (persisted nowhere, but relied on by bincount-style
#: accounting) -- keep in sync with :class:`repro.ssd.flash.PageState`.
PAGE_FREE = 0
PAGE_VALID = 1
PAGE_INVALID = 2

#: Sentinel for "no logical owner" / "unmapped" in int columns.
NO_LPN = -1
NO_PPN = -1


class SimKernel:
    """Struct-of-arrays state for one simulated SSD.

    The kernel is deliberately mechanism-free: it enforces nothing and
    decides nothing.  The NAND state machine lives in
    :class:`~repro.ssd.flash.FlashArray`, placement and retention in the
    FTL/GC -- the kernel only gives them a layout they can operate on in
    bulk.
    """

    __slots__ = (
        "geometry",
        "page_state",
        "page_lpn",
        "page_ts",
        "page_entropy",
        "page_content",
        "block_next_off",
        "block_valid",
        "block_invalid",
        "block_erase",
        "block_last_ts",
        "map_ppn",
        "map_written_us",
        "map_version",
        "mapped_count",
        "payload_pages",
    )

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        n_pages = geometry.total_pages
        n_blocks = geometry.total_blocks
        n_logical = geometry.exported_pages

        # -- flash plane (per physical page) ------------------------------
        self.page_state = np.zeros(n_pages, dtype=np.int8)
        self.page_lpn = np.full(n_pages, NO_LPN, dtype=np.int64)
        self.page_ts = np.zeros(n_pages, dtype=np.int64)
        #: Entropy of the stored content in bits/byte; 0 for free pages.
        #: Kept as a parallel float column so retention / detection
        #: accounting can aggregate without touching the object column.
        self.page_entropy = np.zeros(n_pages, dtype=np.float64)
        #: The PageContent descriptor programmed into each page (None
        #: for free pages).  An object column: identity is preserved so
        #: reads return exactly the object that was written.
        self.page_content = np.empty(n_pages, dtype=object)

        # -- block plane (per erase block) --------------------------------
        self.block_next_off = np.zeros(n_blocks, dtype=np.int32)
        self.block_valid = np.zeros(n_blocks, dtype=np.int32)
        self.block_invalid = np.zeros(n_blocks, dtype=np.int32)
        self.block_erase = np.zeros(n_blocks, dtype=np.int64)
        self.block_last_ts = np.zeros(n_blocks, dtype=np.int64)

        # -- mapping plane (per logical page) ------------------------------
        self.map_ppn = np.full(n_logical, NO_PPN, dtype=np.int64)
        self.map_written_us = np.zeros(n_logical, dtype=np.int64)
        #: Per-LPN version counter.  Increments on every write and is
        #: NOT reset by trim: version numbers identify page generations
        #: across the whole device lifetime (recovery depends on this).
        self.map_version = np.zeros(n_logical, dtype=np.int64)

        #: Live logical pages (cheap ``mapped_pages`` without a scan).
        self.mapped_count = 0
        #: Programmed pages currently carrying a real ``payload``.  The
        #: read fast path returns zero-filled buffers without touching
        #: the object column while this is 0 (descriptor-only traces).
        self.payload_pages = 0

    # -- scalar flash transitions -----------------------------------------
    #
    # Used by the per-op path and by GC relocation; validation stays in
    # FlashArray so errors keep their historical types and messages.

    def program_page(self, block_index: int, content, lpn: Optional[int], timestamp_us: int) -> int:
        """Program the next free page of ``block_index``; returns the ppn."""
        offset = int(self.block_next_off[block_index])
        ppn = block_index * self.geometry.pages_per_block + offset
        self.page_state[ppn] = PAGE_VALID
        self.page_lpn[ppn] = NO_LPN if lpn is None else lpn
        self.page_ts[ppn] = timestamp_us
        self.page_entropy[ppn] = content.entropy
        self.page_content[ppn] = content
        if content.payload is not None:
            self.payload_pages += 1
        self.block_next_off[block_index] = offset + 1
        self.block_valid[block_index] += 1
        if timestamp_us > self.block_last_ts[block_index]:
            self.block_last_ts[block_index] = timestamp_us
        return ppn

    def invalidate_page(self, ppn: int) -> None:
        """Flip a VALID page to INVALID (content stays readable)."""
        block_index = ppn // self.geometry.pages_per_block
        self.page_state[ppn] = PAGE_INVALID
        self.block_valid[block_index] -= 1
        self.block_invalid[block_index] += 1

    def erase_block(self, block_index: int) -> None:
        """Reset every page of the block and bump its erase count."""
        pages_per_block = self.geometry.pages_per_block
        start = block_index * pages_per_block
        end = start + pages_per_block
        if self.payload_pages:
            for content in self.page_content[start:end]:
                if content is not None and content.payload is not None:
                    self.payload_pages -= 1
        self.page_state[start:end] = PAGE_FREE
        self.page_lpn[start:end] = NO_LPN
        self.page_ts[start:end] = 0
        self.page_entropy[start:end] = 0.0
        self.page_content[start:end] = None
        self.block_next_off[block_index] = 0
        self.block_valid[block_index] = 0
        self.block_invalid[block_index] = 0
        self.block_erase[block_index] += 1
        self.block_last_ts[block_index] = 0

    # -- bulk flash transitions --------------------------------------------

    def program_run(
        self,
        block_index: int,
        contents: List,
        lpns: np.ndarray,
        timestamp_us: int,
    ) -> np.ndarray:
        """Program ``len(contents)`` pages into ``block_index`` in order.

        The caller guarantees the block has room (the FTL chunks runs at
        open-block boundaries).  Returns the programmed ppns.
        """
        count = len(contents)
        offset = int(self.block_next_off[block_index])
        start = block_index * self.geometry.pages_per_block + offset
        ppns = np.arange(start, start + count, dtype=np.int64)
        self.page_state[start : start + count] = PAGE_VALID
        self.page_lpn[start : start + count] = lpns
        self.page_ts[start : start + count] = timestamp_us
        self.page_content[start : start + count] = contents
        entropies = []
        entropy_append = entropies.append
        payloads = 0
        for c in contents:
            entropy_append(c.entropy)
            if c.payload is not None:
                payloads += 1
        self.page_entropy[start : start + count] = entropies
        if payloads:
            self.payload_pages += payloads
        self.block_next_off[block_index] = offset + count
        self.block_valid[block_index] += count
        if timestamp_us > self.block_last_ts[block_index]:
            self.block_last_ts[block_index] = timestamp_us
        return ppns

    def invalidate_pages(self, ppns: np.ndarray) -> None:
        """Flip a batch of VALID pages to INVALID with bulk counter updates."""
        self.page_state[ppns] = PAGE_INVALID
        blocks = ppns // self.geometry.pages_per_block
        np.subtract.at(self.block_valid, blocks, 1)
        np.add.at(self.block_invalid, blocks, 1)

    # -- mapping plane -----------------------------------------------------

    def map_run(self, start_lpn: int, ppns: np.ndarray, timestamp_us: int) -> np.ndarray:
        """Point a contiguous LPN run at freshly programmed ppns.

        Returns the *previous* ppn column (with ``-1`` for pages that
        were unmapped) so the caller can invalidate superseded pages.
        Versions advance by one for every page in the run.
        """
        count = len(ppns)
        end = start_lpn + count
        previous = self.map_ppn[start_lpn:end].copy()
        self.map_ppn[start_lpn:end] = ppns
        self.map_written_us[start_lpn:end] = timestamp_us
        self.map_version[start_lpn:end] += 1
        self.mapped_count += count - int(np.count_nonzero(previous >= 0))
        return previous

    def unmap_run(self, start_lpn: int, npages: int) -> np.ndarray:
        """Drop the mapping of a contiguous LPN run.

        Returns the indices (relative to ``start_lpn``) of the pages
        that were actually mapped; their old ppns can be read from the
        returned tuple's second element.
        """
        end = start_lpn + npages
        window = self.map_ppn[start_lpn:end]
        mapped_offsets = np.nonzero(window >= 0)[0]
        old_ppns = window[mapped_offsets].copy()
        if len(mapped_offsets):
            self.map_ppn[start_lpn:end][mapped_offsets] = NO_PPN
            self.mapped_count -= len(mapped_offsets)
        return mapped_offsets, old_ppns

    def read_ppns(self, start_lpn: int, npages: int) -> np.ndarray:
        """The PPN column for a contiguous LPN run (``-1`` = unmapped)."""
        return self.map_ppn[start_lpn : start_lpn + npages]

    # -- vectorized accounting ---------------------------------------------

    def state_counts(self) -> Tuple[int, int, int]:
        """(free, valid, invalid) page counts across the whole array."""
        counts = np.bincount(self.page_state, minlength=3)
        return int(counts[PAGE_FREE]), int(counts[PAGE_VALID]), int(counts[PAGE_INVALID])

    def count_state_in_block(self, block_index: int, state: int) -> int:
        """Authoritative page walk for one block (tests cross-check this)."""
        pages_per_block = self.geometry.pages_per_block
        start = block_index * pages_per_block
        return int(np.count_nonzero(self.page_state[start : start + pages_per_block] == state))

    def entropy_profile(self, ppns: np.ndarray, encrypted_threshold: float = 7.2) -> Dict[str, float]:
        """Vectorized entropy accounting over a set of physical pages.

        Feeds the retention manager's stale-data profile and the
        detection-quality reporting: mean entropy and the
        encrypted-looking fraction of the given pages, straight off the
        float column (no object traversal).
        """
        if len(ppns) == 0:
            return {"pages": 0, "mean_entropy": 0.0, "encrypted_fraction": 0.0}
        entropies = self.page_entropy[ppns]
        return {
            "pages": int(len(ppns)),
            "mean_entropy": float(entropies.mean()),
            "encrypted_fraction": float(np.count_nonzero(entropies >= encrypted_threshold) / len(ppns)),
        }

    def block_utilisation(self) -> Dict[str, int]:
        """Bulk block accounting for reports: programmed/valid/invalid totals."""
        return {
            "programmed_pages": int(self.block_next_off.sum()),
            "valid_pages": int(self.block_valid.sum()),
            "invalid_pages": int(self.block_invalid.sum()),
            "total_erases": int(self.block_erase.sum()),
        }
