"""Flash translation layer (FTL).

The FTL keeps the logical-to-physical page mapping, allocates flash
pages for host writes, invalidates superseded pages, and cooperates
with garbage collection.  Retention behaviour -- the property every
ransomware defense in the paper builds on -- is delegated to a
:class:`RetentionPolicy`:

* A plain SSD uses :class:`PassthroughRetention`: stale pages may be
  destroyed as soon as GC wants the space.
* FlashGuard/TimeSSD-like defenses retain *suspicious* or *recent*
  stale pages locally, bounded by spare capacity, and are forced to
  release them under capacity pressure (which the GC attack exploits).
* RSSD retains *every* stale page and only allows release after the
  page has been offloaded to the remote tier over NVMe-oE.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol

from repro.sim import SimClock
from repro.ssd.errors import CapacityExhaustedError, OutOfRangeError
from repro.ssd.flash import FlashArray, FlashBlock, PageContent, PageState
from repro.ssd.geometry import SSDGeometry


class InvalidationCause(enum.Enum):
    """Why a flash page became stale."""

    OVERWRITE = "overwrite"
    TRIM = "trim"
    RELOCATION = "relocation"


@dataclass
class StalePage:
    """A flash page whose logical address has been superseded or trimmed.

    The record survives relocation by GC (``ppn`` is updated) and is the
    unit of retention, offloading, release and recovery throughout the
    library.
    """

    lpn: int
    ppn: int
    content: PageContent
    written_us: int
    invalidated_us: int
    cause: InvalidationCause
    version: int
    offloaded: bool = False
    released: bool = False
    relocations: int = 0


@dataclass
class PageMetadata:
    """Metadata the FTL keeps per live logical page."""

    lpn: int
    ppn: int
    written_us: int
    version: int


class RetentionPolicy(Protocol):
    """Decides the fate of stale flash pages.

    The FTL and GC call these hooks; the policy never mutates flash
    state itself.  Implementations live with the defense they belong to
    (``repro.defenses`` for the baselines, ``repro.core.retention`` for
    RSSD).
    """

    def on_invalidate(self, record: StalePage) -> None:
        """A page just became stale (overwrite or trim)."""

    def may_release(self, record: StalePage) -> bool:
        """May GC physically destroy this stale page's data right now?"""

    def on_release(self, record: StalePage) -> None:
        """The stale page's data has been physically destroyed."""

    def on_relocate(self, record: StalePage, new_ppn: int) -> None:
        """GC relocated the stale page; ``record.ppn`` already updated."""

    def reclaim_pressure(self, ftl: "FTL", needed_pages: int) -> int:
        """GC cannot free space without violating retention.

        The policy must either make some stale pages releasable (RSSD
        drains its offload queue; FlashGuard force-releases its oldest
        retained pages, losing them) or accept that the device stalls.
        Returns the number of stale pages made releasable.
        """


class PassthroughRetention:
    """Retention policy of an unmodified SSD: stale data is expendable."""

    def on_invalidate(self, record: StalePage) -> None:
        return None

    def may_release(self, record: StalePage) -> bool:
        return True

    def on_release(self, record: StalePage) -> None:
        return None

    def on_relocate(self, record: StalePage, new_ppn: int) -> None:
        return None

    def reclaim_pressure(self, ftl: "FTL", needed_pages: int) -> int:
        return 0


class BlockAllocator:
    """Free-block pool with dynamic wear leveling.

    Free blocks are handed out lowest-erase-count first so wear spreads
    across the array; this is the "dynamic wear leveling" the device
    statistics report on.  The pool is a heap keyed by (erase count,
    block index), making every allocation O(log n) instead of a scan.
    During normal operation a block's erase count only changes before
    it is released back, so entries are keyed correctly; entries whose
    count was changed externally (wear injection via
    ``FlashArray.set_erase_count``) are detected against the live count
    on pop and lazily re-keyed, so allocation order always follows the
    true counts.  The last ``gc_reserve_blocks`` blocks are reserved
    for garbage collection so relocation always has somewhere to copy
    pages even when host writes have exhausted the pool.
    """

    def __init__(self, flash: FlashArray, gc_reserve_blocks: int = 2) -> None:
        if gc_reserve_blocks < 0:
            raise ValueError("gc_reserve_blocks must be non-negative")
        self._flash = flash
        self._heap: List[tuple] = [
            (block.erase_count, block.block_index) for block in flash.iter_blocks()
        ]
        heapq.heapify(self._heap)
        self._free_set = {block.block_index for block in flash.iter_blocks()}
        self.gc_reserve_blocks = gc_reserve_blocks

    @property
    def free_blocks(self) -> int:
        return len(self._heap)

    def allocate(self, for_gc: bool = False) -> int:
        """Pop the free block with the lowest erase count.

        Host allocations (``for_gc=False``) may not dig into the GC
        reserve; GC relocation allocations may.
        """
        available = len(self._heap) if for_gc else len(self._heap) - self.gc_reserve_blocks
        if available <= 0:
            raise CapacityExhaustedError(
                "no free blocks available"
                + ("" if for_gc else " outside the GC reserve")
            )
        while True:
            erase_count, block_index = heapq.heappop(self._heap)
            live_count = self._flash.block(block_index).erase_count
            if live_count != erase_count:
                # Externally mutated while free: re-key and try again.
                heapq.heappush(self._heap, (live_count, block_index))
                continue
            self._free_set.discard(block_index)
            return block_index

    def release(self, block_index: int) -> None:
        """Return an erased block to the free pool."""
        if block_index in self._free_set:
            raise ValueError(f"block {block_index} is already free")
        heapq.heappush(
            self._heap, (self._flash.block(block_index).erase_count, block_index)
        )
        self._free_set.add(block_index)

    def is_free(self, block_index: int) -> bool:
        """Whether ``block_index`` currently sits in the free pool."""
        return block_index in self._free_set

    def peek_free(self) -> List[int]:
        """Snapshot of the free pool (for tests and wear statistics)."""
        return [block_index for _, block_index in self._heap]


@dataclass
class FTLStats:
    """Counters specific to FTL/GC internals."""

    stale_pages_created: int = 0
    stale_pages_released: int = 0
    stale_pages_relocated: int = 0
    reclaim_pressure_events: int = 0


class FTL:
    """Page-mapping flash translation layer.

    Host writes go to the currently open "host" block; GC relocations go
    to a separate open "gc" block so hot and cold data do not mix.  The
    mapping table is a plain dictionary from logical page number (LPN)
    to physical page number (PPN).
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        flash: FlashArray,
        clock: SimClock,
        retention_policy: Optional[RetentionPolicy] = None,
        gc_threshold_blocks: int = 4,
    ) -> None:
        if gc_threshold_blocks < 2:
            raise ValueError("gc_threshold_blocks must be at least 2")
        self.geometry = geometry
        self.flash = flash
        self.clock = clock
        self.retention_policy: RetentionPolicy = (
            retention_policy if retention_policy is not None else PassthroughRetention()
        )
        self.gc_threshold_blocks = gc_threshold_blocks
        self.allocator = BlockAllocator(flash)
        self.stats = FTLStats()
        self._mapping: Dict[int, PageMetadata] = {}
        self._stale: Dict[int, StalePage] = {}  # keyed by current ppn
        # Same records, bucketed by erase block, so GC victim accounting
        # only visits a block's own stale records instead of re-walking
        # every page of every candidate block each pass.
        self._stale_by_block: Dict[int, Dict[int, StalePage]] = {}
        # Blocks currently holding at least one invalid page (cleared on
        # erase), so GC candidate enumeration skips untouched blocks.
        self._invalid_blocks: set = set()
        self._version_counter: Dict[int, int] = {}
        self._host_block: Optional[int] = None
        self._gc_block: Optional[int] = None

    # -- introspection -----------------------------------------------------

    @property
    def mapped_pages(self) -> int:
        """Number of live logical pages."""
        return len(self._mapping)

    @property
    def stale_pages(self) -> int:
        """Number of stale pages currently held on flash."""
        return len(self._stale)

    @property
    def free_pages(self) -> int:
        """Free (never-programmed-since-erase) pages across the device."""
        free_in_pool = self.allocator.free_blocks * self.geometry.pages_per_block
        open_free = 0
        for block_index in (self._host_block, self._gc_block):
            if block_index is not None:
                open_free += self.flash.block(block_index).free_pages
        return free_in_pool + open_free

    def lookup(self, lpn: int) -> Optional[PageMetadata]:
        """Return the live mapping for ``lpn`` or ``None`` if unmapped."""
        self._check_lpn(lpn)
        return self._mapping.get(lpn)

    def iter_stale(self) -> Iterable[StalePage]:
        """Iterate stale pages currently retained on flash."""
        return list(self._stale.values())

    def stale_for_lpn(self, lpn: int) -> List[StalePage]:
        """All retained stale versions of ``lpn``, oldest first."""
        records = [record for record in self._stale.values() if record.lpn == lpn]
        records.sort(key=lambda record: record.version)
        return records

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.geometry.exported_pages:
            raise OutOfRangeError(
                f"logical page {lpn} outside [0, {self.geometry.exported_pages})"
            )

    # -- host operations ----------------------------------------------------

    def read(self, lpn: int) -> Optional[PageContent]:
        """Read the live content of ``lpn`` (``None`` for unmapped pages)."""
        meta = self.lookup(lpn)
        if meta is None:
            return None
        return self.flash.read(meta.ppn)

    def write(self, lpn: int, content: PageContent) -> PageMetadata:
        """Write ``content`` to ``lpn``, invalidating any previous version.

        Returns the new mapping entry.  Flash page programs performed
        here are reported to the caller via the returned metadata and
        the FTL counters; host-level latency accounting happens in the
        device layer.
        """
        self._check_lpn(lpn)
        previous = self._mapping.get(lpn)
        ppn = self._program_host_page(content, lpn)
        version = self._next_version(lpn)
        meta = PageMetadata(
            lpn=lpn, ppn=ppn, written_us=self.clock.now_us, version=version
        )
        self._mapping[lpn] = meta
        if previous is not None:
            self._invalidate_physical(previous, InvalidationCause.OVERWRITE)
        return meta

    def trim(self, lpn: int) -> Optional[StalePage]:
        """Drop the mapping for ``lpn``.

        The previously mapped flash page becomes stale with cause
        ``TRIM``; whether its data survives is up to the retention
        policy.  Returns the stale record, or ``None`` if the page was
        not mapped.
        """
        self._check_lpn(lpn)
        previous = self._mapping.pop(lpn, None)
        if previous is None:
            return None
        return self._invalidate_physical(previous, InvalidationCause.TRIM)

    # -- vectorized host operations ------------------------------------------

    def write_run(
        self,
        start_lpn: int,
        contents: List[PageContent],
        gc_check=None,
        on_page=None,
    ) -> List[PageMetadata]:
        """Write a run of consecutive logical pages with batched bookkeeping.

        Performs exactly the state transitions of calling :meth:`write`
        once per page, in page order, with per-page dispatch and bounds
        checks hoisted out of the loop.  ``gc_check`` is invoked before
        each page (mirroring the device's per-page GC guard) and
        ``on_page`` after it (the device hooks latency/metrics
        accounting there), so interleaving matches the per-op path and
        batched writes stay bit-identical to it.
        """
        npages = len(contents)
        if npages == 0:
            raise ValueError("cannot write an empty run of pages")
        self._check_lpn(start_lpn)
        self._check_lpn(start_lpn + npages - 1)
        mapping = self._mapping
        versions = self._version_counter
        clock = self.clock
        invalidate = self._invalidate_physical
        flash = self.flash
        program_into = flash.program_into
        # The open host block stays valid across the whole run: GC never
        # victimises or closes an open block, so it only needs
        # re-resolving when it fills up.  The clock only moves while GC
        # runs, so the cached timestamp is refreshed after each check.
        block = flash.block(self._host_block) if self._host_block is not None else None
        now_us = clock.now_us
        metas: List[PageMetadata] = []
        lpn = start_lpn
        for content in contents:
            if gc_check is not None:
                gc_check()
                now_us = clock.now_us
            previous = mapping.get(lpn)
            if block is None or block.is_full:
                block = flash.block(self._open_block("host"))
            ppn = program_into(block, content, lpn, now_us)
            version = versions.get(lpn, 0) + 1
            versions[lpn] = version
            meta = PageMetadata(
                lpn=lpn, ppn=ppn, written_us=now_us, version=version
            )
            mapping[lpn] = meta
            if previous is not None:
                invalidate(previous, InvalidationCause.OVERWRITE)
            metas.append(meta)
            if on_page is not None:
                on_page(content)
            lpn += 1
        return metas

    def read_run(self, start_lpn: int, npages: int) -> List[Optional[PageContent]]:
        """Read a run of consecutive logical pages (``None`` for unmapped)."""
        self._check_lpn(start_lpn)
        if npages > 0:
            self._check_lpn(start_lpn + npages - 1)
        mapping = self._mapping
        flash_read = self.flash.read
        return [
            flash_read(meta.ppn) if (meta := mapping.get(lpn)) is not None else None
            for lpn in range(start_lpn, start_lpn + npages)
        ]

    def trim_run(self, start_lpn: int, npages: int) -> List[StalePage]:
        """Trim a run of consecutive logical pages with batched bookkeeping.

        Equivalent to calling :meth:`trim` once per page in order;
        returns the stale records of the pages that were mapped.
        """
        self._check_lpn(start_lpn)
        if npages > 0:
            self._check_lpn(start_lpn + npages - 1)
        pop = self._mapping.pop
        invalidate = self._invalidate_physical
        records: List[StalePage] = []
        for lpn in range(start_lpn, start_lpn + npages):
            previous = pop(lpn, None)
            if previous is not None:
                records.append(invalidate(previous, InvalidationCause.TRIM))
        return records

    # -- internals -----------------------------------------------------------

    def _next_version(self, lpn: int) -> int:
        version = self._version_counter.get(lpn, 0) + 1
        self._version_counter[lpn] = version
        return version

    def _invalidate_physical(
        self, meta: PageMetadata, cause: InvalidationCause
    ) -> StalePage:
        page = self.flash.invalidate(meta.ppn)
        record = StalePage(
            lpn=meta.lpn,
            ppn=meta.ppn,
            content=page.content if page.content is not None else PageContent.synthetic(0, 0),
            written_us=meta.written_us,
            invalidated_us=self.clock.now_us,
            cause=cause,
            version=meta.version,
        )
        self._stale[meta.ppn] = record
        block_index = meta.ppn // self.geometry.pages_per_block
        self._stale_by_block.setdefault(block_index, {})[meta.ppn] = record
        self._invalid_blocks.add(block_index)
        self.stats.stale_pages_created += 1
        self.retention_policy.on_invalidate(record)
        return record

    def _open_block(self, purpose: str) -> int:
        """Allocate and open a new block for host writes or GC relocation."""
        block_index = self.allocator.allocate(for_gc=(purpose == "gc"))
        if purpose == "host":
            self._host_block = block_index
        else:
            self._gc_block = block_index
        return block_index

    def _program_host_page(self, content: PageContent, lpn: Optional[int]) -> int:
        return self._program(content, lpn, purpose="host")

    def program_relocation_page(self, content: PageContent, lpn: Optional[int]) -> int:
        """Program a page on the GC/relocation stream (used by the GC)."""
        return self._program(content, lpn, purpose="gc")

    def _program(self, content: PageContent, lpn: Optional[int], purpose: str) -> int:
        block_index = self._host_block if purpose == "host" else self._gc_block
        if block_index is None or self.flash.block(block_index).is_full:
            block_index = self._open_block(purpose)
        ppn = self.flash.program(
            block_index, content, lpn, timestamp_us=self.clock.now_us
        )
        return ppn

    # -- GC support ------------------------------------------------------------

    def needs_gc(self) -> bool:
        """True when the free-block pool has drained to the GC threshold."""
        return self.allocator.free_blocks <= self.gc_threshold_blocks

    def closed_blocks(self) -> List[FlashBlock]:
        """Blocks eligible as GC victims (full, not currently open)."""
        open_blocks = {self._host_block, self._gc_block}
        is_free = self.allocator.is_free
        victims = []
        for block in self.flash.iter_blocks():
            if block.block_index in open_blocks:
                continue
            if block.is_erased:
                continue
            if is_free(block.block_index):
                continue
            victims.append(block)
        return victims

    def reclaimable_blocks(self) -> List[FlashBlock]:
        """Closed blocks holding at least one invalid page (GC candidates).

        Enumerated from the incrementally maintained invalid-block set,
        so the cost scales with the number of dirtied blocks instead of
        the whole array.  Blocks in the set are never free or erased
        (erase clears their membership), so only the open blocks need
        filtering out.
        """
        open_blocks = (self._host_block, self._gc_block)
        flash_block = self.flash.block
        return [
            flash_block(block_index)
            for block_index in self._invalid_blocks
            if block_index not in open_blocks
        ]

    def stale_record_at(self, ppn: int) -> Optional[StalePage]:
        """The stale record currently stored at physical page ``ppn``."""
        return self._stale.get(ppn)

    def relocate_valid_page(self, ppn: int) -> int:
        """Move a live page out of a GC victim block.  Returns the new ppn."""
        page = self.flash.page(ppn)
        if page.state is not PageState.VALID or page.lpn is None:
            raise ValueError(f"page {ppn} is not a live valid page")
        content = self.flash.read(ppn)
        new_ppn = self.program_relocation_page(content, page.lpn)
        meta = self._mapping.get(page.lpn)
        if meta is not None and meta.ppn == ppn:
            meta.ppn = new_ppn
        self.flash.invalidate(ppn)
        self._invalid_blocks.add(ppn // self.geometry.pages_per_block)
        return new_ppn

    def relocate_stale_page(self, record: StalePage) -> int:
        """Preserve a stale page by copying it out of a GC victim block.

        The copy is immediately marked invalid: it is retained history,
        not live data, and must never be mistaken for a mapped page by a
        later GC pass.
        """
        new_ppn = self.program_relocation_page(record.content, record.lpn)
        self.flash.invalidate(new_ppn)
        del self._stale[record.ppn]
        self._unindex_stale(record.ppn)
        record.ppn = new_ppn
        record.relocations += 1
        self._stale[new_ppn] = record
        new_block = new_ppn // self.geometry.pages_per_block
        self._stale_by_block.setdefault(new_block, {})[new_ppn] = record
        self._invalid_blocks.add(new_block)
        self.stats.stale_pages_relocated += 1
        self.retention_policy.on_relocate(record, new_ppn)
        return new_ppn

    def release_stale_page(self, record: StalePage) -> None:
        """Allow a stale page's data to be destroyed by the upcoming erase."""
        record.released = True
        self._stale.pop(record.ppn, None)
        self._unindex_stale(record.ppn)
        self.stats.stale_pages_released += 1
        self.retention_policy.on_release(record)

    def drop_stale_record(self, record: StalePage) -> None:
        """Remove a stale record without destroying data.

        Used when the record's content has been safely copied elsewhere
        (for example after remote offload confirms durability) and local
        tracking is no longer required.  The physical page remains
        invalid and will be reclaimed by GC as releasable space.
        """
        self._stale.pop(record.ppn, None)
        self._unindex_stale(record.ppn)

    def _unindex_stale(self, ppn: int) -> None:
        """Drop ``ppn`` from the per-block stale index."""
        block_index = ppn // self.geometry.pages_per_block
        bucket = self._stale_by_block.get(block_index)
        if bucket is not None:
            bucket.pop(ppn, None)
            if not bucket:
                del self._stale_by_block[block_index]

    def stale_records_in_block(self, block_index: int) -> List[StalePage]:
        """Stale records whose current physical page lives in ``block_index``."""
        bucket = self._stale_by_block.get(block_index)
        return list(bucket.values()) if bucket else []

    def finish_block_erase(self, block: FlashBlock) -> None:
        """Erase ``block`` and return it to the free pool."""
        self.flash.erase(block.block_index)
        self._invalid_blocks.discard(block.block_index)
        self.allocator.release(block.block_index)

    def signal_reclaim_pressure(self, needed_pages: int) -> int:
        """Forward capacity pressure to the retention policy."""
        self.stats.reclaim_pressure_events += 1
        return self.retention_policy.reclaim_pressure(self, needed_pages)
