"""Flash translation layer (FTL).

The FTL keeps the logical-to-physical page mapping, allocates flash
pages for host writes, invalidates superseded pages, and cooperates
with garbage collection.  Retention behaviour -- the property every
ransomware defense in the paper builds on -- is delegated to a
:class:`RetentionPolicy`:

* A plain SSD uses :class:`PassthroughRetention`: stale pages may be
  destroyed as soon as GC wants the space.
* FlashGuard/TimeSSD-like defenses retain *suspicious* or *recent*
  stale pages locally, bounded by spare capacity, and are forced to
  release them under capacity pressure (which the GC attack exploits).
* RSSD retains *every* stale page and only allows release after the
  page has been offloaded to the remote tier over NVMe-oE.

Since the kernel refactor the mapping table lives in
:class:`~repro.ssd.kernel.SimKernel` as int columns (``map_ppn`` with
``-1`` as the unmapped sentinel, plus write-timestamp and version
columns) instead of a ``Dict[int, PageMetadata]``.  The batch surfaces
(:meth:`FTL.write_run` / :meth:`FTL.read_run` / :meth:`FTL.trim_run`)
operate on whole array slices per open-block chunk; the scalar methods
keep their historical per-op semantics, and :class:`PageMetadata` is
returned as a point-in-time snapshot of the columns.  Stale pages
remain identity-bearing :class:`StalePage` objects -- they are the unit
of retention, offload and recovery and are mutated in place across GC
relocations -- indexed by their current physical page.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Tuple

import numpy as np

from repro.compat import DATACLASS_SLOTS
from repro.sim import SimClock
from repro.ssd.errors import CapacityExhaustedError, OutOfRangeError
from repro.ssd.flash import FlashArray, FlashBlock, PageContent
from repro.ssd.geometry import SSDGeometry
from repro.ssd.kernel import NO_LPN, NO_PPN, PAGE_VALID, SimKernel


class InvalidationCause(enum.Enum):
    """Why a flash page became stale."""

    OVERWRITE = "overwrite"
    TRIM = "trim"
    RELOCATION = "relocation"


@dataclass(**DATACLASS_SLOTS)
class StalePage:
    """A flash page whose logical address has been superseded or trimmed.

    The record survives relocation by GC (``ppn`` is updated) and is the
    unit of retention, offloading, release and recovery throughout the
    library.
    """

    lpn: int
    ppn: int
    content: PageContent
    written_us: int
    invalidated_us: int
    cause: InvalidationCause
    version: int
    offloaded: bool = False
    released: bool = False
    relocations: int = 0


@dataclass(**DATACLASS_SLOTS)
class PageMetadata:
    """Snapshot of the mapping columns for one live logical page."""

    lpn: int
    ppn: int
    written_us: int
    version: int


class RetentionPolicy(Protocol):
    """Decides the fate of stale flash pages.

    The FTL and GC call these hooks; the policy never mutates flash
    state itself.  Implementations live with the defense they belong to
    (``repro.defenses`` for the baselines, ``repro.core.retention`` for
    RSSD).
    """

    def on_invalidate(self, record: StalePage) -> None:
        """A page just became stale (overwrite or trim)."""

    def may_release(self, record: StalePage) -> bool:
        """May GC physically destroy this stale page's data right now?"""

    def on_release(self, record: StalePage) -> None:
        """The stale page's data has been physically destroyed."""

    def on_relocate(self, record: StalePage, new_ppn: int) -> None:
        """GC relocated the stale page; ``record.ppn`` already updated."""

    def reclaim_pressure(self, ftl: "FTL", needed_pages: int) -> int:
        """GC cannot free space without violating retention.

        The policy must either make some stale pages releasable (RSSD
        drains its offload queue; FlashGuard force-releases its oldest
        retained pages, losing them) or accept that the device stalls.
        Returns the number of stale pages made releasable.
        """


class PassthroughRetention:
    """Retention policy of an unmodified SSD: stale data is expendable."""

    def on_invalidate(self, record: StalePage) -> None:
        return None

    def may_release(self, record: StalePage) -> bool:
        return True

    def on_release(self, record: StalePage) -> None:
        return None

    def on_relocate(self, record: StalePage, new_ppn: int) -> None:
        return None

    def reclaim_pressure(self, ftl: "FTL", needed_pages: int) -> int:
        return 0


class BlockAllocator:
    """Free-block pool with dynamic wear leveling.

    Free blocks are handed out lowest-erase-count first so wear spreads
    across the array; this is the "dynamic wear leveling" the device
    statistics report on.  The pool is a heap keyed by (erase count,
    block index), making every allocation O(log n) instead of a scan.
    During normal operation a block's erase count only changes before
    it is released back, so entries are keyed correctly; entries whose
    count was changed externally (wear injection via
    ``FlashArray.set_erase_count``) are detected against the live count
    on pop and lazily re-keyed, so allocation order always follows the
    true counts.  The last ``gc_reserve_blocks`` blocks are reserved
    for garbage collection so relocation always has somewhere to copy
    pages even when host writes have exhausted the pool.
    """

    def __init__(self, flash: FlashArray, gc_reserve_blocks: int = 2) -> None:
        if gc_reserve_blocks < 0:
            raise ValueError("gc_reserve_blocks must be non-negative")
        self._flash = flash
        self._heap: List[tuple] = [
            (block.erase_count, block.block_index) for block in flash.iter_blocks()
        ]
        heapq.heapify(self._heap)
        self._free_set = {block.block_index for block in flash.iter_blocks()}
        self.gc_reserve_blocks = gc_reserve_blocks

    @property
    def free_blocks(self) -> int:
        return len(self._heap)

    def allocate(self, for_gc: bool = False) -> int:
        """Pop the free block with the lowest erase count.

        Host allocations (``for_gc=False``) may not dig into the GC
        reserve; GC relocation allocations may.
        """
        available = len(self._heap) if for_gc else len(self._heap) - self.gc_reserve_blocks
        if available <= 0:
            raise CapacityExhaustedError(
                "no free blocks available"
                + ("" if for_gc else " outside the GC reserve")
            )
        erase_counts = self._flash.kernel.block_erase
        while True:
            erase_count, block_index = heapq.heappop(self._heap)
            live_count = int(erase_counts[block_index])
            if live_count != erase_count:
                # Externally mutated while free: re-key and try again.
                heapq.heappush(self._heap, (live_count, block_index))
                continue
            self._free_set.discard(block_index)
            return block_index

    def release(self, block_index: int) -> None:
        """Return an erased block to the free pool."""
        if block_index in self._free_set:
            raise ValueError(f"block {block_index} is already free")
        heapq.heappush(
            self._heap, (int(self._flash.kernel.block_erase[block_index]), block_index)
        )
        self._free_set.add(block_index)

    def is_free(self, block_index: int) -> bool:
        """Whether ``block_index`` currently sits in the free pool."""
        return block_index in self._free_set

    def peek_free(self) -> List[int]:
        """Snapshot of the free pool (for tests and wear statistics)."""
        return [block_index for _, block_index in self._heap]


@dataclass
class FTLStats:
    """Counters specific to FTL/GC internals."""

    stale_pages_created: int = 0
    stale_pages_released: int = 0
    stale_pages_relocated: int = 0
    reclaim_pressure_events: int = 0


class _MappingView:
    """Read-only dict-like view of the kernel's mapping columns.

    Kept so callers (and the equivalence tests) that inspected the old
    ``Dict[int, PageMetadata]`` keep working; entries are materialised
    as snapshots on access.
    """

    def __init__(self, ftl: "FTL") -> None:
        self._ftl = ftl

    def _mapped_lpns(self) -> np.ndarray:
        return np.nonzero(self._ftl.kernel.map_ppn >= 0)[0]

    def __len__(self) -> int:
        return self._ftl.kernel.mapped_count

    def __contains__(self, lpn: int) -> bool:
        kernel = self._ftl.kernel
        return 0 <= lpn < len(kernel.map_ppn) and kernel.map_ppn[lpn] >= 0

    def __iter__(self) -> Iterator[int]:
        return iter(self._mapped_lpns().tolist())

    def get(self, lpn: int, default=None):
        meta = self._ftl.lookup(lpn)
        return meta if meta is not None else default

    def __getitem__(self, lpn: int) -> PageMetadata:
        meta = self._ftl.lookup(lpn)
        if meta is None:
            raise KeyError(lpn)
        return meta

    def keys(self) -> List[int]:
        return self._mapped_lpns().tolist()

    def values(self) -> List[PageMetadata]:
        lookup = self._ftl.lookup
        return [lookup(lpn) for lpn in self.keys()]

    def items(self) -> List[Tuple[int, PageMetadata]]:
        lookup = self._ftl.lookup
        return [(lpn, lookup(lpn)) for lpn in self.keys()]


class FTL:
    """Page-mapping flash translation layer.

    Host writes go to the currently open "host" block; GC relocations go
    to a separate open "gc" block so hot and cold data do not mix.  The
    mapping table is the kernel's ``map_ppn`` int column (``-1`` =
    unmapped) with parallel write-timestamp and version columns.
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        flash: FlashArray,
        clock: SimClock,
        retention_policy: Optional[RetentionPolicy] = None,
        gc_threshold_blocks: int = 4,
    ) -> None:
        if gc_threshold_blocks < 2:
            raise ValueError("gc_threshold_blocks must be at least 2")
        self.geometry = geometry
        self.flash = flash
        self.kernel: SimKernel = flash.kernel
        self.clock = clock
        self.retention_policy: RetentionPolicy = (
            retention_policy if retention_policy is not None else PassthroughRetention()
        )
        self.gc_threshold_blocks = gc_threshold_blocks
        self.allocator = BlockAllocator(flash)
        self.stats = FTLStats()
        self._stale: Dict[int, StalePage] = {}  # keyed by current ppn
        # Same records, bucketed by erase block, so GC victim accounting
        # only visits a block's own stale records instead of re-walking
        # every page of every candidate block each pass.
        self._stale_by_block: Dict[int, Dict[int, StalePage]] = {}
        # Blocks currently holding at least one invalid page (cleared on
        # erase), so GC candidate enumeration skips untouched blocks.
        self._invalid_blocks: set = set()
        self._host_block: Optional[int] = None
        self._gc_block: Optional[int] = None

    # -- introspection -----------------------------------------------------

    @property
    def _mapping(self) -> _MappingView:
        """Dict-like view over the kernel mapping columns (tests/tools)."""
        return _MappingView(self)

    @property
    def mapped_pages(self) -> int:
        """Number of live logical pages."""
        return self.kernel.mapped_count

    @property
    def stale_pages(self) -> int:
        """Number of stale pages currently held on flash."""
        return len(self._stale)

    @property
    def free_pages(self) -> int:
        """Free (never-programmed-since-erase) pages across the device."""
        pages_per_block = self.geometry.pages_per_block
        free_in_pool = self.allocator.free_blocks * pages_per_block
        open_free = 0
        for block_index in (self._host_block, self._gc_block):
            if block_index is not None:
                open_free += pages_per_block - int(self.kernel.block_next_off[block_index])
        return free_in_pool + open_free

    def lookup(self, lpn: int) -> Optional[PageMetadata]:
        """Return the live mapping for ``lpn`` or ``None`` if unmapped."""
        self._check_lpn(lpn)
        kernel = self.kernel
        ppn = int(kernel.map_ppn[lpn])
        if ppn < 0:
            return None
        return PageMetadata(
            lpn=lpn,
            ppn=ppn,
            written_us=int(kernel.map_written_us[lpn]),
            version=int(kernel.map_version[lpn]),
        )

    def iter_stale(self) -> Iterable[StalePage]:
        """Iterate stale pages currently retained on flash."""
        return list(self._stale.values())

    def stale_for_lpn(self, lpn: int) -> List[StalePage]:
        """All retained stale versions of ``lpn``, oldest first."""
        records = [record for record in self._stale.values() if record.lpn == lpn]
        records.sort(key=lambda record: record.version)
        return records

    def stale_entropy_profile(self, encrypted_threshold: float = 7.2) -> Dict[str, float]:
        """Vectorized entropy accounting over the retained stale pool.

        Aggregates straight off the kernel's per-page entropy column
        (mean entropy and encrypted-looking fraction of retained stale
        data) without touching the content objects -- the accounting
        RSSD's retention/detection reporting builds on.
        """
        ppns = np.fromiter(self._stale.keys(), dtype=np.int64, count=len(self._stale))
        return self.kernel.entropy_profile(ppns, encrypted_threshold)

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.geometry.exported_pages:
            raise OutOfRangeError(
                f"logical page {lpn} outside [0, {self.geometry.exported_pages})"
            )

    # -- host operations ----------------------------------------------------

    def read(self, lpn: int) -> Optional[PageContent]:
        """Read the live content of ``lpn`` (``None`` for unmapped pages)."""
        self._check_lpn(lpn)
        ppn = int(self.kernel.map_ppn[lpn])
        if ppn < 0:
            return None
        return self.flash.read(ppn)

    def write(self, lpn: int, content: PageContent) -> PageMetadata:
        """Write ``content`` to ``lpn``, invalidating any previous version.

        Returns the new mapping entry (a snapshot).  Flash page programs
        performed here are reported to the caller via the returned
        metadata and the FTL counters; host-level latency accounting
        happens in the device layer.
        """
        self._check_lpn(lpn)
        kernel = self.kernel
        previous_ppn = int(kernel.map_ppn[lpn])
        if previous_ppn >= 0:
            previous_written = int(kernel.map_written_us[lpn])
            previous_version = int(kernel.map_version[lpn])
        ppn = self._program_host_page(content, lpn)
        now_us = self.clock.now_us
        version = int(kernel.map_version[lpn]) + 1
        kernel.map_ppn[lpn] = ppn
        kernel.map_written_us[lpn] = now_us
        kernel.map_version[lpn] = version
        meta = PageMetadata(lpn=lpn, ppn=ppn, written_us=now_us, version=version)
        if previous_ppn >= 0:
            self._invalidate_ppn(
                lpn, previous_ppn, previous_written, previous_version,
                InvalidationCause.OVERWRITE,
            )
        else:
            kernel.mapped_count += 1
        return meta

    def trim(self, lpn: int) -> Optional[StalePage]:
        """Drop the mapping for ``lpn``.

        The previously mapped flash page becomes stale with cause
        ``TRIM``; whether its data survives is up to the retention
        policy.  Returns the stale record, or ``None`` if the page was
        not mapped.
        """
        self._check_lpn(lpn)
        kernel = self.kernel
        ppn = int(kernel.map_ppn[lpn])
        if ppn < 0:
            return None
        written_us = int(kernel.map_written_us[lpn])
        version = int(kernel.map_version[lpn])
        kernel.map_ppn[lpn] = NO_PPN
        kernel.mapped_count -= 1
        return self._invalidate_ppn(lpn, ppn, written_us, version, InvalidationCause.TRIM)

    # -- vectorized host operations ------------------------------------------

    def write_run(
        self,
        start_lpn: int,
        contents: List[PageContent],
        gc_check=None,
        on_chunk=None,
    ) -> None:
        """Write a run of consecutive logical pages with array bookkeeping.

        Performs exactly the state transitions of calling :meth:`write`
        once per page, in page order, but executes them one open-block
        *chunk* at a time: the run is split at block boundaries, each
        chunk is programmed with a single kernel array op, and the
        superseded pages are invalidated in bulk.

        ``gc_check`` (the device's per-page GC guard) runs once per
        chunk, which is equivalent to the per-op path's per-page guard
        because ``needs_gc()`` only changes when the allocator hands out
        or takes back a block -- never in the middle of an open-block
        chunk.  The one corner where that argument fails -- the pool is
        still at/below the threshold right after a check (GC stalled, or
        the block opened for this chunk drained the pool) -- degrades to
        one-page chunks, which *is* the per-op path.  ``on_chunk`` is
        invoked after each chunk with the chunk's contents; the device
        hooks buffer-admission/latency/metrics accounting there.
        """
        npages = len(contents)
        if npages == 0:
            raise ValueError("cannot write an empty run of pages")
        self._check_lpn(start_lpn)
        self._check_lpn(start_lpn + npages - 1)
        kernel = self.kernel
        clock = self.clock
        pages_per_block = self.geometry.pages_per_block
        map_ppn = kernel.map_ppn
        map_written = kernel.map_written_us
        map_version = kernel.map_version
        block_next_off = kernel.block_next_off
        position = 0
        lpn = start_lpn
        while position < npages:
            if gc_check is not None:
                gc_check()
            now_us = clock.now_us
            block_index = self._host_block
            if block_index is None or block_next_off[block_index] >= pages_per_block:
                block_index = self._open_block("host")
            chunk = min(npages - position, pages_per_block - int(block_next_off[block_index]))
            if chunk > 1 and gc_check is not None and self.needs_gc():
                # The pool is at/below the GC threshold even after the
                # check above (stalled GC, or opening this chunk's block
                # crossed the threshold): the per-op path would re-run
                # GC before the *next* page, so program one page only
                # and loop back to the guard.
                chunk = 1
            end = lpn + chunk
            window = slice(lpn, end)
            previous_ppns = map_ppn[window].copy()
            mapped = np.nonzero(previous_ppns >= 0)[0]
            if len(mapped):
                previous_written = map_written[window][mapped]
                previous_versions = map_version[window][mapped]
            chunk_contents = contents[position : position + chunk]
            ppns = self.flash.program_run(
                block_index,
                chunk_contents,
                np.arange(lpn, end, dtype=np.int64),
                now_us,
            )
            map_ppn[window] = ppns
            map_written[window] = now_us
            map_version[window] += 1
            kernel.mapped_count += chunk - len(mapped)
            if len(mapped):
                old_ppns = previous_ppns[mapped]
                kernel.invalidate_pages(old_ppns)
                self._register_stale_run(
                    (lpn + mapped).tolist(),
                    old_ppns.tolist(),
                    previous_written.tolist(),
                    previous_versions.tolist(),
                    InvalidationCause.OVERWRITE,
                    now_us,
                )
            if on_chunk is not None:
                on_chunk(chunk_contents)
            position += chunk
            lpn = end

    def read_run(self, start_lpn: int, npages: int) -> List[Optional[PageContent]]:
        """Read a run of consecutive logical pages (``None`` for unmapped)."""
        self._check_lpn(start_lpn)
        if npages > 0:
            self._check_lpn(start_lpn + npages - 1)
        page_content = self.kernel.page_content
        return [
            page_content[ppn] if ppn >= 0 else None
            for ppn in self.kernel.map_ppn[start_lpn : start_lpn + npages].tolist()
        ]

    def read_ppns(self, start_lpn: int, npages: int) -> np.ndarray:
        """The mapping column for a run (``-1`` = unmapped; no content objects).

        The device read fast path uses this to account latency without
        materialising per-page content descriptors.
        """
        self._check_lpn(start_lpn)
        if npages > 0:
            self._check_lpn(start_lpn + npages - 1)
        return self.kernel.read_ppns(start_lpn, npages)

    def trim_run(self, start_lpn: int, npages: int) -> List[StalePage]:
        """Trim a run of consecutive logical pages with array bookkeeping.

        Equivalent to calling :meth:`trim` once per page in order;
        returns the stale records of the pages that were mapped.
        """
        self._check_lpn(start_lpn)
        if npages > 0:
            self._check_lpn(start_lpn + npages - 1)
        kernel = self.kernel
        window = slice(start_lpn, start_lpn + npages)
        ppn_window = kernel.map_ppn[window]
        mapped = np.nonzero(ppn_window >= 0)[0]
        if not len(mapped):
            return []
        old_ppns = ppn_window[mapped].copy()
        written = kernel.map_written_us[window][mapped]
        versions = kernel.map_version[window][mapped]
        ppn_window[mapped] = NO_PPN
        kernel.mapped_count -= len(mapped)
        kernel.invalidate_pages(old_ppns)
        return self._register_stale_run(
            (start_lpn + mapped).tolist(),
            old_ppns.tolist(),
            written.tolist(),
            versions.tolist(),
            InvalidationCause.TRIM,
            self.clock.now_us,
        )

    # -- internals -----------------------------------------------------------

    def _invalidate_ppn(
        self,
        lpn: int,
        ppn: int,
        written_us: int,
        version: int,
        cause: InvalidationCause,
    ) -> StalePage:
        """Scalar invalidation: NAND state check plus stale bookkeeping."""
        page = self.flash.invalidate(ppn)
        content = page.content
        record = StalePage(
            lpn=lpn,
            ppn=ppn,
            content=content if content is not None else PageContent.synthetic(0, 0),
            written_us=written_us,
            invalidated_us=self.clock.now_us,
            cause=cause,
            version=version,
        )
        self._index_stale(record)
        self.stats.stale_pages_created += 1
        self.retention_policy.on_invalidate(record)
        return record

    def _register_stale_run(
        self,
        lpns: List[int],
        ppns: List[int],
        written: List[int],
        versions: List[int],
        cause: InvalidationCause,
        invalidated_us: int,
    ) -> List[StalePage]:
        """Build and index stale records for a bulk-invalidated page set.

        The physical pages have already been flipped INVALID by the
        kernel (they are guaranteed VALID: they came from the mapping
        column); records are created and reported to the retention
        policy in LPN order, matching the per-op path.
        """
        stale = self._stale
        by_block = self._stale_by_block
        invalid_blocks = self._invalid_blocks
        page_content = self.kernel.page_content
        pages_per_block = self.geometry.pages_per_block
        on_invalidate = self.retention_policy.on_invalidate
        records: List[StalePage] = []
        for lpn, ppn, written_us, version in zip(lpns, ppns, written, versions):
            record = StalePage(
                lpn=lpn,
                ppn=ppn,
                content=page_content[ppn],
                written_us=written_us,
                invalidated_us=invalidated_us,
                cause=cause,
                version=version,
            )
            stale[ppn] = record
            block_index = ppn // pages_per_block
            bucket = by_block.get(block_index)
            if bucket is None:
                bucket = by_block[block_index] = {}
            bucket[ppn] = record
            invalid_blocks.add(block_index)
            records.append(record)
            on_invalidate(record)
        self.stats.stale_pages_created += len(records)
        return records

    def _index_stale(self, record: StalePage) -> None:
        ppn = record.ppn
        self._stale[ppn] = record
        block_index = ppn // self.geometry.pages_per_block
        self._stale_by_block.setdefault(block_index, {})[ppn] = record
        self._invalid_blocks.add(block_index)

    def _open_block(self, purpose: str) -> int:
        """Allocate and open a new block for host writes or GC relocation."""
        block_index = self.allocator.allocate(for_gc=(purpose == "gc"))
        if purpose == "host":
            self._host_block = block_index
        else:
            self._gc_block = block_index
        return block_index

    def _program_host_page(self, content: PageContent, lpn: Optional[int]) -> int:
        return self._program(content, lpn, purpose="host")

    def program_relocation_page(self, content: PageContent, lpn: Optional[int]) -> int:
        """Program a page on the GC/relocation stream (used by the GC)."""
        return self._program(content, lpn, purpose="gc")

    def _program(self, content: PageContent, lpn: Optional[int], purpose: str) -> int:
        block_index = self._host_block if purpose == "host" else self._gc_block
        if (
            block_index is None
            or self.kernel.block_next_off[block_index] >= self.geometry.pages_per_block
        ):
            block_index = self._open_block(purpose)
        ppn = self.flash.program(
            block_index, content, lpn, timestamp_us=self.clock.now_us
        )
        return ppn

    # -- GC support ------------------------------------------------------------

    def needs_gc(self) -> bool:
        """True when the free-block pool has drained to the GC threshold."""
        return self.allocator.free_blocks <= self.gc_threshold_blocks

    def closed_blocks(self) -> List[FlashBlock]:
        """Blocks eligible as GC victims (full, not currently open)."""
        open_blocks = {self._host_block, self._gc_block}
        is_free = self.allocator.is_free
        victims = []
        for block in self.flash.iter_blocks():
            if block.block_index in open_blocks:
                continue
            if block.is_erased:
                continue
            if is_free(block.block_index):
                continue
            victims.append(block)
        return victims

    def reclaimable_blocks(self) -> List[FlashBlock]:
        """Closed blocks holding at least one invalid page (GC candidates).

        Enumerated from the incrementally maintained invalid-block set,
        so the cost scales with the number of dirtied blocks instead of
        the whole array.  Blocks in the set are never free or erased
        (erase clears their membership), so only the open blocks need
        filtering out.
        """
        open_blocks = (self._host_block, self._gc_block)
        flash_block = self.flash.block
        return [
            flash_block(block_index)
            for block_index in self._invalid_blocks
            if block_index not in open_blocks
        ]

    def stale_record_at(self, ppn: int) -> Optional[StalePage]:
        """The stale record currently stored at physical page ``ppn``."""
        return self._stale.get(ppn)

    def relocate_valid_page(self, ppn: int) -> int:
        """Move a live page out of a GC victim block.  Returns the new ppn."""
        kernel = self.kernel
        if kernel.page_state[ppn] != PAGE_VALID or kernel.page_lpn[ppn] == NO_LPN:
            raise ValueError(f"page {ppn} is not a live valid page")
        lpn = int(kernel.page_lpn[ppn])
        content = self.flash.read(ppn)
        new_ppn = self.program_relocation_page(content, lpn)
        if int(kernel.map_ppn[lpn]) == ppn:
            kernel.map_ppn[lpn] = new_ppn
        self.flash.invalidate(ppn)
        self._invalid_blocks.add(ppn // self.geometry.pages_per_block)
        return new_ppn

    def relocate_stale_page(self, record: StalePage) -> int:
        """Preserve a stale page by copying it out of a GC victim block.

        The copy is immediately marked invalid: it is retained history,
        not live data, and must never be mistaken for a mapped page by a
        later GC pass.
        """
        new_ppn = self.program_relocation_page(record.content, record.lpn)
        self.flash.invalidate(new_ppn)
        del self._stale[record.ppn]
        self._unindex_stale(record.ppn)
        record.ppn = new_ppn
        record.relocations += 1
        self._stale[new_ppn] = record
        new_block = new_ppn // self.geometry.pages_per_block
        self._stale_by_block.setdefault(new_block, {})[new_ppn] = record
        self._invalid_blocks.add(new_block)
        self.stats.stale_pages_relocated += 1
        self.retention_policy.on_relocate(record, new_ppn)
        return new_ppn

    def release_stale_page(self, record: StalePage) -> None:
        """Allow a stale page's data to be destroyed by the upcoming erase."""
        record.released = True
        self._stale.pop(record.ppn, None)
        self._unindex_stale(record.ppn)
        self.stats.stale_pages_released += 1
        self.retention_policy.on_release(record)

    def drop_stale_record(self, record: StalePage) -> None:
        """Remove a stale record without destroying data.

        Used when the record's content has been safely copied elsewhere
        (for example after remote offload confirms durability) and local
        tracking is no longer required.  The physical page remains
        invalid and will be reclaimed by GC as releasable space.
        """
        self._stale.pop(record.ppn, None)
        self._unindex_stale(record.ppn)

    def _unindex_stale(self, ppn: int) -> None:
        """Drop ``ppn`` from the per-block stale index."""
        block_index = ppn // self.geometry.pages_per_block
        bucket = self._stale_by_block.get(block_index)
        if bucket is not None:
            bucket.pop(ppn, None)
            if not bucket:
                del self._stale_by_block[block_index]

    def stale_records_in_block(self, block_index: int) -> List[StalePage]:
        """Stale records whose current physical page lives in ``block_index``."""
        bucket = self._stale_by_block.get(block_index)
        return list(bucket.values()) if bucket else []

    def finish_block_erase(self, block: FlashBlock) -> None:
        """Erase ``block`` and return it to the free pool."""
        self.flash.erase(block.block_index)
        self._invalid_blocks.discard(block.block_index)
        self.allocator.release(block.block_index)

    def signal_reclaim_pressure(self, needed_pages: int) -> int:
        """Forward capacity pressure to the retention policy."""
        self.stats.reclaim_pressure_events += 1
        return self.retention_policy.reclaim_pressure(self, needed_pages)
