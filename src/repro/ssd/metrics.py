"""Device-level statistics: traffic, latency, write amplification, lifetime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim import percentile


@dataclass
class LatencyRecorder:
    """Collects per-operation latency samples for one command type."""

    samples_us: List[float] = field(default_factory=list)

    def record(self, latency_us: float) -> None:
        self.samples_us.append(latency_us)

    @property
    def count(self) -> int:
        return len(self.samples_us)

    @property
    def total_us(self) -> float:
        return sum(self.samples_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def percentile_us(self, fraction: float) -> float:
        """Latency at the given percentile (e.g. 0.99 for p99)."""
        return percentile(sorted(self.samples_us), fraction)


@dataclass
class DeviceMetrics:
    """Counters kept by the SSD and read by the benchmark harness.

    Write amplification factor (WAF) is ``flash_pages_programmed /
    host_pages_written``; lifetime impact is estimated from total block
    erases against a per-block endurance budget.
    """

    host_reads: int = 0
    host_writes: int = 0
    host_trims: int = 0
    host_flushes: int = 0
    host_pages_read: int = 0
    host_pages_written: int = 0
    host_pages_trimmed: int = 0
    flash_pages_read: int = 0
    flash_pages_programmed: int = 0
    flash_blocks_erased: int = 0
    gc_invocations: int = 0
    gc_pages_relocated: int = 0
    gc_stale_pages_preserved: int = 0
    gc_stale_pages_released: int = 0
    retained_pages_current: int = 0
    latency: Dict[str, LatencyRecorder] = field(
        default_factory=lambda: {
            "read": LatencyRecorder(),
            "write": LatencyRecorder(),
            "trim": LatencyRecorder(),
            "flush": LatencyRecorder(),
        }
    )

    def record_latency(self, op: str, latency_us: float) -> None:
        """Record a host-visible latency sample for ``op``."""
        self.latency.setdefault(op, LatencyRecorder()).record(latency_us)

    @property
    def write_amplification(self) -> float:
        """Flash page programs per host page written (>= 1.0 in steady state)."""
        if self.host_pages_written == 0:
            return 0.0
        return self.flash_pages_programmed / self.host_pages_written

    def lifetime_consumed_fraction(
        self, total_blocks: int, endurance_cycles: int = 3000
    ) -> float:
        """Fraction of the device's program/erase budget consumed so far."""
        if total_blocks <= 0 or endurance_cycles <= 0:
            raise ValueError("total_blocks and endurance_cycles must be positive")
        budget = total_blocks * endurance_cycles
        return self.flash_blocks_erased / budget

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline metrics for report tables."""
        return {
            "host_reads": float(self.host_reads),
            "host_writes": float(self.host_writes),
            "host_trims": float(self.host_trims),
            "host_pages_written": float(self.host_pages_written),
            "flash_pages_programmed": float(self.flash_pages_programmed),
            "flash_blocks_erased": float(self.flash_blocks_erased),
            "write_amplification": self.write_amplification,
            "gc_invocations": float(self.gc_invocations),
            "gc_pages_relocated": float(self.gc_pages_relocated),
            "gc_stale_pages_preserved": float(self.gc_stale_pages_preserved),
            "gc_stale_pages_released": float(self.gc_stale_pages_released),
            "mean_read_latency_us": self.latency["read"].mean_us,
            "mean_write_latency_us": self.latency["write"].mean_us,
            "p99_read_latency_us": self.latency["read"].percentile_us(0.99),
            "p99_write_latency_us": self.latency["write"].percentile_us(0.99),
        }
