"""Flash and device latency model.

Latency numbers default to typical MLC/TLC NAND datasheet values; they
only need to be *relatively* correct (program ≫ read, erase ≫ program)
for the paper's overhead and lifetime results to keep their shape.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Latency parameters of the flash array and controller, in microseconds.

    Attributes
    ----------
    read_us:
        NAND array read (tR).
    program_us:
        NAND page program (tPROG).
    erase_us:
        NAND block erase (tBERS).
    bus_transfer_us_per_kb:
        Channel bus transfer cost per KiB moved between controller and die.
    controller_us:
        Fixed firmware/controller overhead added to every host command.
    dram_access_us:
        Cost of a hit in the on-board DRAM write buffer or mapping cache.
    log_append_us:
        Cost RSSD adds to append one entry to the hardware-assisted log
        (a DRAM append amortised over a batched flash flush).
    """

    read_us: float = 50.0
    program_us: float = 500.0
    erase_us: float = 3000.0
    bus_transfer_us_per_kb: float = 2.5
    controller_us: float = 3.0
    dram_access_us: float = 1.0
    log_append_us: float = 0.1

    def __post_init__(self) -> None:
        for name in (
            "read_us",
            "program_us",
            "erase_us",
            "bus_transfer_us_per_kb",
            "controller_us",
            "dram_access_us",
            "log_append_us",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def transfer_us(self, nbytes: int) -> float:
        """Bus transfer time for ``nbytes`` of data."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return self.bus_transfer_us_per_kb * (nbytes / 1024.0)

    def read_page_us(self, page_size: int) -> float:
        """End-to-end latency of reading one flash page."""
        return self.controller_us + self.read_us + self.transfer_us(page_size)

    def program_page_us(self, page_size: int) -> float:
        """End-to-end latency of programming one flash page."""
        return self.controller_us + self.program_us + self.transfer_us(page_size)

    def erase_block_us(self) -> float:
        """Latency of erasing one block."""
        return self.controller_us + self.erase_us

    def copyback_page_us(self, page_size: int) -> float:
        """Latency of relocating a page during GC (read + program)."""
        return self.read_page_us(page_size) + self.program_page_us(page_size)

    @classmethod
    def fast_nvme(cls) -> "LatencyModel":
        """Latency profile of a modern TLC NVMe drive."""
        return cls(
            read_us=60.0,
            program_us=700.0,
            erase_us=5000.0,
            bus_transfer_us_per_kb=1.2,
            controller_us=2.0,
            dram_access_us=0.8,
            log_append_us=0.1,
        )

    @classmethod
    def cosmos_openssd(cls) -> "LatencyModel":
        """Latency profile approximating the Cosmos+ OpenSSD MLC flash."""
        return cls(
            read_us=108.0,
            program_us=1800.0,
            erase_us=6000.0,
            bus_transfer_us_per_kb=3.0,
            controller_us=5.0,
            dram_access_us=1.0,
            log_append_us=0.15,
        )
