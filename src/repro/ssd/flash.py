"""NAND flash array model.

The array enforces the NAND state machine: pages are programmed once
per erase cycle, in order inside a block, and data disappears only when
the whole block is erased.  This "erase-before-rewrite" property is the
physical foundation of every retention-based ransomware defense in the
paper -- overwritten data is *not* destroyed by the overwrite itself.

Page payloads are represented by :class:`PageContent`.  Small working
sets (file-system examples, recovery correctness tests) carry real
bytes; large trace-driven experiments carry only a compact fingerprint
plus entropy/compressibility classes so terabyte-scale behaviour can be
simulated in memory.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ssd.errors import FlashStateError
from repro.ssd.geometry import SSDGeometry


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of ``data`` in bits per byte (0.0 for empty input)."""
    if not data:
        return 0.0
    counts: Dict[int, int] = {}
    for byte in data:
        counts[byte] = counts.get(byte, 0) + 1
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


@dataclass(frozen=True)
class PageContent:
    """Compact description of the data stored in one flash page.

    Attributes
    ----------
    fingerprint:
        64-bit content hash.  Two pages with the same fingerprint are
        treated as holding identical data; recovery correctness is
        checked against fingerprints (and against ``payload`` when one
        is carried).
    length:
        Number of valid bytes (<= page size).
    entropy:
        Shannon entropy estimate in bits/byte.  Encrypted data sits near
        8.0; typical user data sits well below.
    compress_ratio:
        Expected compressed size / original size in (0, 1].  Encrypted
        or already-compressed data is ~1.0.
    payload:
        Optional real bytes, carried only for small working sets.
    """

    fingerprint: int
    length: int
    entropy: float = 4.0
    compress_ratio: float = 0.5
    payload: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("length must be non-negative")
        if not 0.0 <= self.entropy <= 8.0:
            raise ValueError("entropy must be within [0, 8] bits per byte")
        if not 0.0 < self.compress_ratio <= 1.0:
            raise ValueError("compress_ratio must be within (0, 1]")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PageContent":
        """Build content carrying real bytes, deriving entropy and ratio."""
        digest = hashlib.blake2b(data, digest_size=8).digest()
        entropy = shannon_entropy(data)
        # Entropy is a serviceable proxy for compressibility: nearly
        # incompressible data has entropy close to 8 bits/byte.
        ratio = max(0.05, min(1.0, entropy / 8.0))
        return cls(
            fingerprint=int.from_bytes(digest, "big"),
            length=len(data),
            entropy=entropy,
            compress_ratio=ratio,
            payload=data,
        )

    @classmethod
    def synthetic(
        cls,
        fingerprint: int,
        length: int,
        entropy: float = 4.0,
        compress_ratio: float = 0.5,
    ) -> "PageContent":
        """Build descriptor-only content for trace-driven simulation."""
        return cls(
            fingerprint=fingerprint,
            length=length,
            entropy=entropy,
            compress_ratio=compress_ratio,
            payload=None,
        )

    @property
    def looks_encrypted(self) -> bool:
        """Heuristic used by entropy-based detectors."""
        return self.entropy >= 7.2

    def compressed_size(self) -> int:
        """Estimated size after compression, in bytes."""
        return max(1, int(self.length * self.compress_ratio))


class PageState(enum.Enum):
    """State of a physical flash page."""

    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


@dataclass
class FlashPage:
    """One physical flash page."""

    ppn: int
    state: PageState = PageState.FREE
    content: Optional[PageContent] = None
    lpn: Optional[int] = None
    program_timestamp_us: int = 0

    def reset(self) -> None:
        """Return the page to the erased state."""
        self.state = PageState.FREE
        self.content = None
        self.lpn = None
        self.program_timestamp_us = 0


@dataclass
class FlashBlock:
    """One erase block: a run of sequentially programmable pages.

    ``valid_count`` / ``invalid_count`` are maintained incrementally by
    :class:`FlashArray` so GC victim selection does not have to walk
    every page of every block; :meth:`count_state` remains as the slow,
    authoritative cross-check used by the tests.
    """

    block_index: int
    pages: List[FlashPage] = field(default_factory=list)
    erase_count: int = 0
    next_program_offset: int = 0
    valid_count: int = 0
    invalid_count: int = 0
    #: Timestamp of the newest program since the last erase.  Programs
    #: happen in order under a monotonic clock, so this equals the max
    #: over all pages -- kept incrementally for GC age scoring.
    last_program_timestamp_us: int = 0

    @property
    def size(self) -> int:
        return len(self.pages)

    @property
    def is_full(self) -> bool:
        """True once every page in the block has been programmed."""
        return self.next_program_offset >= len(self.pages)

    @property
    def is_erased(self) -> bool:
        """True if no page in the block has been programmed since erase."""
        return self.next_program_offset == 0

    def count_state(self, state: PageState) -> int:
        """Number of pages currently in ``state`` (authoritative page walk)."""
        return sum(1 for page in self.pages if page.state is state)

    @property
    def valid_pages(self) -> int:
        return self.valid_count

    @property
    def invalid_pages(self) -> int:
        return self.invalid_count

    @property
    def free_pages(self) -> int:
        return len(self.pages) - self.next_program_offset

    def iter_pages(self, state: Optional[PageState] = None) -> Iterator[FlashPage]:
        """Iterate pages, optionally filtered by state."""
        for page in self.pages:
            if state is None or page.state is state:
                yield page


class FlashArray:
    """The full NAND array: every block and page of the device.

    The array is deliberately policy-free -- it enforces only the NAND
    constraints (program erased pages in order, erase whole blocks) and
    leaves placement, mapping, and retention to the FTL above it.
    """

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        self._blocks: List[FlashBlock] = []
        for block_index in range(geometry.total_blocks):
            first_ppn = geometry.block_to_first_ppn(block_index)
            pages = [
                FlashPage(ppn=first_ppn + offset)
                for offset in range(geometry.pages_per_block)
            ]
            self._blocks.append(FlashBlock(block_index=block_index, pages=pages))
        # Incremental wear statistics: erase counts only change in
        # erase(), so the histogram keeps min/max/total O(1) -- the wear
        # leveler consults the spread on every host command.
        self._total_erases = 0
        self._erase_histogram: Dict[int, int] = {0: len(self._blocks)}
        self._min_erase = 0
        self._max_erase = 0

    # -- addressing -------------------------------------------------------

    def block(self, block_index: int) -> FlashBlock:
        """Return the erase block with the given index."""
        self.geometry.check_block(block_index)
        return self._blocks[block_index]

    def page(self, ppn: int) -> FlashPage:
        """Return the physical page with the given physical page number."""
        self.geometry.check_ppn(ppn)
        block = self._blocks[self.geometry.ppn_to_block(ppn)]
        return block.pages[self.geometry.ppn_to_page_offset(ppn)]

    def iter_blocks(self) -> Iterator[FlashBlock]:
        return iter(self._blocks)

    # -- NAND operations ---------------------------------------------------

    def program(
        self,
        block_index: int,
        content: PageContent,
        lpn: Optional[int],
        timestamp_us: int,
    ) -> int:
        """Program the next free page of ``block_index``.

        Returns the physical page number that was programmed.  Raises
        :class:`FlashStateError` if the block is full.
        """
        return self.program_into(self.block(block_index), content, lpn, timestamp_us)

    def program_into(
        self,
        block: FlashBlock,
        content: PageContent,
        lpn: Optional[int],
        timestamp_us: int,
    ) -> int:
        """Program the next free page of an already-resolved ``block``.

        Same NAND state machine as :meth:`program`; the batched write
        path caches the open block across a run instead of re-resolving
        it per page.
        """
        if block.is_full:
            raise FlashStateError(f"block {block.block_index} has no free pages")
        page = block.pages[block.next_program_offset]
        if page.state is not PageState.FREE:
            raise FlashStateError(
                f"page {page.ppn} is {page.state.value}, expected free"
            )
        page.state = PageState.VALID
        page.content = content
        page.lpn = lpn
        page.program_timestamp_us = timestamp_us
        block.next_program_offset += 1
        block.valid_count += 1
        if timestamp_us > block.last_program_timestamp_us:
            block.last_program_timestamp_us = timestamp_us
        return page.ppn

    def read(self, ppn: int) -> PageContent:
        """Read the content of a programmed page."""
        page = self.page(ppn)
        if page.state is PageState.FREE or page.content is None:
            raise FlashStateError(f"page {ppn} has never been programmed")
        return page.content

    def invalidate(self, ppn: int) -> FlashPage:
        """Mark a valid page invalid (its data remains readable until erase)."""
        self.geometry.check_ppn(ppn)
        pages_per_block = self.geometry.pages_per_block
        block = self._blocks[ppn // pages_per_block]
        page = block.pages[ppn % pages_per_block]
        if page.state is not PageState.VALID:
            raise FlashStateError(
                f"page {ppn} is {page.state.value}, expected valid"
            )
        page.state = PageState.INVALID
        block.valid_count -= 1
        block.invalid_count += 1
        return page

    def erase(self, block_index: int) -> FlashBlock:
        """Erase a whole block, destroying the data of every page in it."""
        block = self.block(block_index)
        if block.valid_pages:
            raise FlashStateError(
                f"block {block_index} still holds {block.valid_pages} valid pages"
            )
        for page in block.pages:
            page.reset()
        block.next_program_offset = 0
        previous = block.erase_count
        block.erase_count = previous + 1
        block.valid_count = 0
        block.invalid_count = 0
        block.last_program_timestamp_us = 0
        self._total_erases += 1
        histogram = self._erase_histogram
        histogram[previous] -= 1
        if histogram[previous] == 0:
            del histogram[previous]
        histogram[previous + 1] = histogram.get(previous + 1, 0) + 1
        if previous + 1 > self._max_erase:
            self._max_erase = previous + 1
        while self._min_erase not in histogram:
            self._min_erase += 1
        return block

    def set_erase_count(self, block_index: int, erase_count: int) -> None:
        """Force a block's erase count (tests / wear-injection only).

        Keeps the incremental wear histogram consistent; mutating
        ``block.erase_count`` directly would leave the O(1) statistics
        stale.  A :class:`~repro.ssd.ftl.BlockAllocator` holding the
        block in its free pool re-keys it lazily on the next
        allocation, so injected wear steers allocation order as it did
        with the old live scan.
        """
        if erase_count < 0:
            raise ValueError("erase_count must be non-negative")
        block = self.block(block_index)
        histogram = self._erase_histogram
        previous = block.erase_count
        self._total_erases += erase_count - previous
        histogram[previous] -= 1
        if histogram[previous] == 0:
            del histogram[previous]
        histogram[erase_count] = histogram.get(erase_count, 0) + 1
        block.erase_count = erase_count
        self._max_erase = max(histogram)
        self._min_erase = min(histogram)

    # -- statistics ---------------------------------------------------------

    def total_erases(self) -> int:
        """Sum of erase counts across every block (O(1), kept incrementally)."""
        return self._total_erases

    def max_erase_count(self) -> int:
        """Highest per-block erase count (wear hot spot)."""
        return self._max_erase

    def min_erase_count(self) -> int:
        """Lowest per-block erase count."""
        return self._min_erase

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def state_counts(self) -> Dict[PageState, int]:
        """Count pages in each state across the whole array."""
        counts = {state: 0 for state in PageState}
        for block in self._blocks:
            for state in PageState:
                counts[state] += block.count_state(state)
        return counts
