"""NAND flash array model.

The array enforces the NAND state machine: pages are programmed once
per erase cycle, in order inside a block, and data disappears only when
the whole block is erased.  This "erase-before-rewrite" property is the
physical foundation of every retention-based ransomware defense in the
paper -- overwritten data is *not* destroyed by the overwrite itself.

Since the kernel refactor the authoritative page/block state lives in
:class:`~repro.ssd.kernel.SimKernel` as struct-of-arrays columns.
:class:`FlashPage` and :class:`FlashBlock` are flyweight *views* over
those columns: they keep the historical object API (``page.state``,
``block.valid_pages``, ...) for tests, GC and the wear leveler, while
the hot batch paths bypass them entirely and operate on the arrays.

Page payloads are represented by :class:`PageContent`.  Small working
sets (file-system examples, recovery correctness tests) carry real
bytes; large trace-driven experiments carry only a compact fingerprint
plus entropy/compressibility classes so terabyte-scale behaviour can be
simulated in memory.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.compat import DATACLASS_SLOTS
from repro.ssd.errors import FlashStateError
from repro.ssd.geometry import SSDGeometry
from repro.ssd.kernel import NO_LPN, PAGE_FREE, PAGE_INVALID, PAGE_VALID, SimKernel


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of ``data`` in bits per byte (0.0 for empty input)."""
    if not data:
        return 0.0
    counts: Dict[int, int] = {}
    for byte in data:
        counts[byte] = counts.get(byte, 0) + 1
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


@dataclass(frozen=True, **DATACLASS_SLOTS)
class PageContent:
    """Compact description of the data stored in one flash page.

    Attributes
    ----------
    fingerprint:
        64-bit content hash.  Two pages with the same fingerprint are
        treated as holding identical data; recovery correctness is
        checked against fingerprints (and against ``payload`` when one
        is carried).
    length:
        Number of valid bytes (<= page size).
    entropy:
        Shannon entropy estimate in bits/byte.  Encrypted data sits near
        8.0; typical user data sits well below.
    compress_ratio:
        Expected compressed size / original size in (0, 1].  Encrypted
        or already-compressed data is ~1.0.
    payload:
        Optional real bytes, carried only for small working sets.
    """

    fingerprint: int
    length: int
    entropy: float = 4.0
    compress_ratio: float = 0.5
    payload: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("length must be non-negative")
        if not 0.0 <= self.entropy <= 8.0:
            raise ValueError("entropy must be within [0, 8] bits per byte")
        if not 0.0 < self.compress_ratio <= 1.0:
            raise ValueError("compress_ratio must be within (0, 1]")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PageContent":
        """Build content carrying real bytes, deriving entropy and ratio."""
        digest = hashlib.blake2b(data, digest_size=8).digest()
        entropy = shannon_entropy(data)
        # Entropy is a serviceable proxy for compressibility: nearly
        # incompressible data has entropy close to 8 bits/byte.
        ratio = max(0.05, min(1.0, entropy / 8.0))
        return cls(
            fingerprint=int.from_bytes(digest, "big"),
            length=len(data),
            entropy=entropy,
            compress_ratio=ratio,
            payload=data,
        )

    @classmethod
    def synthetic(
        cls,
        fingerprint: int,
        length: int,
        entropy: float = 4.0,
        compress_ratio: float = 0.5,
    ) -> "PageContent":
        """Build descriptor-only content for trace-driven simulation."""
        return cls(
            fingerprint=fingerprint,
            length=length,
            entropy=entropy,
            compress_ratio=compress_ratio,
            payload=None,
        )

    @classmethod
    def synthetic_run(
        cls,
        fingerprints: List[int],
        length: int,
        entropy: float = 4.0,
        compress_ratio: float = 0.5,
    ) -> List["PageContent"]:
        """Bulk :meth:`synthetic` for a page run sharing one descriptor.

        The replayer materialises one content object per written page,
        so construction cost is a measurable slice of trace replay.  The
        shared attributes are validated once up front, then the
        instances are built directly without re-running per-field
        validation.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if not 0.0 <= entropy <= 8.0:
            raise ValueError("entropy must be within [0, 8] bits per byte")
        if not 0.0 < compress_ratio <= 1.0:
            raise ValueError("compress_ratio must be within (0, 1]")
        new = cls.__new__
        fill = object.__setattr__
        run: List["PageContent"] = []
        append = run.append
        for fingerprint in fingerprints:
            content = new(cls)
            fill(content, "fingerprint", fingerprint)
            fill(content, "length", length)
            fill(content, "entropy", entropy)
            fill(content, "compress_ratio", compress_ratio)
            fill(content, "payload", None)
            append(content)
        return run

    @property
    def looks_encrypted(self) -> bool:
        """Heuristic used by entropy-based detectors."""
        return self.entropy >= 7.2

    def compressed_size(self) -> int:
        """Estimated size after compression, in bytes."""
        return max(1, int(self.length * self.compress_ratio))


class PageState(enum.Enum):
    """State of a physical flash page."""

    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


#: Kernel int codes <-> PageState enum members.
_INT_TO_STATE = {PAGE_FREE: PageState.FREE, PAGE_VALID: PageState.VALID, PAGE_INVALID: PageState.INVALID}
_STATE_TO_INT = {PageState.FREE: PAGE_FREE, PageState.VALID: PAGE_VALID, PageState.INVALID: PAGE_INVALID}


class FlashPage:
    """View of one physical flash page over the kernel's arrays."""

    __slots__ = ("_kernel", "ppn")

    def __init__(self, kernel: SimKernel, ppn: int) -> None:
        self._kernel = kernel
        self.ppn = ppn

    @property
    def state(self) -> PageState:
        return _INT_TO_STATE[int(self._kernel.page_state[self.ppn])]

    @property
    def content(self) -> Optional[PageContent]:
        return self._kernel.page_content[self.ppn]

    @property
    def lpn(self) -> Optional[int]:
        lpn = int(self._kernel.page_lpn[self.ppn])
        return None if lpn == NO_LPN else lpn

    @property
    def program_timestamp_us(self) -> int:
        return int(self._kernel.page_ts[self.ppn])


class FlashBlock:
    """View of one erase block over the kernel's arrays.

    ``valid_count`` / ``invalid_count`` are maintained incrementally by
    the kernel so GC victim selection does not have to walk every page
    of every block; :meth:`count_state` remains as the slow,
    authoritative cross-check used by the tests.
    """

    __slots__ = ("_kernel", "_array", "block_index")

    def __init__(self, kernel: SimKernel, array: "FlashArray", block_index: int) -> None:
        self._kernel = kernel
        self._array = array
        self.block_index = block_index

    @property
    def pages(self) -> List[FlashPage]:
        start = self.block_index * self._kernel.geometry.pages_per_block
        return [self._array.page(start + offset) for offset in range(self._kernel.geometry.pages_per_block)]

    @property
    def erase_count(self) -> int:
        return int(self._kernel.block_erase[self.block_index])

    @erase_count.setter
    def erase_count(self, value: int) -> None:
        # Direct assignment (tests / wear injection) bypasses the wear
        # histogram, exactly as mutating the old dataclass field did;
        # use FlashArray.set_erase_count to keep statistics consistent.
        self._kernel.block_erase[self.block_index] = value

    @property
    def next_program_offset(self) -> int:
        return int(self._kernel.block_next_off[self.block_index])

    @property
    def valid_count(self) -> int:
        return int(self._kernel.block_valid[self.block_index])

    @property
    def invalid_count(self) -> int:
        return int(self._kernel.block_invalid[self.block_index])

    @property
    def last_program_timestamp_us(self) -> int:
        return int(self._kernel.block_last_ts[self.block_index])

    @property
    def size(self) -> int:
        return self._kernel.geometry.pages_per_block

    @property
    def is_full(self) -> bool:
        """True once every page in the block has been programmed."""
        return self.next_program_offset >= self.size

    @property
    def is_erased(self) -> bool:
        """True if no page in the block has been programmed since erase."""
        return self.next_program_offset == 0

    def count_state(self, state: PageState) -> int:
        """Number of pages currently in ``state`` (authoritative page walk)."""
        return self._kernel.count_state_in_block(self.block_index, _STATE_TO_INT[state])

    @property
    def valid_pages(self) -> int:
        return self.valid_count

    @property
    def invalid_pages(self) -> int:
        return self.invalid_count

    @property
    def free_pages(self) -> int:
        return self.size - self.next_program_offset

    def iter_pages(self, state: Optional[PageState] = None) -> Iterator[FlashPage]:
        """Iterate pages, optionally filtered by state."""
        kernel = self._kernel
        pages_per_block = kernel.geometry.pages_per_block
        start = self.block_index * pages_per_block
        if state is None:
            for ppn in range(start, start + pages_per_block):
                yield self._array.page(ppn)
        else:
            code = _STATE_TO_INT[state]
            window = kernel.page_state[start : start + pages_per_block]
            for offset in np.nonzero(window == code)[0]:
                yield self._array.page(start + int(offset))


class FlashArray:
    """The full NAND array: every block and page of the device.

    The array is deliberately policy-free -- it enforces only the NAND
    constraints (program erased pages in order, erase whole blocks) and
    leaves placement, mapping, and retention to the FTL above it.  All
    state lives in the shared :class:`~repro.ssd.kernel.SimKernel`.
    """

    def __init__(self, geometry: SSDGeometry, kernel: Optional[SimKernel] = None) -> None:
        self.geometry = geometry
        self.kernel = kernel if kernel is not None else SimKernel(geometry)
        self._blocks = [FlashBlock(self.kernel, self, index) for index in range(geometry.total_blocks)]
        self._pages: Dict[int, FlashPage] = {}
        # Incremental wear statistics: erase counts only change in
        # erase(), so the histogram keeps min/max/total O(1) -- the wear
        # leveler consults the spread on every host command.
        self._total_erases = 0
        self._erase_histogram: Dict[int, int] = {0: len(self._blocks)}
        self._min_erase = 0
        self._max_erase = 0

    # -- addressing -------------------------------------------------------

    def block(self, block_index: int) -> FlashBlock:
        """Return the erase block with the given index."""
        self.geometry.check_block(block_index)
        return self._blocks[block_index]

    def page(self, ppn: int) -> FlashPage:
        """Return the physical page view with the given physical page number."""
        view = self._pages.get(ppn)
        if view is None:
            self.geometry.check_ppn(ppn)
            view = self._pages[ppn] = FlashPage(self.kernel, ppn)
        return view

    def iter_blocks(self) -> Iterator[FlashBlock]:
        return iter(self._blocks)

    # -- NAND operations ---------------------------------------------------

    def program(
        self,
        block_index: int,
        content: PageContent,
        lpn: Optional[int],
        timestamp_us: int,
    ) -> int:
        """Program the next free page of ``block_index``.

        Returns the physical page number that was programmed.  Raises
        :class:`FlashStateError` if the block is full.
        """
        return self.program_into(self.block(block_index), content, lpn, timestamp_us)

    def program_into(
        self,
        block: FlashBlock,
        content: PageContent,
        lpn: Optional[int],
        timestamp_us: int,
    ) -> int:
        """Program the next free page of an already-resolved ``block``.

        Same NAND state machine as :meth:`program`; the batched write
        path caches the open block across a run instead of re-resolving
        it per page.
        """
        kernel = self.kernel
        block_index = block.block_index
        offset = int(kernel.block_next_off[block_index])
        if offset >= self.geometry.pages_per_block:
            raise FlashStateError(f"block {block_index} has no free pages")
        ppn = block_index * self.geometry.pages_per_block + offset
        if kernel.page_state[ppn] != PAGE_FREE:
            state = _INT_TO_STATE[int(kernel.page_state[ppn])]
            raise FlashStateError(
                f"page {ppn} is {state.value}, expected free"
            )
        return kernel.program_page(block_index, content, lpn, timestamp_us)

    def program_run(
        self,
        block_index: int,
        contents: List[PageContent],
        lpns: np.ndarray,
        timestamp_us: int,
    ) -> np.ndarray:
        """Program a run of pages into ``block_index`` in a single array op.

        The batched write path uses this; the caller must have checked
        the block has ``len(contents)`` free pages (the FTL chunks runs
        at open-block boundaries, so it always holds).
        """
        kernel = self.kernel
        if int(kernel.block_next_off[block_index]) + len(contents) > self.geometry.pages_per_block:
            raise FlashStateError(f"block {block_index} has no free pages")
        return kernel.program_run(block_index, contents, lpns, timestamp_us)

    def read(self, ppn: int) -> PageContent:
        """Read the content of a programmed page."""
        self.geometry.check_ppn(ppn)
        content = self.kernel.page_content[ppn]
        if content is None:
            raise FlashStateError(f"page {ppn} has never been programmed")
        return content

    def invalidate(self, ppn: int) -> FlashPage:
        """Mark a valid page invalid (its data remains readable until erase)."""
        self.geometry.check_ppn(ppn)
        kernel = self.kernel
        if kernel.page_state[ppn] != PAGE_VALID:
            state = _INT_TO_STATE[int(kernel.page_state[ppn])]
            raise FlashStateError(
                f"page {ppn} is {state.value}, expected valid"
            )
        kernel.invalidate_page(ppn)
        return self.page(ppn)

    def erase(self, block_index: int) -> FlashBlock:
        """Erase a whole block, destroying the data of every page in it."""
        block = self.block(block_index)
        if block.valid_pages:
            raise FlashStateError(
                f"block {block_index} still holds {block.valid_pages} valid pages"
            )
        previous = block.erase_count
        self.kernel.erase_block(block_index)
        self._total_erases += 1
        histogram = self._erase_histogram
        histogram[previous] -= 1
        if histogram[previous] == 0:
            del histogram[previous]
        histogram[previous + 1] = histogram.get(previous + 1, 0) + 1
        if previous + 1 > self._max_erase:
            self._max_erase = previous + 1
        while self._min_erase not in histogram:
            self._min_erase += 1
        return block

    def set_erase_count(self, block_index: int, erase_count: int) -> None:
        """Force a block's erase count (tests / wear-injection only).

        Keeps the incremental wear histogram consistent; mutating
        ``block.erase_count`` directly would leave the O(1) statistics
        stale.  A :class:`~repro.ssd.ftl.BlockAllocator` holding the
        block in its free pool re-keys it lazily on the next
        allocation, so injected wear steers allocation order as it did
        with the old live scan.
        """
        if erase_count < 0:
            raise ValueError("erase_count must be non-negative")
        block = self.block(block_index)
        histogram = self._erase_histogram
        previous = block.erase_count
        self._total_erases += erase_count - previous
        histogram[previous] -= 1
        if histogram[previous] == 0:
            del histogram[previous]
        histogram[erase_count] = histogram.get(erase_count, 0) + 1
        self.kernel.block_erase[block_index] = erase_count
        self._max_erase = max(histogram)
        self._min_erase = min(histogram)

    # -- statistics ---------------------------------------------------------

    def total_erases(self) -> int:
        """Sum of erase counts across every block (O(1), kept incrementally)."""
        return self._total_erases

    def max_erase_count(self) -> int:
        """Highest per-block erase count (wear hot spot)."""
        return self._max_erase

    def min_erase_count(self) -> int:
        """Lowest per-block erase count."""
        return self._min_erase

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def state_counts(self) -> Dict[PageState, int]:
        """Count pages in each state across the whole array."""
        free, valid, invalid = self.kernel.state_counts()
        return {PageState.FREE: free, PageState.VALID: valid, PageState.INVALID: invalid}
