"""NAND-flash SSD substrate.

This package models the storage substrate that every defense in the
paper (including RSSD itself) is layered on: flash geometry, the
flash translation layer (FTL), garbage collection, wear leveling, the
on-board DRAM write buffer, a latency model calibrated to public NAND
datasheet numbers, and device-level statistics (write amplification,
erase counts, expected lifetime).

The central class is :class:`repro.ssd.device.SSD`, a block device with
``read`` / ``write`` / ``trim`` / ``flush`` operations.  Defense
policies hook into the device through a
:class:`repro.ssd.ftl.RetentionPolicy` (which decides whether stale
flash pages may be physically erased) and through operation observers.
"""

from repro.ssd.device import SSD, SSDBuilder
from repro.ssd.errors import (
    CapacityExhaustedError,
    FlashStateError,
    OutOfRangeError,
    SSDError,
)
from repro.ssd.flash import FlashArray, FlashBlock, FlashPage, PageContent, PageState
from repro.ssd.ftl import FTL, PageMetadata, PassthroughRetention, RetentionPolicy
from repro.ssd.gc import CostBenefitGC, GarbageCollector, GreedyGC
from repro.ssd.geometry import SSDGeometry
from repro.ssd.latency import LatencyModel
from repro.ssd.metrics import DeviceMetrics

__all__ = [
    "CapacityExhaustedError",
    "CostBenefitGC",
    "DeviceMetrics",
    "FTL",
    "FlashArray",
    "FlashBlock",
    "FlashPage",
    "FlashStateError",
    "GarbageCollector",
    "GreedyGC",
    "LatencyModel",
    "OutOfRangeError",
    "PageContent",
    "PageMetadata",
    "PageState",
    "PassthroughRetention",
    "RetentionPolicy",
    "SSD",
    "SSDBuilder",
    "SSDError",
    "SSDGeometry",
]
