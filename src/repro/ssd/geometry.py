"""SSD geometry description.

The geometry fixes how many flash pages the device exposes to the host
and how many it keeps as over-provisioning.  All sizes are in bytes and
page counts; the FTL and GC never deal with raw byte offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SSDGeometry:
    """Physical organisation of the flash array.

    Attributes
    ----------
    channels:
        Number of independent flash channels.
    chips_per_channel:
        NAND dies attached to each channel.
    blocks_per_chip:
        Erase blocks per die.
    pages_per_block:
        Program units per erase block.
    page_size:
        Bytes per flash page (the device's logical block size as well).
    overprovision_ratio:
        Fraction of raw capacity hidden from the host and reserved for
        garbage collection headroom (0.07-0.28 on commodity drives).
    """

    channels: int = 8
    chips_per_channel: int = 4
    blocks_per_chip: int = 128
    pages_per_block: int = 64
    page_size: int = 4096
    overprovision_ratio: float = 0.125

    # Derived sizes, precomputed once at construction: the FTL and flash
    # array consult them on every page program/invalidate, so they must
    # be plain attribute loads rather than recomputed products.
    total_chips: int = field(init=False, repr=False, compare=False)
    total_blocks: int = field(init=False, repr=False, compare=False)
    total_pages: int = field(init=False, repr=False, compare=False)
    raw_capacity_bytes: int = field(init=False, repr=False, compare=False)
    exported_pages: int = field(init=False, repr=False, compare=False)
    exported_capacity_bytes: int = field(init=False, repr=False, compare=False)
    block_size_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if min(
            self.channels,
            self.chips_per_channel,
            self.blocks_per_chip,
            self.pages_per_block,
            self.page_size,
        ) <= 0:
            raise ValueError("all geometry dimensions must be positive")
        if not 0.0 <= self.overprovision_ratio < 1.0:
            raise ValueError("overprovision_ratio must be in [0, 1)")
        set_attr = object.__setattr__  # frozen dataclass
        set_attr(self, "total_chips", self.channels * self.chips_per_channel)
        set_attr(self, "total_blocks", self.total_chips * self.blocks_per_chip)
        set_attr(self, "total_pages", self.total_blocks * self.pages_per_block)
        set_attr(self, "raw_capacity_bytes", self.total_pages * self.page_size)
        set_attr(
            self,
            "exported_pages",
            int(self.total_pages * (1.0 - self.overprovision_ratio)),
        )
        set_attr(
            self, "exported_capacity_bytes", self.exported_pages * self.page_size
        )
        set_attr(self, "block_size_bytes", self.pages_per_block * self.page_size)

    def ppn_to_block(self, ppn: int) -> int:
        """Map a physical page number to its erase-block index."""
        self.check_ppn(ppn)
        return ppn // self.pages_per_block

    def ppn_to_page_offset(self, ppn: int) -> int:
        """Map a physical page number to its offset inside its block."""
        self.check_ppn(ppn)
        return ppn % self.pages_per_block

    def block_to_first_ppn(self, block_index: int) -> int:
        """Physical page number of the first page in ``block_index``."""
        self.check_block(block_index)
        return block_index * self.pages_per_block

    def block_to_channel(self, block_index: int) -> int:
        """Channel that owns ``block_index`` (blocks are striped by chip)."""
        self.check_block(block_index)
        chip = block_index // self.blocks_per_chip
        return chip % self.channels

    def check_ppn(self, ppn: int) -> None:
        """Raise :class:`ValueError` if ``ppn`` is outside the array."""
        if not 0 <= ppn < self.total_pages:
            raise ValueError(f"physical page {ppn} outside [0, {self.total_pages})")

    def check_block(self, block_index: int) -> None:
        """Raise :class:`ValueError` if ``block_index`` is outside the array."""
        if not 0 <= block_index < self.total_blocks:
            raise ValueError(
                f"block {block_index} outside [0, {self.total_blocks})"
            )

    @classmethod
    def tiny(cls) -> "SSDGeometry":
        """A minimal geometry for unit tests (a few MB)."""
        return cls(
            channels=2,
            chips_per_channel=1,
            blocks_per_chip=16,
            pages_per_block=16,
            page_size=4096,
            overprovision_ratio=0.125,
        )

    @classmethod
    def small(cls) -> "SSDGeometry":
        """A small geometry for integration tests and examples (~128 MB)."""
        return cls(
            channels=4,
            chips_per_channel=2,
            blocks_per_chip=64,
            pages_per_block=64,
            page_size=4096,
            overprovision_ratio=0.125,
        )

    @classmethod
    def cosmos_openssd(cls) -> "SSDGeometry":
        """Geometry approximating the Cosmos+ OpenSSD board used by the paper.

        The real board exposes 1 TB over 8 channels / 8 ways; simulating a
        full terabyte page-by-page is unnecessary for the experiments, so
        the analytic retention model (:mod:`repro.analysis.retention`)
        scales results from smaller simulated arrays.  This constructor is
        provided for completeness and for capacity arithmetic.
        """
        return cls(
            channels=8,
            chips_per_channel=8,
            blocks_per_chip=4096,
            pages_per_block=256,
            page_size=16384,
            overprovision_ratio=0.07,
        )
