"""The SSD block device.

:class:`SSD` glues the substrate together: flash array, FTL, garbage
collector, wear leveler, DRAM write buffer, latency model and metrics.
It exposes the block interface every higher layer uses -- ``read``,
``write``, ``trim``, ``flush`` -- and two extension points that the
ransomware defenses are built on:

* a *retention policy* (``ftl.retention_policy``) deciding whether stale
  flash pages may be physically destroyed, and
* *observers* that see every host operation in arrival order (used by
  detection baselines and by RSSD's hardware-assisted log).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, Union

from repro.sim import SimClock
from repro.ssd.dram import WriteBuffer
from repro.ssd.errors import OutOfRangeError
from repro.ssd.flash import FlashArray, PageContent
from repro.ssd.ftl import FTL, RetentionPolicy, StalePage
from repro.ssd.gc import GarbageCollector, GCResult, GreedyGC
from repro.ssd.geometry import SSDGeometry
from repro.ssd.latency import LatencyModel
from repro.ssd.metrics import DeviceMetrics
from repro.ssd.wearlevel import StaticWearLeveler


class HostOpType(enum.Enum):
    """Host command types observed at the device interface."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"
    FLUSH = "flush"


@dataclass(frozen=True)
class HostOp:
    """One completed host command, as seen by observers.

    Observers receive these in exactly the order the device processed
    them, which is the ordering property RSSD's evidence chain relies
    on.
    """

    sequence: int
    op_type: HostOpType
    lba: int
    npages: int
    timestamp_us: int
    latency_us: float
    content: Optional[PageContent] = None
    stream_id: int = 0


class IOObserver(Protocol):
    """Anything that wants to watch host operations (detectors, loggers)."""

    def on_host_op(self, op: HostOp) -> None:
        """Called after the device completes each host command."""


DataLike = Union[bytes, PageContent, Sequence[PageContent]]


class SSD:
    """A simulated SSD with a page-granular block interface.

    Logical addresses are page indices (one LBA == one flash page).  A
    ``write`` with a ``bytes`` payload longer than one page spans
    consecutive LBAs.
    """

    def __init__(
        self,
        geometry: Optional[SSDGeometry] = None,
        latency: Optional[LatencyModel] = None,
        clock: Optional[SimClock] = None,
        retention_policy: Optional[RetentionPolicy] = None,
        gc: Optional[GarbageCollector] = None,
        write_buffer: Optional[WriteBuffer] = None,
        gc_threshold_blocks: int = 4,
        eager_trim_gc: bool = True,
    ) -> None:
        self.geometry = geometry if geometry is not None else SSDGeometry.small()
        self.latency = latency if latency is not None else LatencyModel()
        self.clock = clock if clock is not None else SimClock()
        self.flash = FlashArray(self.geometry)
        self.ftl = FTL(
            self.geometry,
            self.flash,
            self.clock,
            retention_policy=retention_policy,
            gc_threshold_blocks=gc_threshold_blocks,
        )
        self.gc = gc if gc is not None else GreedyGC()
        self.wear_leveler = StaticWearLeveler()
        self.write_buffer = write_buffer if write_buffer is not None else WriteBuffer()
        self.metrics = DeviceMetrics()
        self.eager_trim_gc = eager_trim_gc
        self.op_overhead_us: Dict[HostOpType, float] = {
            op_type: 0.0 for op_type in HostOpType
        }
        self.gc_time_us: float = 0.0
        self._observers: List[IOObserver] = []
        #: Passive callbacks invoked after every GC pass with
        #: ``(result, timestamp_us, forced)``.  The :mod:`repro.api`
        #: event bus taps this to publish typed ``GCEvent`` records;
        #: listeners must not mutate device state.
        self.gc_listeners: List[Callable[[GCResult, int, bool], None]] = []
        self._sequence = 0
        # Shared all-zero read buffers keyed by byte length.  Descriptor
        # -only batch reads return runs of zero pages; ``bytes`` is
        # immutable, so one buffer per distinct run length is safe to
        # hand out repeatedly instead of allocating megabytes per call.
        self._zero_runs: Dict[int, bytes] = {}
        # Folded per-run read latency keyed by (overhead, per-page cost,
        # run length): the repeated float addition the per-op path
        # performs, evaluated once per distinct key.
        self._read_run_latency: Dict[Tuple[float, float, int], float] = {}

    # -- configuration -------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        """Host-visible capacity in logical pages."""
        return self.geometry.exported_pages

    @property
    def page_size(self) -> int:
        return self.geometry.page_size

    def set_retention_policy(self, policy: RetentionPolicy) -> None:
        """Install a retention policy (used by defenses layered on the device)."""
        self.ftl.retention_policy = policy

    def add_observer(self, observer: IOObserver) -> None:
        """Register an observer that sees every completed host command."""
        self._observers.append(observer)

    def remove_observer(self, observer: IOObserver) -> None:
        self._observers.remove(observer)

    def add_op_overhead(self, op_type: HostOpType, extra_us: float) -> None:
        """Add a fixed per-command latency overhead (e.g. RSSD log append)."""
        if extra_us < 0:
            raise ValueError("extra_us must be non-negative")
        self.op_overhead_us[op_type] += extra_us

    # -- host interface --------------------------------------------------------

    def read(self, lba: int, npages: int = 1, stream_id: int = 0) -> bytes:
        """Read ``npages`` logical pages starting at ``lba``.

        Unmapped pages and descriptor-only pages read back as zeros, so
        callers that care about content identity should prefer
        :meth:`read_content`.
        """
        self._check_range(lba, npages)
        chunks: List[bytes] = []
        total_latency = self.op_overhead_us[HostOpType.READ]
        for offset in range(npages):
            content = self.ftl.read(lba + offset)
            if content is not None and content.payload is not None:
                chunk = content.payload.ljust(self.page_size, b"\x00")
            else:
                chunk = b"\x00" * self.page_size
            chunks.append(chunk)
            if content is None:
                total_latency += self.latency.dram_access_us
            else:
                total_latency += self.latency.read_page_us(self.page_size)
            self.metrics.flash_pages_read += 1
        self._complete_op(
            HostOpType.READ, lba, npages, total_latency, content=None, stream_id=stream_id
        )
        self.metrics.host_reads += 1
        self.metrics.host_pages_read += npages
        return b"".join(chunks)

    def read_content(self, lba: int) -> Optional[PageContent]:
        """Return the live content descriptor of ``lba`` without latency accounting."""
        self._check_range(lba, 1)
        return self.ftl.read(lba)

    def write(self, lba: int, data: DataLike, stream_id: int = 0) -> HostOp:
        """Write ``data`` starting at logical page ``lba``.

        ``data`` may be raw bytes (split across pages), a single
        :class:`PageContent`, or a sequence of page contents.
        """
        contents = self._to_page_contents(data)
        self._check_range(lba, len(contents))
        total_latency = self.op_overhead_us[HostOpType.WRITE]
        for offset, content in enumerate(contents):
            # Large requests can span several erase blocks; keep the free
            # pool above the GC threshold page by page so a single burst
            # cannot exhaust the allocator mid-request.
            if self.ftl.needs_gc():
                self._run_gc(force=False)
            self.ftl.write(lba + offset, content)
            self.metrics.flash_pages_programmed += 1
            if self.write_buffer.admit(self.clock.now_us):
                total_latency += (
                    self.latency.controller_us
                    + self.latency.dram_access_us
                    + self.latency.transfer_us(content.length)
                )
            else:
                total_latency += self.latency.program_page_us(self.page_size)
        self.metrics.host_writes += 1
        self.metrics.host_pages_written += len(contents)
        op = self._complete_op(
            HostOpType.WRITE,
            lba,
            len(contents),
            total_latency,
            content=contents[0],
            stream_id=stream_id,
        )
        self._maybe_collect()
        return op

    def trim(self, lba: int, npages: int = 1, stream_id: int = 0) -> List[StalePage]:
        """Trim ``npages`` logical pages starting at ``lba``.

        On an unmodified SSD, trimmed data becomes immediately
        reclaimable and (with ``eager_trim_gc``) is physically erased at
        the next GC pass -- the behaviour the trimming attack exploits.
        """
        self._check_range(lba, npages)
        records: List[StalePage] = []
        total_latency = self.op_overhead_us[HostOpType.TRIM] + self.latency.controller_us
        for offset in range(npages):
            record = self.ftl.trim(lba + offset)
            if record is not None:
                records.append(record)
            total_latency += self.latency.dram_access_us
        self.metrics.host_trims += 1
        self.metrics.host_pages_trimmed += npages
        self._complete_op(
            HostOpType.TRIM, lba, npages, total_latency, content=None, stream_id=stream_id
        )
        if self.eager_trim_gc and records:
            self._run_gc(force=True)
        else:
            self._maybe_collect()
        return records

    # -- batched host interface ------------------------------------------------
    #
    # The batched entry points program many pages per Python call: one
    # command overhead, per-page flash cost, one aggregated HostOp (so
    # observers such as the operation log and the local detector append
    # per batch).  They perform exactly the state transitions of the
    # per-op methods above, in the same order, so device state, metrics
    # and the evidence chain stay bit-identical between the two paths --
    # a property the equivalence tests pin down.

    def read_batch(self, lba: int, npages: int = 1, stream_id: int = 0) -> bytes:
        """Vectorized form of :meth:`read` for a contiguous LBA run."""
        self._check_range(lba, npages)
        page_size = self.page_size
        read_cost = self.latency.read_page_us(page_size)
        dram_cost = self.latency.dram_access_us
        total_latency = self.op_overhead_us[HostOpType.READ]
        if self.flash.kernel.payload_pages == 0:
            # Descriptor-only working set (trace-driven experiments):
            # every page reads back as zeros, so latency is accounted
            # straight off the mapping column without materialising a
            # content object per page.  The per-page float accumulation
            # order is preserved -- the per-op path adds the same costs
            # page by page.  Fully mapped runs (the common case once a
            # trace has warmed up) fold to a deterministic sum, which is
            # computed once by the same repeated addition and cached.
            ppns = self.ftl.read_ppns(lba, npages)
            if int(ppns.min()) >= 0:
                key = (total_latency, read_cost, npages)
                cached = self._read_run_latency.get(key)
                if cached is None:
                    cached = total_latency
                    for _ in range(npages):
                        cached += read_cost
                    self._read_run_latency[key] = cached
                total_latency = cached
            else:
                for mapped in (ppns >= 0).tolist():
                    total_latency += read_cost if mapped else dram_cost
            nbytes = page_size * npages
            data = self._zero_runs.get(nbytes)
            if data is None:
                data = b"\x00" * nbytes
                self._zero_runs[nbytes] = data
        else:
            zero_page = b"\x00" * page_size
            chunks: List[bytes] = []
            for content in self.ftl.read_run(lba, npages):
                if content is not None and content.payload is not None:
                    chunks.append(content.payload.ljust(page_size, b"\x00"))
                else:
                    chunks.append(zero_page)
                if content is None:
                    total_latency += dram_cost
                else:
                    total_latency += read_cost
            data = b"".join(chunks)
        self.metrics.flash_pages_read += npages
        self._complete_op(
            HostOpType.READ, lba, npages, total_latency, content=None, stream_id=stream_id
        )
        self.metrics.host_reads += 1
        self.metrics.host_pages_read += npages
        return data

    def write_batch(self, lba: int, data: DataLike, stream_id: int = 0) -> HostOp:
        """Vectorized form of :meth:`write` for a contiguous LBA run."""
        contents = self._to_page_contents(data)
        self._check_range(lba, len(contents))
        metrics = self.metrics
        clock = self.clock
        buffer = self.write_buffer
        latency = self.latency
        buffer_hit_cost = latency.controller_us + latency.dram_access_us
        transfer = latency.transfer_us
        program_cost = latency.program_page_us(self.page_size)
        needs_gc = self.ftl.needs_gc
        total_latency = self.op_overhead_us[HostOpType.WRITE]

        def gc_check() -> None:
            # Same per-page guard as the per-op path: a large run can
            # span several erase blocks, so the free pool is kept above
            # the GC threshold page by page (the FTL degrades to
            # one-page chunks whenever the pool sits at the threshold).
            if needs_gc():
                self._run_gc(force=False)

        def on_chunk(chunk: List[PageContent]) -> None:
            # The clock only moves while GC runs, so every admit() of
            # the per-op path within this chunk would see the same
            # timestamp: one batched admission gives the identical
            # admitted/rejected split and buffer statistics.  The float
            # latency accumulation stays per-page, in page order, so the
            # total is bit-identical to the per-op sum.
            nonlocal total_latency
            metrics.flash_pages_programmed += len(chunk)
            admitted = buffer.admit_run(clock.now_us, len(chunk))
            for index, content in enumerate(chunk):
                if index < admitted:
                    total_latency += buffer_hit_cost + transfer(content.length)
                else:
                    total_latency += program_cost

        self.ftl.write_run(lba, contents, gc_check=gc_check, on_chunk=on_chunk)
        metrics.host_writes += 1
        metrics.host_pages_written += len(contents)
        op = self._complete_op(
            HostOpType.WRITE,
            lba,
            len(contents),
            total_latency,
            content=contents[0],
            stream_id=stream_id,
        )
        self._maybe_collect()
        return op

    def trim_range(self, lba: int, npages: int = 1, stream_id: int = 0) -> List[StalePage]:
        """Vectorized form of :meth:`trim` for a contiguous LBA run."""
        self._check_range(lba, npages)
        records = self.ftl.trim_run(lba, npages)
        dram_cost = self.latency.dram_access_us
        total_latency = self.op_overhead_us[HostOpType.TRIM] + self.latency.controller_us
        for _ in range(npages):
            total_latency += dram_cost
        self.metrics.host_trims += 1
        self.metrics.host_pages_trimmed += npages
        self._complete_op(
            HostOpType.TRIM, lba, npages, total_latency, content=None, stream_id=stream_id
        )
        if self.eager_trim_gc and records:
            self._run_gc(force=True)
        else:
            self._maybe_collect()
        return records

    def flush(self, stream_id: int = 0) -> int:
        """Flush the DRAM write buffer.  Returns the number of pages destaged."""
        destaged = self.write_buffer.flush(self.clock.now_us)
        latency = (
            self.op_overhead_us[HostOpType.FLUSH]
            + self.latency.controller_us
            + destaged * self.latency.program_us * 0.1
        )
        self.metrics.host_flushes += 1
        self._complete_op(HostOpType.FLUSH, 0, 0, latency, content=None, stream_id=stream_id)
        return destaged

    # -- background machinery ----------------------------------------------------

    def _maybe_collect(self) -> None:
        if self.ftl.needs_gc():
            self._run_gc(force=False)
        # Static wear leveling copies live data around, so it only runs when
        # the free pool has comfortable headroom beyond the GC threshold.
        if (
            self.ftl.allocator.free_blocks > self.ftl.gc_threshold_blocks + 2
            and self.wear_leveler.should_run(self.flash)
        ):
            moved = self.wear_leveler.run(self.ftl)
            self.metrics.gc_pages_relocated += moved

    def _run_gc(self, force: bool) -> GCResult:
        result = self.gc.collect(self.ftl, force=force)
        self.metrics.gc_invocations += 1
        self.metrics.gc_pages_relocated += result.pages_relocated
        self.metrics.gc_stale_pages_preserved += result.stale_pages_preserved
        self.metrics.gc_stale_pages_released += result.stale_pages_released
        self.metrics.flash_pages_programmed += result.pages_relocated
        self.metrics.flash_blocks_erased += result.blocks_erased
        gc_latency = (
            result.pages_relocated * self.latency.copyback_page_us(self.page_size)
            + result.blocks_erased * self.latency.erase_block_us()
        )
        self.gc_time_us += gc_latency
        self.clock.advance(int(gc_latency))
        self.metrics.retained_pages_current = self.ftl.stale_pages
        for listener in self.gc_listeners:
            listener(result, self.clock.now_us, force)
        return result

    def run_gc_now(self, force: bool = True) -> GCResult:
        """Run a GC pass on demand (used by tests and the trim ablation)."""
        return self._run_gc(force=force)

    # -- helpers --------------------------------------------------------------------

    def _to_page_contents(self, data: DataLike) -> List[PageContent]:
        if isinstance(data, PageContent):
            return [data]
        if isinstance(data, (bytes, bytearray, memoryview)):
            raw = bytes(data)
            if not raw:
                raise ValueError("cannot write an empty payload")
            return [
                PageContent.from_bytes(raw[offset : offset + self.page_size])
                for offset in range(0, len(raw), self.page_size)
            ]
        contents = list(data)
        if not contents:
            raise ValueError("cannot write an empty sequence of pages")
        if not all(isinstance(content, PageContent) for content in contents):
            raise TypeError("sequence writes must contain PageContent items")
        return contents

    def _check_range(self, lba: int, npages: int) -> None:
        if npages < 0:
            raise ValueError("npages must be non-negative")
        if lba < 0 or lba + max(npages, 1) > self.capacity_pages:
            raise OutOfRangeError(
                f"LBA range [{lba}, {lba + npages}) outside device capacity "
                f"{self.capacity_pages} pages"
            )

    def _complete_op(
        self,
        op_type: HostOpType,
        lba: int,
        npages: int,
        latency_us: float,
        content: Optional[PageContent],
        stream_id: int,
    ) -> HostOp:
        self.clock.advance(int(latency_us))
        op = HostOp(
            sequence=self._sequence,
            op_type=op_type,
            lba=lba,
            npages=npages,
            timestamp_us=self.clock.now_us,
            latency_us=latency_us,
            content=content,
            stream_id=stream_id,
        )
        self._sequence += 1
        self.metrics.record_latency(op_type.value, latency_us)
        for observer in self._observers:
            observer.on_host_op(op)
        return op


class SSDBuilder:
    """Fluent builder for SSD instances used throughout tests and examples."""

    def __init__(self) -> None:
        self._geometry = SSDGeometry.small()
        self._latency = LatencyModel()
        self._clock: Optional[SimClock] = None
        self._retention: Optional[RetentionPolicy] = None
        self._gc: Optional[GarbageCollector] = None
        self._gc_threshold = 4
        self._eager_trim_gc = True

    def with_geometry(self, geometry: SSDGeometry) -> "SSDBuilder":
        self._geometry = geometry
        return self

    def with_latency(self, latency: LatencyModel) -> "SSDBuilder":
        self._latency = latency
        return self

    def with_clock(self, clock: SimClock) -> "SSDBuilder":
        self._clock = clock
        return self

    def with_retention_policy(self, policy: RetentionPolicy) -> "SSDBuilder":
        self._retention = policy
        return self

    def with_gc(self, gc: GarbageCollector) -> "SSDBuilder":
        self._gc = gc
        return self

    def with_gc_threshold(self, blocks: int) -> "SSDBuilder":
        self._gc_threshold = blocks
        return self

    def with_eager_trim_gc(self, enabled: bool) -> "SSDBuilder":
        self._eager_trim_gc = enabled
        return self

    def build(self) -> SSD:
        return SSD(
            geometry=self._geometry,
            latency=self._latency,
            clock=self._clock,
            retention_policy=self._retention,
            gc=self._gc,
            gc_threshold_blocks=self._gc_threshold,
            eager_trim_gc=self._eager_trim_gc,
        )
