"""Exception hierarchy for the SSD substrate."""

from __future__ import annotations


class SSDError(Exception):
    """Base class for every error raised by the SSD substrate."""


class OutOfRangeError(SSDError):
    """A logical or physical address is outside the device's range."""


class FlashStateError(SSDError):
    """A flash operation violates the NAND state machine.

    Examples: programming a page that is not erased, reading an erased
    page, or erasing a block that still holds pages that the retention
    policy forbids destroying.
    """


class CapacityExhaustedError(SSDError):
    """The device ran out of physical space.

    A correctly functioning FTL reclaims space via garbage collection
    before this happens; it can legitimately occur when a retention
    policy pins so many stale pages that GC cannot free a single block
    (which is exactly the pressure the paper's GC attack creates).
    """


class FirmwareProtectionError(SSDError):
    """A host-side actor attempted an operation reserved for firmware.

    Models the hardware isolation boundary of the paper's threat model:
    the OS (even with root privilege) cannot reconfigure the retention
    or offload machinery of the device.
    """
