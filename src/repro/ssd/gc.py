"""Garbage collection policies.

GC reclaims erase blocks when the free-block pool runs low.  Valid
pages in a victim block are always relocated; stale (invalid) pages are
released or preserved according to the FTL's retention policy.  The
*net* space gained from a victim is therefore the number of stale pages
the policy lets go -- which is exactly the resource the paper's GC
attack starves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ssd.errors import CapacityExhaustedError
from repro.ssd.flash import FlashBlock
from repro.ssd.ftl import FTL
from repro.ssd.kernel import PAGE_INVALID, PAGE_VALID


@dataclass
class GCResult:
    """Outcome of one garbage-collection pass."""

    blocks_erased: int = 0
    valid_pages_relocated: int = 0
    stale_pages_preserved: int = 0
    stale_pages_released: int = 0
    reclaim_pressure_events: int = 0
    stalled: bool = False

    @property
    def pages_relocated(self) -> int:
        """Total flash programs caused by this pass."""
        return self.valid_pages_relocated + self.stale_pages_preserved

    def merge(self, other: "GCResult") -> None:
        """Accumulate another pass's counters into this one."""
        self.blocks_erased += other.blocks_erased
        self.valid_pages_relocated += other.valid_pages_relocated
        self.stale_pages_preserved += other.stale_pages_preserved
        self.stale_pages_released += other.stale_pages_released
        self.reclaim_pressure_events += other.reclaim_pressure_events
        self.stalled = self.stalled or other.stalled


class GarbageCollector:
    """Base garbage collector; subclasses choose victims differently."""

    def __init__(self, max_blocks_per_pass: int = 8, victim_scan_width: int = 8) -> None:
        if max_blocks_per_pass < 1:
            raise ValueError("max_blocks_per_pass must be at least 1")
        if victim_scan_width < 1:
            raise ValueError("victim_scan_width must be at least 1")
        self.max_blocks_per_pass = max_blocks_per_pass
        #: How many of the most-invalidated blocks get a full page-level
        #: scoring scan per victim selection (keeps GC cost bounded on
        #: large arrays).
        self.victim_scan_width = victim_scan_width

    # -- victim scoring (override in subclasses) ---------------------------

    def score_victim(self, ftl: FTL, block: FlashBlock) -> float:
        """Higher score means a better victim.  Subclasses override."""
        return self.score_from_accounting(ftl, block, self._block_accounting(ftl, block))

    def score_from_accounting(
        self, ftl: FTL, block: FlashBlock, accounting: Tuple[int, int, int]
    ) -> float:
        """Score a victim from pre-computed page accounting.  Subclasses override."""
        raise NotImplementedError

    def _block_accounting(self, ftl: FTL, block: FlashBlock) -> Tuple[int, int, int]:
        """Return (releasable, must_preserve, valid) page counts for a block.

        Valid/invalid totals come from the block's incrementally
        maintained counters and stale records from the FTL's per-block
        index, so the cost is proportional to the block's *retained*
        pages rather than its size.  Invalid pages without a record
        (already released or dropped) are releasable by definition.
        """
        valid = block.valid_count
        records = ftl.stale_records_in_block(block.block_index)
        releasable = block.invalid_count - len(records)
        policy = ftl.retention_policy
        count_releasable = getattr(policy, "count_releasable", None)
        if count_releasable is not None:
            released = count_releasable(records)
            return releasable + released, len(records) - released, valid
        must_preserve = 0
        may_release = policy.may_release
        for record in records:
            if may_release(record):
                releasable += 1
            else:
                must_preserve += 1
        return releasable, must_preserve, valid

    def select_victim(self, ftl: FTL) -> Optional[FlashBlock]:
        """Pick the victim block with the highest positive score.

        Candidates are pre-ranked by their (cheaply maintained) invalid
        page count; only the top ``victim_scan_width`` get the full
        page-level accounting, then blocks with no releasable page are
        skipped.  If the pre-ranked slice yields nothing releasable the
        scan falls back to the full candidate list so retention-heavy
        devices still find the odd releasable page.
        """
        candidates = ftl.reclaimable_blocks()
        # Ties break toward the lowest block index, matching the old
        # full-array walk so victim choice stays deterministic.
        candidates.sort(key=lambda block: (-block.invalid_pages, block.block_index))
        for scan in (candidates[: self.victim_scan_width], candidates[self.victim_scan_width :]):
            best: Optional[FlashBlock] = None
            best_score = 0.0
            for block in scan:
                accounting = self._block_accounting(ftl, block)
                if accounting[0] == 0:
                    continue
                score = self.score_from_accounting(ftl, block, accounting)
                if best is None or score > best_score:
                    best = block
                    best_score = score
            if best is not None:
                return best
        return None

    # -- reclaim -------------------------------------------------------------

    def collect(self, ftl: FTL, force: bool = False) -> GCResult:
        """Run GC passes until the device no longer needs space.

        With ``force=True`` a single pass is run even if the free pool is
        above the threshold (used by trim-triggered eager collection).
        Raises :class:`CapacityExhaustedError` only if the retention
        policy cannot relieve pressure and no space can be reclaimed at
        all; otherwise the result's ``stalled`` flag reports temporary
        back-pressure.
        """
        result = GCResult()
        passes = 0
        while (ftl.needs_gc() or (force and passes == 0)) and (
            passes < self.max_blocks_per_pass
        ):
            victim = self.select_victim(ftl)
            if victim is None:
                needed = ftl.geometry.pages_per_block
                released = ftl.signal_reclaim_pressure(needed)
                result.reclaim_pressure_events += 1
                if released == 0:
                    if ftl.free_pages == 0 and not force:
                        raise CapacityExhaustedError(
                            "GC cannot reclaim space: every stale page is "
                            "pinned by the retention policy and the policy "
                            "could not relieve pressure"
                        )
                    result.stalled = True
                    break
                continue
            result.merge(self._reclaim_block(ftl, victim))
            passes += 1
        return result

    def _reclaim_block(self, ftl: FTL, victim: FlashBlock) -> GCResult:
        """Relocate / release every page of ``victim`` and erase it.

        Page states are snapshotted straight off the kernel's state
        column (relocations performed during the pass only touch the
        processed page itself and the separate open GC block, never a
        later page of the victim, so the snapshot stays faithful).
        """
        result = GCResult()
        kernel = ftl.kernel
        pages_per_block = ftl.geometry.pages_per_block
        start = victim.block_index * pages_per_block
        states = kernel.page_state[start : start + pages_per_block].tolist()
        may_release = ftl.retention_policy.may_release
        for offset, state in enumerate(states):
            ppn = start + offset
            if state == PAGE_VALID:
                ftl.relocate_valid_page(ppn)
                result.valid_pages_relocated += 1
            elif state == PAGE_INVALID:
                record = ftl.stale_record_at(ppn)
                if record is None:
                    continue
                if may_release(record):
                    ftl.release_stale_page(record)
                    result.stale_pages_released += 1
                else:
                    ftl.relocate_stale_page(record)
                    result.stale_pages_preserved += 1
        ftl.finish_block_erase(victim)
        result.blocks_erased += 1
        return result


class GreedyGC(GarbageCollector):
    """Classic greedy GC: pick the block with the most reclaimable pages."""

    def score_from_accounting(self, ftl, block, accounting) -> float:
        releasable, must_preserve, valid = accounting
        # Relocations (valid + preserved stale) cost space and time, so
        # net them out of the score.
        return float(releasable) - 0.5 * float(valid + must_preserve)


class CostBenefitGC(GarbageCollector):
    """Cost-benefit GC: weigh reclaimable space against copy cost and age.

    Uses the standard (benefit / cost) * age formulation where benefit is
    the fraction of the block that can be freed and cost is the fraction
    that must be copied out.
    """

    def __init__(
        self,
        max_blocks_per_pass: int = 8,
        victim_scan_width: int = 8,
        age_weight: float = 1.0,
    ) -> None:
        super().__init__(
            max_blocks_per_pass=max_blocks_per_pass,
            victim_scan_width=victim_scan_width,
        )
        if age_weight < 0:
            raise ValueError("age_weight must be non-negative")
        self.age_weight = age_weight

    def score_from_accounting(self, ftl, block, accounting) -> float:
        releasable, must_preserve, valid = accounting
        size = float(block.size)
        benefit = releasable / size
        cost = (valid + must_preserve) / size
        age_us = max(0, ftl.clock.now_us - block.last_program_timestamp_us)
        age_factor = 1.0 + self.age_weight * (age_us / 1_000_000.0)
        if cost >= 1.0:
            return 0.0
        return (benefit / (1.0 + cost)) * age_factor
