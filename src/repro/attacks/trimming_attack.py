"""The trimming attack.

The trim command exists so the host can tell the SSD which pages are
dead; commodity firmware responds by erasing them soon after, skipping
the retention window every flash-based defense relies on.  The trimming
attack therefore encrypts each file into a *new* file and then deletes
and trims the original extent, physically destroying the plaintext.
"""

from __future__ import annotations

from repro.attacks.base import AttackEnvironment, AttackOutcome, RansomwareAttack
from repro.core.trim_handler import TrimRejectedError
from repro.ssd.errors import SSDError


class TrimmingAttack(RansomwareAttack):
    """Encrypt to new files, then trim the originals."""

    name = "trimming-attack"
    aggressive = True

    def __init__(self, inter_file_delay_us: int = 2_000, **kwargs) -> None:
        super().__init__(**kwargs)
        if inter_file_delay_us < 0:
            raise ValueError("inter_file_delay_us must be non-negative")
        self.inter_file_delay_us = inter_file_delay_us

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Encrypt to new files, then trim each original extent away."""
        outcome = AttackOutcome(
            attack_name=self.name,
            start_us=env.clock.now_us,
            end_us=env.clock.now_us,
            malicious_streams=[env.attacker_stream],
        )
        self._capture_originals(env, outcome)
        victims = list(outcome.victim_files)
        for name in victims:
            plaintext = env.fs.read_file(name)
            ciphertext = self._encrypt_bytes(plaintext)
            lbas = env.fs.file_lbas(name)
            with self._as_attacker(env):
                env.fs.create_file(name + ".locked", ciphertext)
                try:
                    env.fs.delete_file(name, trim=True)
                    outcome.pages_trimmed += len(lbas)
                except (TrimRejectedError, SSDError):
                    # Trim rejected (DISABLED mode): fall back to a plain
                    # delete, which leaves the plaintext to normal GC.
                    if env.fs.exists(name):
                        env.fs.delete_file(name, trim=False)
            outcome.pages_encrypted += (
                len(plaintext) + env.blockdev.page_size - 1
            ) // env.blockdev.page_size
            env.clock.advance(self.inter_file_delay_us)
        self._drop_ransom_note(env, outcome)
        outcome.end_us = env.clock.now_us
        return outcome
