"""Classic encryption ransomware.

The canonical behaviour observed across the families the paper studies:
read a victim file, encrypt it, destroy the original copy, repeat, and
finally drop a ransom note.  The way the original is destroyed is the
main behavioural difference between families and is configurable:

* ``OVERWRITE`` -- encrypt in place (WannaCry-like).
* ``DELETE``    -- write the ciphertext to a new file and delete the
  original through the file system (Locky-like).
* ``TRIM``      -- delete the original *and* trim its extent, which on
  a commodity SSD physically erases the plaintext (this is the
  building block the dedicated trimming attack escalates).
"""

from __future__ import annotations

import enum

from repro.attacks.base import AttackEnvironment, AttackOutcome, RansomwareAttack


class DestructionMode(enum.Enum):
    """How the original plaintext copy is destroyed after encryption."""

    OVERWRITE = "overwrite"
    DELETE = "delete"
    TRIM = "trim"


class ClassicRansomware(RansomwareAttack):
    """Fast, bulk, in-place encryption ransomware.

    Classic samples typically run in the victim user's context and do
    not bother disabling backup agents first -- that escalation is what
    distinguishes the newer, more aggressive attack models.
    """

    name = "classic"
    aggressive = False

    def __init__(
        self,
        destruction: DestructionMode = DestructionMode.OVERWRITE,
        inter_file_delay_us: int = 2_000,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if inter_file_delay_us < 0:
            raise ValueError("inter_file_delay_us must be non-negative")
        self.destruction = destruction
        self.inter_file_delay_us = inter_file_delay_us

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Encrypt every victim file, destroying originals per ``destruction``."""
        outcome = AttackOutcome(
            attack_name=self.name,
            start_us=env.clock.now_us,
            end_us=env.clock.now_us,
            malicious_streams=[env.attacker_stream],
        )
        self._capture_originals(env, outcome)
        victims = list(outcome.victim_files)
        for name in victims:
            plaintext = env.fs.read_file(name)
            ciphertext = self._encrypt_bytes(plaintext)
            with self._as_attacker(env):
                if self.destruction is DestructionMode.OVERWRITE:
                    env.fs.overwrite_file(name, ciphertext)
                elif self.destruction is DestructionMode.DELETE:
                    env.fs.delete_file(name, trim=False)
                    env.fs.create_file(name + ".locked", ciphertext)
                else:
                    lbas = env.fs.file_lbas(name)
                    env.fs.delete_file(name, trim=True)
                    env.fs.create_file(name + ".locked", ciphertext)
                    outcome.pages_trimmed += len(lbas)
            outcome.pages_encrypted += (len(plaintext) + env.blockdev.page_size - 1) // env.blockdev.page_size
            env.clock.advance(self.inter_file_delay_us)
        self._drop_ransom_note(env, outcome)
        outcome.end_us = env.clock.now_us
        return outcome
