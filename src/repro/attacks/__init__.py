"""Ransomware attack models.

Attacks run against a victim environment (a file system on a block
device) exactly the way real samples do: read a file, encrypt it, and
destroy the original -- by overwriting in place, deleting, or trimming.
On top of the classic model the package implements the three
*Ransomware 2.0* attacks the paper introduces:

* :class:`GCAttack` -- fills the device with junk data to trigger
  garbage collection and force the SSD to release retained stale pages.
* :class:`TimingAttack` -- paces encryption over days and hides its
  writes behind benign-looking traffic to evade window-based detectors
  and outlive bounded retention windows.
* :class:`TrimmingAttack` -- uses the trim command to physically erase
  the original copies of encrypted data.

Beyond the paper's families, :mod:`repro.attacks.adaptive` adds the
*detection-aware* attackers -- entropy mimicry, intermittent (partial)
encryption, computed-dilution pacing and trim interleaving -- that the
detection-quality (ROC) pipeline scores defenses against.
"""

from repro.attacks.adaptive import (
    AdaptiveAttack,
    EntropyMimicryAttack,
    EvasionPolicy,
    IntermittentEncryptionAttack,
    RateThrottledAttack,
    TrimInterleavedWipeAttack,
    shape_entropy,
)
from repro.attacks.base import (
    AttackEnvironment,
    AttackOutcome,
    NoOpAttack,
    RansomwareAttack,
    build_environment,
)
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.gc_attack import GCAttack
from repro.attacks.samples import ATTACK_PROFILES, AttackProfile, make_attack
from repro.attacks.timing_attack import TimingAttack
from repro.attacks.trimming_attack import TrimmingAttack

__all__ = [
    "ATTACK_PROFILES",
    "AdaptiveAttack",
    "AttackEnvironment",
    "AttackOutcome",
    "AttackProfile",
    "ClassicRansomware",
    "DestructionMode",
    "EntropyMimicryAttack",
    "EvasionPolicy",
    "GCAttack",
    "IntermittentEncryptionAttack",
    "NoOpAttack",
    "RansomwareAttack",
    "RateThrottledAttack",
    "TimingAttack",
    "TrimInterleavedWipeAttack",
    "TrimmingAttack",
    "build_environment",
    "make_attack",
    "shape_entropy",
]
