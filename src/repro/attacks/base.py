"""Attack framework: victim environment, outcomes and the attack base class."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.cipher import StreamCipher
from repro.host.blockdev import HostBlockDevice
from repro.host.filesystem import SimpleFS
from repro.host.process import IOProcess, ProcessRegistry
from repro.sim import SimClock


@dataclass
class AttackEnvironment:
    """Everything an attack needs: a victim file system on a device.

    ``device`` is anything that speaks the SSD block interface (a plain
    :class:`~repro.ssd.device.SSD`, an :class:`~repro.core.rssd.RSSD`,
    or a baseline defense's device).  ``rng`` is the environment's
    explicit random stream: every draw a scenario makes must come from
    it (or from an attack's own seeded ``rng``), never from the shared
    module-level ``random`` state, so scenarios stay reproducible when
    many run in one process or across worker processes.
    """

    clock: SimClock
    device: object
    blockdev: HostBlockDevice
    fs: SimpleFS
    registry: ProcessRegistry
    user_process: IOProcess
    attacker_process: IOProcess
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    @property
    def attacker_stream(self) -> int:
        """Stream id the attacker's destructive I/O is tagged with."""
        return self.attacker_process.stream_id

    @property
    def user_stream(self) -> int:
        """Stream id of the benign user workload."""
        return self.user_process.stream_id


def build_environment(
    device: object,
    victim_files: int = 24,
    file_size_bytes: int = 8192,
    seed: int = 23,
    rng: Optional[random.Random] = None,
) -> AttackEnvironment:
    """Deprecated alias of :func:`repro.api.provision_environment`.

    Kept as a warn-once shim so pre-facade callers keep working; the
    implementation (identical contract: ``seed`` drives file contents
    and, absent an explicit ``rng``, the environment's random stream)
    lives in :mod:`repro.api.environment`.
    """
    from repro._deprecation import warn_once

    warn_once(
        "repro.attacks.base.build_environment", "repro.api.provision_environment"
    )
    from repro.api.environment import provision_environment

    return provision_environment(
        device,
        victim_files=victim_files,
        file_size_bytes=file_size_bytes,
        seed=seed,
        rng=rng,
    )


@dataclass
class AttackOutcome:
    """Ground truth about what an attack did, used to judge defenses."""

    attack_name: str
    start_us: int
    end_us: int
    malicious_streams: List[int]
    victim_files: List[str] = field(default_factory=list)
    victim_lbas: List[int] = field(default_factory=list)
    original_fingerprints: Dict[int, int] = field(default_factory=dict)
    original_contents: Dict[str, bytes] = field(default_factory=dict)
    original_extents: Dict[str, List[int]] = field(default_factory=dict)
    pages_encrypted: int = 0
    pages_trimmed: int = 0
    junk_pages_written: int = 0
    ransom_note_files: List[str] = field(default_factory=list)
    compromised_host_defenses: bool = False

    @property
    def duration_us(self) -> int:
        """Length of the attack in simulated microseconds."""
        return max(0, self.end_us - self.start_us)

    @property
    def victim_page_count(self) -> int:
        """Distinct logical pages that held victim data pre-attack."""
        return len(self.victim_lbas)


class RansomwareAttack(ABC):
    """Base class for every attack model.

    ``aggressive`` attacks assume administrator privilege and start by
    disabling host-resident (non-hardware-isolated) defenses, as the
    threat model allows; the timing attack deliberately stays quiet and
    does not.
    """

    name = "ransomware"
    aggressive = True

    def __init__(
        self,
        passphrase: str = "pay-or-lose-your-files",
        seed: Optional[int] = 97,
    ) -> None:
        self.cipher = StreamCipher.from_passphrase(passphrase)
        #: ``seed=None`` defers to the victim environment's explicit rng
        #: (bound on first use), so campaign cells can seed every stream
        #: from one place and nothing ever falls back to the module-level
        #: ``random`` state.
        self.rng: Optional[random.Random] = (
            random.Random(seed) if seed is not None else None
        )
        self._nonce = 0

    # -- helpers shared by all attack models ------------------------------------

    def bind_environment_rng(self, env: AttackEnvironment) -> None:
        """Adopt the environment's rng when constructed with ``seed=None``.

        Called from ``_capture_originals`` (which every attack runs
        first); attacks that draw randomness outside the shared helpers
        must call it themselves before the first draw.
        """
        if self.rng is None:
            self.rng = env.rng

    def _capture_originals(self, env: AttackEnvironment, outcome: AttackOutcome) -> None:
        """Record pre-attack file contents and per-LBA fingerprints."""
        self.bind_environment_rng(env)
        for name in env.fs.list_files():
            data = env.fs.read_file(name)
            outcome.original_contents[name] = data
            outcome.victim_files.append(name)
            outcome.original_extents[name] = env.fs.file_lbas(name)
            for lba in env.fs.file_lbas(name):
                outcome.victim_lbas.append(lba)
                content = env.device.read_content(lba)  # type: ignore[attr-defined]
                if content is not None:
                    outcome.original_fingerprints[lba] = content.fingerprint
        outcome.victim_lbas = sorted(set(outcome.victim_lbas))

    def _encrypt_bytes(self, data: bytes) -> bytes:
        self._nonce += 1
        return self.cipher.encrypt(data, self._nonce)

    def _as_attacker(self, env: AttackEnvironment):
        """Context-style helper: temporarily issue I/O under the attacker stream."""
        return _StreamSwitcher(env.blockdev, env.attacker_stream)

    def _drop_ransom_note(self, env: AttackEnvironment, outcome: AttackOutcome) -> None:
        note = (
            b"YOUR FILES HAVE BEEN ENCRYPTED.\n"
            b"Send 1.5 BTC to the address below to receive the decryption key.\n"
        )
        with self._as_attacker(env):
            name = "READ_ME_RESTORE_FILES.txt"
            if not env.fs.exists(name):
                env.fs.create_file(name, note)
                outcome.ransom_note_files.append(name)

    # -- the attack itself -------------------------------------------------------

    @abstractmethod
    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Run the attack against ``env`` and return the ground-truth outcome."""


class NoOpAttack(RansomwareAttack):
    """A benign "attack" that does nothing.

    Lets the campaign and ablation machinery run attack-free scenarios
    (pure workload measurement -- I/O overhead, offload throughput,
    false-positive detection rates) through the exact same
    spec-and-session path as every real attack.
    """

    name = "none"
    aggressive = False

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Touch nothing; return an empty outcome anchored at the current time."""
        self.bind_environment_rng(env)
        now = env.clock.now_us
        return AttackOutcome(
            attack_name=self.name,
            start_us=now,
            end_us=now,
            malicious_streams=[env.attacker_stream],
        )


class _StreamSwitcher:
    """Temporarily switches a block device wrapper to the attacker's stream id."""

    def __init__(self, blockdev: HostBlockDevice, stream_id: int) -> None:
        self._blockdev = blockdev
        self._stream_id = stream_id
        self._saved: Optional[int] = None

    def __enter__(self) -> HostBlockDevice:
        self._saved = self._blockdev.stream_id
        self._blockdev.stream_id = self._stream_id
        return self._blockdev

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._saved is not None
        self._blockdev.stream_id = self._saved
