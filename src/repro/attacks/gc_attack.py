"""The garbage-collection (GC) attack.

A flash-aware attacker knows that retention-based defenses keep old
page versions in the SSD's spare capacity.  After encrypting the victim
files, the attack floods the device with worthless writes until free
space runs out and garbage collection is forced to reclaim blocks --
releasing any retained stale pages a capacity-bounded defense was
counting on for recovery.
"""

from __future__ import annotations

from repro.attacks.base import AttackEnvironment, AttackOutcome, RansomwareAttack
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.host.filesystem import FileSystemError
from repro.ssd.errors import SSDError


class GCAttack(RansomwareAttack):
    """Encrypt, then exhaust capacity to force retained data out of the SSD."""

    name = "gc-attack"
    aggressive = True

    def __init__(
        self,
        fill_fraction: float = 0.98,
        junk_file_pages: int = 8,
        max_junk_files: int = 4096,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0.0 < fill_fraction <= 1.0:
            raise ValueError("fill_fraction must be within (0, 1]")
        if junk_file_pages < 1:
            raise ValueError("junk_file_pages must be at least 1")
        self.fill_fraction = fill_fraction
        self.junk_file_pages = junk_file_pages
        self.max_junk_files = max_junk_files
        self._encryptor = ClassicRansomware(
            destruction=DestructionMode.OVERWRITE, **kwargs
        )

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Encrypt the victim files, then flood capacity to force GC."""
        # The capacity flood draws from self.rng without going through
        # _capture_originals (the inner encryptor does that on itself).
        self.bind_environment_rng(env)
        # Phase 1: ordinary bulk encryption of the victim files.
        outcome = self._encryptor.execute(env)
        outcome.attack_name = self.name
        outcome.malicious_streams = [env.attacker_stream]

        # Phase 2: fill the remaining capacity with junk to trigger GC and
        # evict whatever the device retained during phase 1.
        outcome.junk_pages_written = self._fill_capacity(env)
        outcome.end_us = env.clock.now_us
        return outcome

    def _fill_capacity(self, env: AttackEnvironment) -> int:
        junk_written = 0
        page_size = env.blockdev.page_size
        target_free = int(env.blockdev.capacity_pages * (1.0 - self.fill_fraction))
        with self._as_attacker(env):
            for index in range(self.max_junk_files):
                if env.fs.free_pages_remaining() <= max(target_free, self.junk_file_pages):
                    break
                junk = bytes(
                    self.rng.getrandbits(8) for _ in range(page_size * self.junk_file_pages)
                )
                try:
                    env.fs.create_file(f".cache_{index:06d}.bin", junk)
                except (FileSystemError, SSDError):
                    # The device is full or is stalling writes to protect
                    # retained data; either way the flood stops here.
                    break
                junk_written += self.junk_file_pages
        return junk_written
