"""The timing attack.

Window-based detectors look for a *burst* of encrypted-looking
overwrites, and capacity-bounded retention schemes keep old versions
only for a bounded time.  The timing attack defeats both by patience:
it encrypts a few files at a time, spreads the work over days, and
issues camouflage I/O that imitates the victim's normal workload in
between, so the merged request stream never looks anomalous over any
short window.
"""

from __future__ import annotations

from repro.attacks.base import AttackEnvironment, AttackOutcome, RansomwareAttack
from repro.sim import US_PER_HOUR
from repro.ssd.flash import PageContent


class TimingAttack(RansomwareAttack):
    """Slow-paced, camouflaged encryption ransomware."""

    name = "timing-attack"
    #: The whole point of the attack is stealth: it does not tip its hand
    #: by killing backup agents or other host defenses.
    aggressive = False

    def __init__(
        self,
        files_per_batch: int = 1,
        batch_interval_us: int = 12 * US_PER_HOUR,
        camouflage_writes_per_batch: int = 24,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if files_per_batch < 1:
            raise ValueError("files_per_batch must be at least 1")
        if batch_interval_us <= 0:
            raise ValueError("batch_interval_us must be positive")
        if camouflage_writes_per_batch < 0:
            raise ValueError("camouflage_writes_per_batch must be non-negative")
        self.files_per_batch = files_per_batch
        self.batch_interval_us = batch_interval_us
        self.camouflage_writes_per_batch = camouflage_writes_per_batch

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Encrypt in small paced batches hidden behind camouflage I/O."""
        outcome = AttackOutcome(
            attack_name=self.name,
            start_us=env.clock.now_us,
            end_us=env.clock.now_us,
            malicious_streams=[env.attacker_stream],
        )
        self._capture_originals(env, outcome)
        victims = list(outcome.victim_files)
        for batch_start in range(0, len(victims), self.files_per_batch):
            batch = victims[batch_start : batch_start + self.files_per_batch]
            for name in batch:
                plaintext = env.fs.read_file(name)
                ciphertext = self._encrypt_bytes(plaintext)
                with self._as_attacker(env):
                    env.fs.overwrite_file(name, ciphertext)
                outcome.pages_encrypted += (
                    len(plaintext) + env.blockdev.page_size - 1
                ) // env.blockdev.page_size
            self._camouflage(env)
            # Wait half a day before the next small batch so no detection
            # window ever sees a sustained burst.
            env.clock.advance(self.batch_interval_us)
        self._drop_ransom_note(env, outcome)
        outcome.end_us = env.clock.now_us
        return outcome

    def _camouflage(self, env: AttackEnvironment) -> None:
        """Issue low-entropy writes that look like ordinary user activity."""
        if self.camouflage_writes_per_batch == 0:
            return
        page_size = env.blockdev.page_size
        capacity = env.blockdev.capacity_pages
        # Camouflage traffic lands in the upper half of the address space
        # so it imitates unrelated user activity without clobbering the
        # victim files the attack is holding hostage.
        base = capacity // 2
        for _ in range(self.camouflage_writes_per_batch):
            lba = base + self.rng.randrange(max(1, capacity - base))
            filler = (b"meeting notes, quarterly figures, todo list. " * 120)[:page_size]
            content = PageContent.from_bytes(filler)
            # Camouflage traffic is tagged with the *user* stream: the
            # attacker injects it through compromised user applications.
            env.device.write(lba, content, stream_id=env.user_stream)  # type: ignore[attr-defined]
