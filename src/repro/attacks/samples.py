"""Ransomware sample profiles.

The paper replays samples collected from VirusTotal; the samples
themselves obviously cannot ship with a simulator, so this module keeps
a library of *behavioural profiles* modelled on well-known families.
Each profile maps onto one of the attack classes with family-specific
parameters (pace, destruction method, whether it abuses trim or floods
capacity), which is all the storage stack ever observes of a sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.attacks.base import RansomwareAttack
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.gc_attack import GCAttack
from repro.attacks.timing_attack import TimingAttack
from repro.attacks.trimming_attack import TrimmingAttack
from repro.sim import US_PER_HOUR, US_PER_MINUTE


@dataclass(frozen=True)
class AttackProfile:
    """Behavioural profile of one ransomware family."""

    family: str
    attack_class: str  # "classic" | "gc" | "timing" | "trimming"
    destruction: DestructionMode = DestructionMode.OVERWRITE
    inter_file_delay_us: int = 2_000
    batch_interval_us: int = 12 * US_PER_HOUR
    files_per_batch: int = 2
    fill_fraction: float = 0.98
    description: str = ""


#: Profiles modelled on families commonly seen in the wild.  The exact
#: parameter values are behavioural approximations, not measurements of
#: specific binaries.
ATTACK_PROFILES: Dict[str, AttackProfile] = {
    "wannacry-like": AttackProfile(
        family="wannacry-like",
        attack_class="classic",
        destruction=DestructionMode.OVERWRITE,
        inter_file_delay_us=1_000,
        description="Fast in-place encryption of every reachable document.",
    ),
    "locky-like": AttackProfile(
        family="locky-like",
        attack_class="classic",
        destruction=DestructionMode.DELETE,
        inter_file_delay_us=3_000,
        description="Writes ciphertext to new .locked files and deletes originals.",
    ),
    "cerber-like": AttackProfile(
        family="cerber-like",
        attack_class="classic",
        destruction=DestructionMode.TRIM,
        inter_file_delay_us=2_000,
        description="Deletes originals with TRIM-backed secure delete.",
    ),
    "capacity-flooder": AttackProfile(
        family="capacity-flooder",
        attack_class="gc",
        fill_fraction=0.98,
        description="Flash-aware sample that floods capacity to force GC (GC attack).",
    ),
    "slow-burn": AttackProfile(
        family="slow-burn",
        attack_class="timing",
        files_per_batch=2,
        batch_interval_us=12 * US_PER_HOUR,
        description="Paced encryption spread over days behind user I/O (timing attack).",
    ),
    "low-and-slow": AttackProfile(
        family="low-and-slow",
        attack_class="timing",
        files_per_batch=1,
        batch_interval_us=24 * US_PER_HOUR,
        description="One file a day; maximally patient timing attack.",
    ),
    "trim-eraser": AttackProfile(
        family="trim-eraser",
        attack_class="trimming",
        inter_file_delay_us=30 * US_PER_MINUTE // 60,
        description="Encrypts to new files and trims the originals (trimming attack).",
    ),
}


def make_attack(profile: AttackProfile, seed: int = 97) -> RansomwareAttack:
    """Instantiate the attack class described by ``profile``."""
    if profile.attack_class == "classic":
        return ClassicRansomware(
            destruction=profile.destruction,
            inter_file_delay_us=profile.inter_file_delay_us,
            seed=seed,
        )
    if profile.attack_class == "gc":
        return GCAttack(fill_fraction=profile.fill_fraction, seed=seed)
    if profile.attack_class == "timing":
        return TimingAttack(
            files_per_batch=profile.files_per_batch,
            batch_interval_us=profile.batch_interval_us,
            seed=seed,
        )
    if profile.attack_class == "trimming":
        return TrimmingAttack(
            inter_file_delay_us=profile.inter_file_delay_us, seed=seed
        )
    raise ValueError(f"unknown attack class {profile.attack_class!r}")


def family_names() -> list:
    """All known family names, sorted."""
    return sorted(ATTACK_PROFILES)
