"""Detection-aware (adaptive) ransomware.

The attacks in this module know the defenses they are up against.  Every
deployed detector in the reproduction keys on the same observables -- the
entropy of individual writes, the fraction of encrypted-looking writes
inside a short window, and trim bursts -- so a privileged attacker that
has read the defense's documentation (or probed its thresholds) can
shape its I/O to stay just under every line.  Four families are
implemented, all sharing one :class:`EvasionPolicy` knob set:

* :class:`EntropyMimicryAttack` -- compress-then-encrypt, then re-encode
  the ciphertext into a restricted alphabet so every written page holds
  its entropy *just under* the classifier threshold.
* :class:`IntermittentEncryptionAttack` -- encrypt only every k-th page
  of each file, diluting the windowed high-entropy fraction below the
  detector's trigger while still destroying enough of every file.
* :class:`RateThrottledAttack` -- low-and-slow v2: real bulk encryption,
  but each burst is padded with benign-looking decoy writes (computed
  from the window detector's fraction threshold) and paced so no window
  ever trips.
* :class:`TrimInterleavedWipeAttack` -- the trimming attack with the
  entropy tell removed: ciphertext copies are entropy-shaped, and trims
  are interleaved with decoy writes so no trim burst stands out.

These are the attack columns the detection-quality (ROC) pipeline
scores defenses against; see :mod:`repro.campaign.roc`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.attacks.base import AttackEnvironment, AttackOutcome, RansomwareAttack
from repro.core.trim_handler import TrimRejectedError
from repro.crypto.cipher import keystream_bytes
from repro.crypto.compression import Compressor
from repro.sim import US_PER_SECOND
from repro.ssd.errors import SSDError
from repro.ssd.flash import PageContent

#: Low-entropy filler used for decoy traffic (entropy ~= ordinary text).
_DECOY_TEXT = b"weekly status notes, action items, travel receipts, drafts. "


@dataclass(frozen=True)
class EvasionPolicy:
    """How hard an adaptive attack works to stay under detection thresholds.

    One policy parameterises the whole family so campaign grids can
    sweep evasion *strength* as an axis:

    * ``bits_per_symbol`` drives entropy shaping: ciphertext is
      re-encoded into a ``2**bits_per_symbol``-symbol alphabet, so the
      written data's entropy sits at ~``bits_per_symbol`` bits/byte.
      7 bits lands just under the canonical 7.2 threshold (cheapest
      expansion, 8/7); 6 bits also ducks the post-fix entropy-*jump*
      detector against typical user text, at 8/6 expansion.
    * ``encrypt_stride`` is the k of partial encryption: every k-th
      page of a file is encrypted, the rest left intact.
    * ``max_high_entropy_fraction`` is the windowed encrypted-write
      fraction the attacker is willing to show; decoy writes are sized
      from it (``decoys = pages * (1/f - 1)``).
    * ``op_gap_us`` paces malicious bursts so rate-gated detectors
      never see a sustained spike.
    """

    bits_per_symbol: int = 7
    encrypt_stride: int = 2
    max_high_entropy_fraction: float = 0.4
    op_gap_us: int = 90 * US_PER_SECOND

    def __post_init__(self) -> None:
        if not 1 <= self.bits_per_symbol <= 8:
            raise ValueError("bits_per_symbol must be within [1, 8]")
        if self.encrypt_stride < 1:
            raise ValueError("encrypt_stride must be at least 1")
        if not 0.0 < self.max_high_entropy_fraction <= 1.0:
            raise ValueError("max_high_entropy_fraction must be within (0, 1]")
        if self.op_gap_us < 0:
            raise ValueError("op_gap_us must be non-negative")

    @classmethod
    def light(cls) -> "EvasionPolicy":
        """Cheapest evasion: minimal expansion, modest dilution."""
        return cls()

    @classmethod
    def strong(cls) -> "EvasionPolicy":
        """Maximum stealth: 6-bit shaping (ducks the jump detector on
        typical text), sparser partial encryption, heavier dilution."""
        return cls(
            bits_per_symbol=6,
            encrypt_stride=4,
            max_high_entropy_fraction=0.25,
            op_gap_us=180 * US_PER_SECOND,
        )

    def decoys_for(self, malicious_pages: int) -> int:
        """Decoy writes needed to dilute ``malicious_pages`` encrypted
        writes below ``max_high_entropy_fraction`` in any window."""
        if malicious_pages <= 0:
            return 0
        return math.ceil(malicious_pages * (1.0 / self.max_high_entropy_fraction - 1.0))


def shape_entropy(data: bytes, bits_per_symbol: int) -> bytes:
    """Re-encode ``data`` into a ``2**bits_per_symbol``-symbol alphabet.

    Packs the input bit stream into ``bits_per_symbol``-bit symbols, so
    uniformly random input (ciphertext) comes out with entropy of about
    ``bits_per_symbol`` bits per byte at an expansion factor of
    ``8 / bits_per_symbol``.  This is the mechanism real evasive
    families use (base64-style re-encoding is the 6-bit special case);
    the attacker picks the widest alphabet whose entropy still sits
    under the detector's published threshold, because a narrower one
    costs proportionally more write volume.
    """
    if not 1 <= bits_per_symbol <= 8:
        raise ValueError("bits_per_symbol must be within [1, 8]")
    if bits_per_symbol == 8:
        return data
    out = bytearray()
    accumulator = 0
    pending_bits = 0
    mask = (1 << bits_per_symbol) - 1
    for byte in data:
        accumulator = (accumulator << 8) | byte
        pending_bits += 8
        while pending_bits >= bits_per_symbol:
            pending_bits -= bits_per_symbol
            out.append((accumulator >> pending_bits) & mask)
            accumulator &= (1 << pending_bits) - 1
    if pending_bits:
        out.append((accumulator << (bits_per_symbol - pending_bits)) & mask)
    return bytes(out)


class AdaptiveAttack(RansomwareAttack):
    """Base class for the detection-aware attack family.

    Adaptive attacks are stealthy by construction: like the timing
    attack they do not tip their hand by disabling host defenses
    (``aggressive = False``) -- their whole point is that the defenses
    stay up and simply never trigger.
    """

    name = "adaptive"
    aggressive = False

    def __init__(self, policy: "EvasionPolicy | None" = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.policy = policy if policy is not None else EvasionPolicy.light()
        self._compressor = Compressor()
        self._pad_nonce = 1 << 48

    # -- shared evasion machinery -------------------------------------------------

    def _mimic_bytes(self, plaintext: bytes) -> bytes:
        """Compress-then-encrypt ``plaintext``, entropy-shaped and padded.

        The result is exactly ``len(plaintext)`` bytes (so an in-place
        overwrite stays size-stealthy) with entropy held at about
        ``policy.bits_per_symbol`` bits/byte everywhere: the shaped
        ciphertext is padded with shaped *keystream*, so padding is
        statistically indistinguishable from payload.  When the payload
        does not fit even after compression, the tail is simply
        truncated shaped ciphertext -- the attack degrades rather than
        exceeding its entropy budget.
        """
        compressed = self._compressor.compress(plaintext)
        ciphertext = self._encrypt_bytes(compressed)
        shaped = shape_entropy(ciphertext, self.policy.bits_per_symbol)
        target_len = len(plaintext)
        if len(shaped) >= target_len:
            return shaped[:target_len]
        pad_len = target_len - len(shaped)
        # ceil(pad_len * bits/8) raw keystream bytes shape into >= pad_len.
        raw_pad = keystream_bytes(
            b"mimicry-pad",
            self._pad_nonce,
            (pad_len * self.policy.bits_per_symbol + 7) // 8 + 1,
        )
        self._pad_nonce += 1
        pad = shape_entropy(raw_pad, self.policy.bits_per_symbol)[:pad_len]
        return shaped + pad

    def _decoy_writes(self, env: AttackEnvironment, count: int) -> None:
        """Issue ``count`` benign-looking writes under the attacker stream.

        Decoys land in the upper half of the address space (scratch
        territory, never the hostage files) and carry ordinary-text
        entropy, so they dilute any window detector's high-entropy
        fraction without destroying anything the attacker cares about.
        """
        if count <= 0:
            return
        page_size = env.blockdev.page_size
        capacity = env.blockdev.capacity_pages
        base = capacity // 2
        filler = (_DECOY_TEXT * (page_size // len(_DECOY_TEXT) + 1))[:page_size]
        content = PageContent.from_bytes(filler)
        for _ in range(count):
            lba = base + self.rng.randrange(max(1, capacity - base))
            env.device.write(lba, content, stream_id=env.attacker_stream)  # type: ignore[attr-defined]

    def _begin(self, env: AttackEnvironment) -> AttackOutcome:
        """Standard preamble: outcome shell plus ground-truth capture."""
        outcome = AttackOutcome(
            attack_name=self.name,
            start_us=env.clock.now_us,
            end_us=env.clock.now_us,
            malicious_streams=[env.attacker_stream],
        )
        self._capture_originals(env, outcome)
        return outcome


class EntropyMimicryAttack(AdaptiveAttack):
    """In-place encryption that holds every write under the entropy line.

    The bypass this attack exploits is the one this PR's detector fix
    closes: pre-fix, the entropy classifier flagged only writes at or
    above the *absolute* threshold, so shaped ciphertext at ~7.0
    bits/byte sailed through.  Post-fix, the entropy-*jump* trigger
    catches the ~+2.8 bits/byte rise over the text it replaces -- unless
    the attacker pays for stronger shaping (:meth:`EvasionPolicy.strong`).
    """

    name = "entropy-mimicry"

    def __init__(self, inter_file_delay_us: int = 2_000, **kwargs) -> None:
        super().__init__(**kwargs)
        if inter_file_delay_us < 0:
            raise ValueError("inter_file_delay_us must be non-negative")
        self.inter_file_delay_us = inter_file_delay_us

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Overwrite every victim file with entropy-shaped ciphertext."""
        outcome = self._begin(env)
        for name in list(outcome.victim_files):
            plaintext = env.fs.read_file(name)
            mimic = self._mimic_bytes(plaintext)
            with self._as_attacker(env):
                env.fs.overwrite_file(name, mimic)
            outcome.pages_encrypted += (
                len(plaintext) + env.blockdev.page_size - 1
            ) // env.blockdev.page_size
            env.clock.advance(self.inter_file_delay_us)
        self._drop_ransom_note(env, outcome)
        outcome.end_us = env.clock.now_us
        return outcome


class IntermittentEncryptionAttack(AdaptiveAttack):
    """Partial (every k-th page) encryption, LockBit-style.

    Encrypting a fraction ``1/k`` of each file is enough to make it
    unusable, while the windowed high-entropy fraction observed by
    SSDInsider-style detectors stays near ``1/k`` -- under the trigger
    for k >= 2 at the canonical 0.6-0.75 fraction thresholds.
    """

    name = "intermittent-encrypt"

    def __init__(self, inter_file_delay_us: int = 2_000, **kwargs) -> None:
        super().__init__(**kwargs)
        if inter_file_delay_us < 0:
            raise ValueError("inter_file_delay_us must be non-negative")
        self.inter_file_delay_us = inter_file_delay_us

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Encrypt every k-th page of every victim file in place."""
        outcome = self._begin(env)
        page_size = env.blockdev.page_size
        stride = self.policy.encrypt_stride
        for name in list(outcome.victim_files):
            plaintext = env.fs.read_file(name)
            pieces = []
            for page_index in range(0, (len(plaintext) + page_size - 1) // page_size):
                chunk = plaintext[page_index * page_size : (page_index + 1) * page_size]
                if page_index % stride == 0:
                    pieces.append(self._encrypt_bytes(chunk))
                    outcome.pages_encrypted += 1
                else:
                    pieces.append(chunk)
            with self._as_attacker(env):
                env.fs.overwrite_file(name, b"".join(pieces))
            env.clock.advance(self.inter_file_delay_us)
        self._drop_ransom_note(env, outcome)
        outcome.end_us = env.clock.now_us
        return outcome


class RateThrottledAttack(AdaptiveAttack):
    """Low-and-slow v2: full-strength encryption hidden by dilution + pacing.

    Unlike the original timing attack (which only paces), v2 *computes*
    its camouflage from the detector model: after encrypting each file
    it issues exactly enough benign-looking decoy writes to keep any
    window's high-entropy fraction under
    ``policy.max_high_entropy_fraction``, then waits ``policy.op_gap_us``
    so rate-gated detectors see no burst either.
    """

    name = "low-slow-v2"

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Encrypt files one at a time behind computed decoy dilution."""
        outcome = self._begin(env)
        page_size = env.blockdev.page_size
        for name in list(outcome.victim_files):
            plaintext = env.fs.read_file(name)
            ciphertext = self._encrypt_bytes(plaintext)
            with self._as_attacker(env):
                env.fs.overwrite_file(name, ciphertext)
            pages = (len(plaintext) + page_size - 1) // page_size
            outcome.pages_encrypted += pages
            self._decoy_writes(env, self.policy.decoys_for(pages))
            env.clock.advance(self.policy.op_gap_us)
        self._drop_ransom_note(env, outcome)
        outcome.end_us = env.clock.now_us
        return outcome


class TrimInterleavedWipeAttack(AdaptiveAttack):
    """Trim-based plaintext destruction with the entropy tell removed.

    The plain trimming attack betrays itself twice: the ciphertext
    copies it writes look encrypted, and its trims arrive in one burst.
    This variant entropy-shapes the copies and interleaves each file's
    trim with decoy writes and a pacing gap, so neither the entropy
    window nor a trim-burst heuristic fires while the plaintext is
    physically erased underneath every retention-based defense.
    """

    name = "trim-interleave"

    def __init__(self, decoys_per_file: int = 2, **kwargs) -> None:
        super().__init__(**kwargs)
        if decoys_per_file < 0:
            raise ValueError("decoys_per_file must be non-negative")
        self.decoys_per_file = decoys_per_file

    def execute(self, env: AttackEnvironment) -> AttackOutcome:
        """Encrypt to shaped copies, then trim originals behind decoys."""
        outcome = self._begin(env)
        page_size = env.blockdev.page_size
        for name in list(outcome.victim_files):
            plaintext = env.fs.read_file(name)
            mimic = self._mimic_bytes(plaintext)
            lbas = env.fs.file_lbas(name)
            with self._as_attacker(env):
                env.fs.create_file(name + ".locked", mimic)
                try:
                    env.fs.delete_file(name, trim=True)
                    outcome.pages_trimmed += len(lbas)
                except (TrimRejectedError, SSDError):
                    # Trim rejected (DISABLED mode): plain delete leaves
                    # the plaintext to normal GC, as in the base attack.
                    if env.fs.exists(name):
                        env.fs.delete_file(name, trim=False)
            outcome.pages_encrypted += (len(plaintext) + page_size - 1) // page_size
            self._decoy_writes(env, self.decoys_per_file)
            env.clock.advance(self.policy.op_gap_us)
        self._drop_ransom_note(env, outcome)
        outcome.end_us = env.clock.now_us
        return outcome
