"""RSSD reproduction library.

This package reproduces *RSSD: Defend against Ransomware with
Hardware-Isolated Network-Storage Codesign and Post-Attack Analysis*
(ASPLOS'22) as a trace-driven simulator.  It contains:

* ``repro.ssd`` -- a NAND-flash SSD substrate (FTL, GC, wear leveling,
  trim, latency and lifetime accounting).
* ``repro.nvmeoe`` -- an NVMe-over-Ethernet substrate (NIC, link,
  protocol, remote cloud / storage-server targets).
* ``repro.crypto`` -- cipher, compression and hash-chain substrates.
* ``repro.host`` -- host block layer, a simple file system and process
  models used to drive realistic attack scenarios.
* ``repro.workloads`` -- block-trace formats and synthetic generators
  calibrated to the MSR-Cambridge and FIU volumes used by the paper.
* ``repro.attacks`` -- classic encryption ransomware plus the three
  Ransomware 2.0 attacks (GC, timing, trimming).
* ``repro.defenses`` -- software and hardware baseline defenses used in
  the paper's Table 1.
* ``repro.core`` -- the paper's contribution: the RSSD device with
  conservative retention, hardware-assisted logging, enhanced trim,
  NVMe-oE offloading, zero-data-loss recovery and trusted post-attack
  analysis.
* ``repro.analysis`` -- experiment harnesses used by the benchmark
  suite to regenerate the paper's tables and figures.
* ``repro.api`` -- the stable public facade: declarative
  ``ScenarioSpec``, the ``Session`` lifecycle, the typed ``EventBus``,
  and the ``run_campaign`` / ``run_roc`` / ``run_fleet`` entry points.

Quickstart
----------

>>> from repro import build_rssd, RSSDConfig
>>> rssd = build_rssd(RSSDConfig.small())
>>> rssd.write(lba=0, data=b"hello world")
>>> rssd.read(lba=0)[: len(b"hello world")]
b'hello world'
"""

from repro.core.config import RSSDConfig
from repro.core.rssd import RSSD, build_rssd
from repro.sim import SimClock

__all__ = [
    "RSSD",
    "RSSDConfig",
    "SimClock",
    "build_rssd",
    "__version__",
]

__version__ = "1.0.0"
