"""SSDInsider-like hardware baseline.

SSDInsider detects ransomware inside the firmware from short-horizon
write patterns and reverts recent writes once it triggers.  Its
retention is therefore a small, short-lived staging buffer: big enough
to undo a detected burst, far too small (and too short-lived) to
survive a capacity flood, a paced attack, or trim-based erasure.
"""

from __future__ import annotations

from repro.crypto.entropy import EntropyWindow
from repro.defenses.base import HardwareDefense
from repro.sim import US_PER_MINUTE
from repro.ssd.device import HostOp, HostOpType
from repro.ssd.ftl import InvalidationCause, StalePage


class SSDInsiderDefense(HardwareDefense):
    """In-firmware detector with a small short-term undo buffer."""

    name = "SSDInsider"
    hardware_isolated = True
    supports_forensics = False

    window_us = 30 * US_PER_MINUTE
    capacity_pages = 2_048
    #: The undo buffer is best-effort: under GC pressure it gives the
    #: space back rather than stalling the drive.
    pin_under_pressure = False
    eager_trim_gc = True

    def __init__(self, *args, **kwargs) -> None:
        self._entropy_window = EntropyWindow(window_size=64)
        self._detected = False
        self._detected_at_us = None
        super().__init__(*args, **kwargs)

    def on_host_op(self, op: HostOp) -> None:
        if op.op_type is HostOpType.WRITE and op.content is not None:
            self._entropy_window.observe(op.content.entropy)
            if self._entropy_window.is_suspicious(fraction_threshold=0.75):
                if not self._detected:
                    self._detected_at_us = op.timestamp_us
                self._detected = True

    def detect(self) -> bool:
        return self._detected

    def _should_retain(self, record: StalePage) -> bool:
        return record.cause is InvalidationCause.OVERWRITE
