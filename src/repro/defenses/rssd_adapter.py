"""RSSD exposed through the defense interface.

The capability-matrix harness talks to every row of Table 1 through the
:class:`~repro.defenses.base.Defense` interface; this adapter lets the
full RSSD device (retention + logging + offload + recovery + forensics)
be scored in exactly the same runs as the baselines.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import RSSDConfig
from repro.core.detection import DetectionReport
from repro.core.rssd import RSSD
from repro.defenses.base import Defense
from repro.sim import SimClock
from repro.ssd.flash import PageContent
from repro.ssd.geometry import SSDGeometry


class RSSDDefense(Defense):
    """The paper's device, adapted to the defense interface."""

    name = "RSSD"
    hardware_isolated = True
    supports_forensics = True

    def __init__(
        self,
        geometry: Optional[SSDGeometry] = None,
        clock: Optional[SimClock] = None,
        config: Optional[RSSDConfig] = None,
    ) -> None:
        self._config_override = config
        #: Ablation toggles: the ``local-detector`` / ``remote-detector``
        #: features clear these, making :meth:`detect` skip the
        #: corresponding analysis and report a non-detection instead.
        self.local_detection_enabled = True
        self.remote_detection_enabled = True
        super().__init__(geometry=geometry, clock=clock)

    def _build_device(self) -> RSSD:
        if self._config_override is not None:
            config = self._config_override
        else:
            config = RSSDConfig(geometry=self.geometry)
        self.rssd = RSSD(config=config, clock=self.clock)
        return self.rssd

    # -- Defense interface ----------------------------------------------------------

    def pre_attack_version(self, lba: int, attack_start_us: int) -> Optional[PageContent]:
        # Live data that predates the attack counts as its own pre-attack
        # version (the attacker never touched it).
        live = self.rssd.ssd.ftl.lookup(lba)
        if live is not None and live.written_us <= attack_start_us:
            return self.rssd.ssd.flash.read(live.ppn)
        version = self.rssd.retention.latest_version_before(lba, attack_start_us)
        if version is None:
            return None
        if version.released and not version.offloaded:
            # Never happens by construction (the retention invariant), but
            # the honest answer if it did would be "lost".
            return None
        return version.content

    def detect(self) -> bool:
        # The remote report replays the full operation log; cache it so
        # detection_time_us() does not repeat the analysis.  Ablated
        # detectors are replaced by an honest "ran nothing, saw nothing"
        # report so downstream consumers keep both slots.
        if self.remote_detection_enabled:
            self._remote_report = self.rssd.detect()
        else:
            self._remote_report = DetectionReport(
                detector="remote-offloaded", detected=False, trigger="disabled"
            )
        if self.local_detection_enabled:
            self._local_report = self.rssd.local_detector.report()
        else:
            self._local_report = DetectionReport(
                detector="local-window", detected=False, trigger="disabled"
            )
        return self._remote_report.detected or self._local_report.detected

    def detection_time_us(self) -> Optional[int]:
        if getattr(self, "_remote_report", None) is None:
            self.detect()
        local = self._local_report
        if local.detected and local.detection_time_us is not None:
            return local.detection_time_us
        if self._remote_report.detected:
            return getattr(self._remote_report, "detection_time_us", None)
        return None

    def detection_reports(self):
        """The local-window and remote-offloaded reports (after :meth:`detect`)."""
        return [
            report
            for report in (
                getattr(self, "_local_report", None),
                getattr(self, "_remote_report", None),
            )
            if report is not None
        ]

    def forensic_report(self):
        """The legacy evidence-chain summary (see :meth:`forensics_engine`)."""
        return self.rssd.investigate()

    def forensics_engine(self):
        """The full post-attack analysis and point-in-time recovery service.

        Returns a :class:`~repro.forensics.engine.ForensicsEngine` bound
        to this defense's device; campaign cells and the ``repro
        recover`` CLI use it to produce exact recovery metrics and the
        attack-timeline report.
        """
        from repro.forensics import ForensicsEngine

        return ForensicsEngine(self.rssd)
