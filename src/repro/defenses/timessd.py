"""TimeSSD-like hardware baseline.

TimeSSD retains *every* page invalidated by an overwrite -- suspicious
or not -- but only within a fixed time window sized to the device's
spare capacity.  Like FlashGuard it pins its retained set when GC asks
for the space back (so the GC attack only slows the drive down), but a
timing attack that spreads encryption beyond the window wins, and trim
is handled the commodity way.
"""

from __future__ import annotations

from repro.defenses.base import HardwareDefense
from repro.sim import US_PER_DAY
from repro.ssd.ftl import InvalidationCause, StalePage


class TimeSSDDefense(HardwareDefense):
    """Retain all overwritten data within a bounded time window."""

    name = "TimeSSD"
    hardware_isolated = True
    supports_forensics = False

    window_us = 2 * US_PER_DAY
    capacity_pages = 262_144
    pin_under_pressure = True
    eager_trim_gc = True

    def _should_retain(self, record: StalePage) -> bool:
        return record.cause is InvalidationCause.OVERWRITE
