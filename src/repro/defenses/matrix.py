"""Capability matrix: the measured version of the paper's Table 1.

For every (defense, attack) pair the harness builds a fresh victim
environment, lets a background user work on the files for a while,
optionally lets the attacker disable host-resident defenses (aggressive
attacks run with administrator privilege), executes the attack, and
then asks the defense to produce the pre-attack version of every victim
page.  The fraction it can produce is the measured recovery capability;
``✔`` / ``✗`` and ``●`` / ``◗`` / ``❍`` are derived from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.attacks.base import AttackEnvironment, AttackOutcome, build_environment
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.gc_attack import GCAttack
from repro.attacks.timing_attack import TimingAttack
from repro.attacks.trimming_attack import TrimmingAttack
from repro.defenses.base import Defense
from repro.defenses.flashguard import FlashGuardDefense
from repro.defenses.rblocker import RBlockerDefense
from repro.defenses.rssd_adapter import RSSDDefense
from repro.defenses.software import (
    CloudBackupDefense,
    CryptoDropDefense,
    JournalingFSDefense,
    ShieldFSDefense,
    UnveilDefense,
)
from repro.defenses.ssdinsider import SSDInsiderDefense
from repro.defenses.timessd import TimeSSDDefense
from repro.defenses.unprotected import UnprotectedSSD
from repro.sim import SimClock, US_PER_HOUR
from repro.ssd.geometry import SSDGeometry

#: Recovery fraction at or above which an attack counts as "defended".
DEFENDED_THRESHOLD = 0.99
#: Recovery fraction at or above which CloudBackup-style partial recovery
#: still counts as a meaningful defense (the paper's half-filled circles).
PARTIAL_THRESHOLD = 0.50


def recovery_grade(fraction: float) -> str:
    """Map a recovery fraction to the paper's ● / ◗ / ❍ symbols."""
    if fraction >= DEFENDED_THRESHOLD:
        return "●"
    if fraction >= 0.05:
        return "◗"
    return "❍"


@dataclass
class CapabilityCell:
    """Outcome of one (defense, attack) scenario."""

    attack: str
    recovery_fraction: float
    defended: bool
    detected: bool
    compromised: bool
    victim_pages: int
    pages_recovered: int
    attack_duration_us: int

    @property
    def symbol(self) -> str:
        """✔ when the attack was defended (possibly partially for backups)."""
        if self.defended:
            return "✔"
        if self.recovery_fraction >= PARTIAL_THRESHOLD:
            return "✔"
        return "✗"


@dataclass
class MatrixRow:
    """One defense's row of the capability matrix."""

    defense: str
    hardware_isolated: bool
    supports_forensics: bool
    cells: Dict[str, CapabilityCell] = field(default_factory=dict)

    @property
    def recovery_symbol(self) -> str:
        """Overall recovery grade across every attack the row was scored on.

        ``●`` means every attack was fully recoverable, ``◗`` means at
        least one attack was (partially) recoverable, ``❍`` means the
        defense could not restore anything for any attack.
        """
        if not self.cells:
            return "❍"
        worst = min(cell.recovery_fraction for cell in self.cells.values())
        best = max(cell.recovery_fraction for cell in self.cells.values())
        if worst >= DEFENDED_THRESHOLD:
            return "●"
        if best >= 0.05:
            return "◗"
        return "❍"


DefenseFactory = Callable[[SSDGeometry, SimClock], Defense]
AttackFactory = Callable[[], object]


def default_defense_factories() -> Dict[str, DefenseFactory]:
    """Factories for every row of Table 1 (plus the unprotected floor)."""
    return {
        "LocalSSD": lambda geometry, clock: UnprotectedSSD(geometry=geometry, clock=clock),
        "Unveil": lambda geometry, clock: UnveilDefense(geometry=geometry, clock=clock),
        "CryptoDrop": lambda geometry, clock: CryptoDropDefense(geometry=geometry, clock=clock),
        "CloudBackup": lambda geometry, clock: CloudBackupDefense(geometry=geometry, clock=clock),
        "ShieldFS": lambda geometry, clock: ShieldFSDefense(geometry=geometry, clock=clock),
        "JFS": lambda geometry, clock: JournalingFSDefense(geometry=geometry, clock=clock),
        "FlashGuard": lambda geometry, clock: FlashGuardDefense(geometry=geometry, clock=clock),
        "TimeSSD": lambda geometry, clock: TimeSSDDefense(geometry=geometry, clock=clock),
        "SSDInsider": lambda geometry, clock: SSDInsiderDefense(geometry=geometry, clock=clock),
        "RBlocker": lambda geometry, clock: RBlockerDefense(geometry=geometry, clock=clock),
        "RSSD": lambda geometry, clock: RSSDDefense(geometry=geometry, clock=clock),
    }


def default_attack_factories(seed: int = 97) -> Dict[str, AttackFactory]:
    """Factories for the attack columns of the matrix."""
    return {
        "classic": lambda: ClassicRansomware(destruction=DestructionMode.OVERWRITE, seed=seed),
        "gc-attack": lambda: GCAttack(seed=seed),
        "timing-attack": lambda: TimingAttack(seed=seed),
        "trimming-attack": lambda: TrimmingAttack(seed=seed),
    }


class CapabilityMatrix:
    """Runs attack x defense scenarios and assembles the matrix."""

    def __init__(
        self,
        geometry: Optional[SSDGeometry] = None,
        victim_files: int = 24,
        file_size_bytes: int = 8192,
        user_activity_hours: float = 30.0,
        recent_edit_fraction: float = 0.3,
        seed: int = 23,
    ) -> None:
        self.geometry = geometry if geometry is not None else SSDGeometry.tiny()
        self.victim_files = victim_files
        self.file_size_bytes = file_size_bytes
        self.user_activity_hours = user_activity_hours
        self.recent_edit_fraction = recent_edit_fraction
        self.seed = seed

    # -- scenario pieces ---------------------------------------------------------

    def _user_activity(self, env: AttackEnvironment) -> None:
        """Simulate a user working on the files before the attack.

        Edits are spread over ``user_activity_hours``; a final burst of
        edits lands shortly before the attack so that snapshot-based
        defenses have changes they have not yet backed up -- the reason
        backup recovery is partial rather than complete.
        """
        rng = random.Random(self.seed + 1)
        files = env.fs.list_files()
        if not files:
            return
        sessions = 6
        session_gap_us = int(self.user_activity_hours * US_PER_HOUR / sessions)
        for session in range(sessions):
            env.clock.advance(session_gap_us)
            for name in rng.sample(files, max(1, len(files) // 4)):
                data = env.fs.read_file(name)
                edited = data[: len(data) // 2] + b" edited v%d " % session + data[len(data) // 2 :]
                env.fs.overwrite_file(name, edited[: len(data)])
        # Recent, not-yet-backed-up edits right before the attack.
        recent = rng.sample(files, max(1, int(len(files) * self.recent_edit_fraction)))
        env.clock.advance(US_PER_HOUR // 2)
        for name in recent:
            data = env.fs.read_file(name)
            edited = (b"last minute change " + data)[: len(data)]
            env.fs.overwrite_file(name, edited)
        env.clock.advance(US_PER_HOUR // 4)

    def run_scenario(
        self, defense_factory: DefenseFactory, attack_factory: AttackFactory
    ) -> CapabilityCell:
        """Run one (defense, attack) scenario and score it."""
        clock = SimClock()
        defense = defense_factory(self.geometry, clock)
        env = build_environment(
            defense.device,
            victim_files=self.victim_files,
            file_size_bytes=self.file_size_bytes,
            seed=self.seed,
        )
        self._user_activity(env)
        attack = attack_factory()
        compromised = False
        if getattr(attack, "aggressive", False):
            compromised = defense.compromise()
        outcome: AttackOutcome = attack.execute(env)
        fraction, recovered = self._score_recovery(defense, env, outcome)
        return CapabilityCell(
            attack=outcome.attack_name,
            recovery_fraction=fraction,
            defended=fraction >= DEFENDED_THRESHOLD,
            detected=defense.detect(),
            compromised=compromised,
            victim_pages=len(outcome.victim_lbas),
            pages_recovered=recovered,
            attack_duration_us=outcome.duration_us,
        )

    def _score_recovery(
        self, defense: Defense, env: AttackEnvironment, outcome: AttackOutcome
    ):
        recovered = 0
        total = 0
        for lba in outcome.victim_lbas:
            original = outcome.original_fingerprints.get(lba)
            if original is None:
                continue
            total += 1
            live = env.device.read_content(lba)  # type: ignore[attr-defined]
            if live is not None and live.fingerprint == original:
                recovered += 1
                continue
            version = defense.pre_attack_version(lba, outcome.start_us)
            if version is not None and version.fingerprint == original:
                recovered += 1
        fraction = recovered / total if total else 0.0
        return fraction, recovered

    # -- full matrix -----------------------------------------------------------------

    def run(
        self,
        defense_factories: Optional[Dict[str, DefenseFactory]] = None,
        attack_factories: Optional[Dict[str, AttackFactory]] = None,
    ) -> List[MatrixRow]:
        defenses = defense_factories if defense_factories is not None else default_defense_factories()
        attacks = attack_factories if attack_factories is not None else default_attack_factories()
        rows: List[MatrixRow] = []
        for defense_name, defense_factory in defenses.items():
            probe = defense_factory(self.geometry, SimClock())
            row = MatrixRow(
                defense=defense_name,
                hardware_isolated=probe.hardware_isolated,
                supports_forensics=probe.supports_forensics,
            )
            for attack_name, attack_factory in attacks.items():
                row.cells[attack_name] = self.run_scenario(defense_factory, attack_factory)
            rows.append(row)
        return rows

    @staticmethod
    def format_table(rows: List[MatrixRow]) -> str:
        """Render the matrix the way the paper's Table 1 is laid out."""
        header = (
            f"{'Defense':<12} {'GC':>4} {'Timing':>7} {'Trimming':>9} "
            f"{'Recovery':>9} {'Forensics':>10}"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            gc = row.cells.get("gc-attack")
            timing = row.cells.get("timing-attack")
            trimming = row.cells.get("trimming-attack")
            lines.append(
                f"{row.defense:<12} "
                f"{gc.symbol if gc else '-':>4} "
                f"{timing.symbol if timing else '-':>7} "
                f"{trimming.symbol if trimming else '-':>9} "
                f"{row.recovery_symbol:>9} "
                f"{'✔' if row.supports_forensics else '✗':>10}"
            )
        return "\n".join(lines)
