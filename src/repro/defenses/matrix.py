"""Capability matrix: the measured version of the paper's Table 1.

For every (defense, attack) pair the harness builds a fresh victim
environment, lets a background user work on the files for a while,
optionally lets the attacker disable host-resident defenses (aggressive
attacks run with administrator privilege), executes the attack, and
then asks the defense to produce the pre-attack version of every victim
page.  The fraction it can produce is the measured recovery capability;
``✔`` / ``✗`` and ``●`` / ``◗`` / ``❍`` are derived from it.

This module is a compatibility facade: scenario execution lives in
:mod:`repro.campaign.engine` (shared with the campaign CLI and the
golden-run suite), and the defense/attack registries live in
:mod:`repro.campaign.registries`.  The matrix keeps its historical
fixed seeding -- one ``seed`` for every cell -- so results are
unchanged from before the refactor; campaigns derive per-cell seeds
instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.defenses.base import Defense
from repro.sim import SimClock
from repro.ssd.geometry import SSDGeometry

#: Recovery fraction at or above which an attack counts as "defended".
DEFENDED_THRESHOLD = 0.99
#: Recovery fraction at or above which CloudBackup-style partial recovery
#: still counts as a meaningful defense (the paper's half-filled circles).
PARTIAL_THRESHOLD = 0.50


def recovery_grade(fraction: float) -> str:
    """Map a recovery fraction to the paper's ● / ◗ / ❍ symbols."""
    if fraction >= DEFENDED_THRESHOLD:
        return "●"
    if fraction >= 0.05:
        return "◗"
    return "❍"


@dataclass
class CapabilityCell:
    """Outcome of one (defense, attack) scenario."""

    attack: str
    recovery_fraction: float
    defended: bool
    detected: bool
    compromised: bool
    victim_pages: int
    pages_recovered: int
    attack_duration_us: int

    @property
    def symbol(self) -> str:
        """✔ when the attack was defended (possibly partially for backups)."""
        if self.defended:
            return "✔"
        if self.recovery_fraction >= PARTIAL_THRESHOLD:
            return "✔"
        return "✗"


@dataclass
class MatrixRow:
    """One defense's row of the capability matrix."""

    defense: str
    hardware_isolated: bool
    supports_forensics: bool
    cells: Dict[str, CapabilityCell] = field(default_factory=dict)

    @property
    def recovery_symbol(self) -> str:
        """Overall recovery grade across every attack the row was scored on.

        ``●`` means every attack was fully recoverable, ``◗`` means at
        least one attack was (partially) recoverable, ``❍`` means the
        defense could not restore anything for any attack.
        """
        if not self.cells:
            return "❍"
        worst = min(cell.recovery_fraction for cell in self.cells.values())
        best = max(cell.recovery_fraction for cell in self.cells.values())
        if worst >= DEFENDED_THRESHOLD:
            return "●"
        if best >= 0.05:
            return "◗"
        return "❍"


DefenseFactory = Callable[[SSDGeometry, SimClock], Defense]
AttackFactory = Callable[[], object]


def default_defense_factories() -> Dict[str, DefenseFactory]:
    """Factories for every row of Table 1 (plus the unprotected floor)."""
    from repro.campaign.registries import DEFENSES

    return dict(DEFENSES)


def default_attack_factories(seed: int = 97) -> Dict[str, AttackFactory]:
    """Factories for the attack columns of the matrix."""
    from repro.campaign.registries import ATTACKS, DEFAULT_ATTACKS

    return {
        name: (lambda name=name: ATTACKS[name](seed)) for name in DEFAULT_ATTACKS
    }


class CapabilityMatrix:
    """Runs attack x defense scenarios and assembles the matrix."""

    def __init__(
        self,
        geometry: Optional[SSDGeometry] = None,
        victim_files: int = 24,
        file_size_bytes: int = 8192,
        user_activity_hours: float = 30.0,
        recent_edit_fraction: float = 0.3,
        seed: int = 23,
    ) -> None:
        self.geometry = geometry if geometry is not None else SSDGeometry.tiny()
        self.victim_files = victim_files
        self.file_size_bytes = file_size_bytes
        self.user_activity_hours = user_activity_hours
        self.recent_edit_fraction = recent_edit_fraction
        self.seed = seed

    # -- scenario pieces ---------------------------------------------------------

    def _user_activity(self, env) -> None:
        """Pre-attack user workload (the engine's office-edit generator)."""
        from repro.campaign.registries import office_edit_activity

        office_edit_activity(
            env,
            random.Random(self.seed + 1),
            self.user_activity_hours,
            self.recent_edit_fraction,
        )

    def run_scenario(
        self, defense_factory: DefenseFactory, attack_factory: AttackFactory
    ) -> CapabilityCell:
        """Run one (defense, attack) scenario and score it."""
        from repro.campaign.engine import execute_scenario
        from repro.campaign.registries import office_edit_activity

        scenario = execute_scenario(
            defense_factory=defense_factory,
            attack_factory=attack_factory,
            workload=office_edit_activity,
            geometry=self.geometry,
            victim_files=self.victim_files,
            file_size_bytes=self.file_size_bytes,
            env_seed=self.seed,
            workload_rng=random.Random(self.seed + 1),
            user_activity_hours=self.user_activity_hours,
            recent_edit_fraction=self.recent_edit_fraction,
        )
        outcome = scenario.attack_outcome
        return CapabilityCell(
            attack=outcome.attack_name,
            recovery_fraction=scenario.recovery_fraction,
            defended=scenario.defended,
            detected=scenario.detected,
            compromised=scenario.compromised,
            victim_pages=len(outcome.victim_lbas),
            pages_recovered=scenario.pages_recovered,
            attack_duration_us=outcome.duration_us,
        )

    def _score_recovery(self, defense: Defense, env, outcome):
        from repro.campaign.engine import score_recovery

        return score_recovery(defense, env, outcome)

    # -- full matrix -----------------------------------------------------------------

    def run(
        self,
        defense_factories: Optional[Dict[str, DefenseFactory]] = None,
        attack_factories: Optional[Dict[str, AttackFactory]] = None,
    ) -> List[MatrixRow]:
        defenses = defense_factories if defense_factories is not None else default_defense_factories()
        attacks = attack_factories if attack_factories is not None else default_attack_factories()
        rows: List[MatrixRow] = []
        for defense_name, defense_factory in defenses.items():
            probe = defense_factory(self.geometry, SimClock())
            row = MatrixRow(
                defense=defense_name,
                hardware_isolated=probe.hardware_isolated,
                supports_forensics=probe.supports_forensics,
            )
            for attack_name, attack_factory in attacks.items():
                row.cells[attack_name] = self.run_scenario(defense_factory, attack_factory)
            rows.append(row)
        return rows

    @staticmethod
    def format_table(rows: List[MatrixRow]) -> str:
        """Render the matrix the way the paper's Table 1 is laid out."""
        header = (
            f"{'Defense':<12} {'GC':>4} {'Timing':>7} {'Trimming':>9} "
            f"{'Recovery':>9} {'Forensics':>10}"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            gc = row.cells.get("gc-attack")
            timing = row.cells.get("timing-attack")
            trimming = row.cells.get("trimming-attack")
            lines.append(
                f"{row.defense:<12} "
                f"{gc.symbol if gc else '-':>4} "
                f"{timing.symbol if timing else '-':>7} "
                f"{trimming.symbol if trimming else '-':>9} "
                f"{row.recovery_symbol:>9} "
                f"{'✔' if row.supports_forensics else '✗':>10}"
            )
        return "\n".join(lines)
