"""Software (host-resident) baseline defenses.

These run above the block interface, so they share two structural
weaknesses the paper calls out: a privileged attacker can disable them,
and they can only keep the copies they explicitly made (backups,
copy-on-write snapshots, journals), never the flash-level history.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.crypto.entropy import EntropyWindow
from repro.defenses.base import SoftwareDefense
from repro.sim import US_PER_HOUR
from repro.ssd.device import HostOp, HostOpType
from repro.ssd.flash import PageContent


class UnveilDefense(SoftwareDefense):
    """UNVEIL-like detection-only defense.

    Watches write entropy in a sliding window (the paper's Unveil
    generates artificial user environments and monitors file access
    patterns; at block level the observable is the same: a burst of
    high-entropy overwrites).  It never keeps data, so recovery is
    impossible even when detection succeeds.
    """

    name = "Unveil"
    supports_forensics = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._window = EntropyWindow(window_size=64)
        self._detected = False
        self._detected_at_us: Optional[int] = None

    def on_host_op(self, op: HostOp) -> None:
        if self.compromised:
            return
        if op.op_type is HostOpType.WRITE and op.content is not None:
            self._window.observe(op.content.entropy)
            if self._window.is_suspicious(fraction_threshold=0.7):
                if not self._detected:
                    self._detected_at_us = op.timestamp_us
                self._detected = True

    def detect(self) -> bool:
        return self._detected and not self.compromised

    def pre_attack_version(self, lba: int, attack_start_us: int) -> Optional[PageContent]:
        return None


class CryptoDropDefense(SoftwareDefense):
    """CryptoDrop-like detection-only defense.

    Combines several indicators (entropy jump, overwrite of recently
    read data, file-type "churn" approximated by distinct LBAs touched)
    and flags when enough indicators fire together.  No data retention.
    """

    name = "CryptoDrop"
    supports_forensics = False

    def __init__(self, *args, indicator_threshold: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.indicator_threshold = indicator_threshold
        self._recently_read: Deque[int] = deque(maxlen=512)
        self._high_entropy_overwrites = 0
        self._read_then_overwrite = 0
        self._lbas_touched: set = set()
        self._detected = False
        self._detected_at_us: Optional[int] = None

    def on_host_op(self, op: HostOp) -> None:
        if self.compromised:
            return
        pages = range(op.lba, op.lba + max(1, op.npages))
        if op.op_type is HostOpType.READ:
            self._recently_read.extend(pages)
        elif op.op_type is HostOpType.WRITE and op.content is not None:
            self._lbas_touched.update(pages)
            if op.content.entropy >= 7.2:
                self._high_entropy_overwrites += 1
                if any(page in self._recently_read for page in pages):
                    self._read_then_overwrite += 1
            self._evaluate(op.timestamp_us)

    def _evaluate(self, now_us: int) -> None:
        indicators = 0
        if self._high_entropy_overwrites >= 16:
            indicators += 1
        if self._read_then_overwrite >= 8:
            indicators += 1
        if len(self._lbas_touched) >= 64:
            indicators += 1
        if indicators >= self.indicator_threshold:
            if not self._detected:
                self._detected_at_us = now_us
            self._detected = True

    def detect(self) -> bool:
        return self._detected and not self.compromised

    def pre_attack_version(self, lba: int, attack_start_us: int) -> Optional[PageContent]:
        return None


class CloudBackupDefense(SoftwareDefense):
    """Periodic cloud backup driven by a host agent.

    Changed pages are uploaded at every snapshot interval.  Because the
    agent and its credentials live on the host, an aggressive attacker
    deletes the remote copies (or poisons them) when it compromises the
    machine; a stealthy (timing) attacker leaves the backups alone but
    the victim still loses everything written since the last snapshot.
    """

    name = "CloudBackup"
    supports_forensics = False

    def __init__(
        self,
        *args,
        snapshot_interval_us: int = 6 * US_PER_HOUR,
        max_versions_per_page: int = 8,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if snapshot_interval_us <= 0:
            raise ValueError("snapshot_interval_us must be positive")
        if max_versions_per_page < 1:
            raise ValueError("max_versions_per_page must be at least 1")
        self.snapshot_interval_us = snapshot_interval_us
        self.max_versions_per_page = max_versions_per_page
        self._dirty: Dict[int, PageContent] = {}
        self._uploaded: Dict[int, List[Tuple[int, PageContent]]] = {}
        self._last_snapshot_us = 0
        self.snapshots_taken = 0

    def on_host_op(self, op: HostOp) -> None:
        if self.compromised:
            return
        if op.op_type is HostOpType.WRITE and op.content is not None:
            for offset in range(max(1, op.npages)):
                self._dirty[op.lba + offset] = op.content
        if op.timestamp_us - self._last_snapshot_us >= self.snapshot_interval_us:
            self._take_snapshot(op.timestamp_us)

    def _take_snapshot(self, now_us: int) -> None:
        for lba, content in self._dirty.items():
            versions = self._uploaded.setdefault(lba, [])
            versions.append((now_us, content))
            while len(versions) > self.max_versions_per_page:
                versions.pop(0)
        self._dirty.clear()
        self._last_snapshot_us = now_us
        self.snapshots_taken += 1

    def _on_compromised(self) -> None:
        # The attacker uses the agent's credentials to wipe the remote copies.
        self._uploaded.clear()
        self._dirty.clear()

    def pre_attack_version(self, lba: int, attack_start_us: int) -> Optional[PageContent]:
        if self.compromised:
            return None
        best: Optional[Tuple[int, PageContent]] = None
        for snapshot_us, content in self._uploaded.get(lba, []):
            if snapshot_us <= attack_start_us:
                if best is None or snapshot_us > best[0]:
                    best = (snapshot_us, content)
        return best[1] if best is not None else None


class ShieldFSDefense(SoftwareDefense):
    """ShieldFS-like copy-on-write shim in the host file-system layer.

    Keeps the old copy of every overwritten page for a bounded decision
    window while its detector makes up its mind; copies older than the
    window are dropped to bound space.  A paced attack simply outlives
    the window, and a privileged attacker unloads the driver.
    """

    name = "ShieldFS"
    supports_forensics = False

    def __init__(self, *args, window_us: int = 12 * US_PER_HOUR, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = window_us
        self._copies: Dict[int, List[Tuple[int, int, PageContent]]] = {}
        self._window = EntropyWindow(window_size=64)
        self._detected = False
        self._detected_at_us: Optional[int] = None

    def on_host_op(self, op: HostOp) -> None:
        if self.compromised:
            return
        if op.op_type is not HostOpType.WRITE or op.content is None:
            return
        for offset in range(max(1, op.npages)):
            lba = op.lba + offset
            # The CoW store keeps every version written while it is loaded;
            # answering "data as of time T" from it is equivalent to keeping
            # the displaced old copy at each overwrite, and both are subject
            # to the same window-based expiry.
            history = self._copies.setdefault(lba, [])
            history.append((op.timestamp_us, op.timestamp_us, op.content))
            self._expire(lba, op.timestamp_us)
        self._window.observe(op.content.entropy)
        if self._window.is_suspicious(fraction_threshold=0.7):
            if not self._detected:
                self._detected_at_us = op.timestamp_us
            self._detected = True

    def _expire(self, lba: int, now_us: int) -> None:
        history = self._copies.get(lba, [])
        self._copies[lba] = [
            item for item in history if now_us - item[0] <= self.window_us
        ]

    def _on_compromised(self) -> None:
        self._copies.clear()

    def detect(self) -> bool:
        return self._detected and not self.compromised

    def pre_attack_version(self, lba: int, attack_start_us: int) -> Optional[PageContent]:
        if self.compromised:
            return None
        now_us = self.clock.now_us
        best: Optional[Tuple[int, PageContent]] = None
        for created_us, written_us, content in self._copies.get(lba, []):
            if now_us - created_us > self.window_us:
                continue
            if written_us <= attack_start_us:
                if best is None or written_us > best[0]:
                    best = (written_us, content)
        return best[1] if best is not None else None


class JournalingFSDefense(SoftwareDefense):
    """A journaling file system (e.g. JFS/ext4-style data journaling).

    The journal holds only the most recent writes and is recycled
    continuously, so by the time an attack is noticed the pre-attack
    data has long been overwritten in the journal as well.
    """

    name = "JFS"
    supports_forensics = False

    def __init__(self, *args, journal_pages: int = 128, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if journal_pages < 1:
            raise ValueError("journal_pages must be at least 1")
        self.journal_pages = journal_pages
        self._journal: Deque[Tuple[int, int, PageContent]] = deque(maxlen=journal_pages)

    def on_host_op(self, op: HostOp) -> None:
        if self.compromised:
            return
        if op.op_type is HostOpType.WRITE and op.content is not None:
            for offset in range(max(1, op.npages)):
                self._journal.append((op.lba + offset, op.timestamp_us, op.content))

    def _on_compromised(self) -> None:
        self._journal.clear()

    def pre_attack_version(self, lba: int, attack_start_us: int) -> Optional[PageContent]:
        if self.compromised:
            return None
        best: Optional[Tuple[int, PageContent]] = None
        for journal_lba, written_us, content in self._journal:
            if journal_lba == lba and written_us <= attack_start_us:
                if best is None or written_us > best[0]:
                    best = (written_us, content)
        return best[1] if best is not None else None
