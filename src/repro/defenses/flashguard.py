"""FlashGuard-like hardware baseline.

FlashGuard (CCS'17) keeps, inside the FTL, the old copies of pages that
were *read and then overwritten* -- the tell-tale access pattern of
encryption ransomware -- for a bounded number of days.  It defends
against classic ransomware and survives the GC attack (its retained set
is small and it refuses to give it up under capacity pressure), but a
paced attack outlives its retention window and trimmed data is never
retained at all.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set

from repro.defenses.base import HardwareDefense
from repro.sim import US_PER_DAY
from repro.ssd.device import HostOp, HostOpType
from repro.ssd.ftl import InvalidationCause, StalePage


class FlashGuardDefense(HardwareDefense):
    """Retain read-then-overwritten pages for a bounded window."""

    name = "FlashGuard"
    hardware_isolated = True
    supports_forensics = False

    #: FlashGuard's evaluation retains data up to a couple of days.
    window_us = 3 * US_PER_DAY
    capacity_pages = 262_144
    pin_under_pressure = True
    eager_trim_gc = True

    #: How many recently read pages the firmware remembers.
    READ_TRACKING_ENTRIES = 65_536

    def __init__(self, *args, **kwargs) -> None:
        self._recently_read: Deque[int] = deque(maxlen=self.READ_TRACKING_ENTRIES)
        self._recently_read_set: Set[int] = set()
        super().__init__(*args, **kwargs)

    def on_host_op(self, op: HostOp) -> None:
        if op.op_type is HostOpType.READ:
            for offset in range(max(1, op.npages)):
                lba = op.lba + offset
                if lba not in self._recently_read_set:
                    if len(self._recently_read) == self._recently_read.maxlen:
                        evicted = self._recently_read.popleft()
                        self._recently_read_set.discard(evicted)
                    self._recently_read.append(lba)
                    self._recently_read_set.add(lba)

    def _should_retain(self, record: StalePage) -> bool:
        return (
            record.cause is InvalidationCause.OVERWRITE
            and record.lpn in self._recently_read_set
        )
