"""An unprotected commodity SSD, used as the floor of every comparison."""

from __future__ import annotations

from typing import Optional

from repro.defenses.base import Defense
from repro.ssd.device import SSD
from repro.ssd.flash import PageContent


class UnprotectedSSD(Defense):
    """No detection, no retention, commodity trim behaviour."""

    name = "LocalSSD"
    hardware_isolated = True  # there is simply nothing to compromise
    supports_forensics = False

    def _build_device(self) -> SSD:
        return SSD(geometry=self.geometry, clock=self.clock, eager_trim_gc=True)

    def pre_attack_version(self, lba: int, attack_start_us: int) -> Optional[PageContent]:
        return None
