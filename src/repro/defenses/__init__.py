"""Baseline ransomware defenses (the rows of the paper's Table 1).

Every baseline is layered over the same SSD substrate RSSD uses, so the
capability matrix compares *policies*, not simulators:

* Software baselines (:mod:`repro.defenses.software`) live on the host
  and are therefore not hardware-isolated -- an attacker with
  administrator privilege can disable them, which is part of the threat
  model.
* Hardware baselines (:mod:`repro.defenses.flashguard`,
  :mod:`repro.defenses.timessd`, :mod:`repro.defenses.ssdinsider`,
  :mod:`repro.defenses.rblocker`) run inside the device firmware but
  retain data selectively and for a bounded time, which the three new
  attacks exploit.
* :mod:`repro.defenses.rssd_adapter` exposes the full RSSD device
  through the same defense interface so the matrix can score it in the
  same run.
"""

from repro.defenses.base import (
    Defense,
    HardwareDefense,
    SelectiveRetentionPolicy,
    SoftwareDefense,
)
from repro.defenses.flashguard import FlashGuardDefense
from repro.defenses.matrix import (
    CapabilityCell,
    CapabilityMatrix,
    MatrixRow,
    default_defense_factories,
    recovery_grade,
)
from repro.defenses.rblocker import RBlockerDefense
from repro.defenses.rssd_adapter import RSSDDefense
from repro.defenses.software import (
    CloudBackupDefense,
    CryptoDropDefense,
    JournalingFSDefense,
    ShieldFSDefense,
    UnveilDefense,
)
from repro.defenses.ssdinsider import SSDInsiderDefense
from repro.defenses.timessd import TimeSSDDefense
from repro.defenses.unprotected import UnprotectedSSD

__all__ = [
    "CapabilityCell",
    "CapabilityMatrix",
    "CloudBackupDefense",
    "CryptoDropDefense",
    "Defense",
    "FlashGuardDefense",
    "HardwareDefense",
    "JournalingFSDefense",
    "MatrixRow",
    "RBlockerDefense",
    "RSSDDefense",
    "SSDInsiderDefense",
    "SelectiveRetentionPolicy",
    "ShieldFSDefense",
    "SoftwareDefense",
    "TimeSSDDefense",
    "UnprotectedSSD",
    "UnveilDefense",
    "default_defense_factories",
    "recovery_grade",
]
