"""Defense framework shared by all baselines.

A *defense* owns a device (the thing workloads and attacks run
against), may keep host- or firmware-side state, and must answer one
question after an attack: *what did logical page X contain before the
attack started?*  The capability-matrix harness grades every defense by
how much of the victim data it can answer that question for, which is
the measured version of the paper's Table 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Protocol, runtime_checkable

from repro.sim import SimClock, US_PER_DAY
from repro.ssd.device import SSD, HostOp
from repro.ssd.flash import PageContent
from repro.ssd.ftl import FTL, InvalidationCause, StalePage
from repro.ssd.geometry import SSDGeometry


@runtime_checkable
class ForensicReportLike(Protocol):
    """Structural type of a legacy evidence-chain summary.

    Matches :class:`repro.core.forensics.EvidenceChainReport` -- the
    object :meth:`Defense.forensic_report` returns for defenses that
    keep a verifiable operation log.  Kept as a protocol so the defense
    layer does not import the forensics layer at runtime.
    """

    total_entries: int
    sealed_segments: int
    offloaded_segments: int
    chain_verified: bool


@runtime_checkable
class DetectionReportLike(Protocol):
    """Structural type of a detector's verdict report.

    Matches :class:`repro.core.detection.DetectionReport` -- what
    :meth:`Defense.detection_reports` yields for defenses that expose
    per-detector outcomes.  Kept as a protocol so the defense layer does
    not import the detection layer at runtime.
    """

    detector: str
    detected: bool
    detection_time_us: Optional[int]
    trigger: str


@runtime_checkable
class ForensicsEngineLike(Protocol):
    """Structural type of a post-attack analysis service.

    Matches :class:`repro.forensics.engine.ForensicsEngine`; the methods
    listed here are exactly the capability surface the campaign engine,
    the ``repro recover`` CLI and :meth:`repro.api.Session.forensics`
    rely on.
    """

    def verify_chain(self) -> object:
        """Verify the hash chain and remote arrival order."""

    def classify(self) -> object:
        """Identify the attack pattern, origin and blast radius."""

    def recover_to(self, timestamp_us: int, simulate_fetch: bool = False) -> object:
        """Rebuild the device image as of ``timestamp_us`` (read-only)."""

    def snapshots(self) -> object:
        """Recoverable points in the evidence chain, oldest first."""

    def investigate(self) -> object:
        """Run the complete analysis and assemble one forensic report."""


class Defense(ABC):
    """Interface every defense (and RSSD itself, via an adapter) implements."""

    #: Row label used in the capability matrix.
    name: str = "defense"
    #: True if the defense lives below the block interface and cannot be
    #: disabled by a privileged host attacker.
    hardware_isolated: bool = False
    #: True if the defense can produce a trustworthy, ordered record of
    #: the storage operations that led to the attack.
    supports_forensics: bool = False

    def __init__(
        self, geometry: Optional[SSDGeometry] = None, clock: Optional[SimClock] = None
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.geometry = geometry if geometry is not None else SSDGeometry.tiny()
        self.compromised = False
        self.device = self._build_device()

    # -- construction -------------------------------------------------------------

    @abstractmethod
    def _build_device(self):
        """Create the block device this defense protects."""

    # -- threat model ---------------------------------------------------------------

    def compromise(self) -> bool:
        """A privileged attacker attempts to disable the defense.

        Host-resident defenses are disabled (their state is destroyed or
        their agent killed); hardware-isolated ones are unaffected.
        Returns whether the defense is now compromised.
        """
        if not self.hardware_isolated:
            self.compromised = True
            self._on_compromised()
        return self.compromised

    def _on_compromised(self) -> None:
        """Hook for software defenses to drop their host-side state."""

    # -- capabilities -------------------------------------------------------------------

    @abstractmethod
    def pre_attack_version(
        self, lba: int, attack_start_us: int
    ) -> Optional[PageContent]:
        """The newest version of ``lba`` from before ``attack_start_us``.

        Returns ``None`` when the defense cannot produce one (no
        retention, expired, evicted, or compromised).
        """

    def detect(self) -> bool:
        """Whether the defense has flagged ransomware activity so far."""
        return False

    def detection_time_us(self) -> Optional[int]:
        """Device time of the detector's first trigger, if known.

        Detectors that can timestamp their trigger record it in
        ``_detected_at_us``; defenses that only expose a boolean return
        ``None`` and the campaign engine bounds the latency by the end
        of the attack instead.
        """
        if not self.detect():
            return None
        return getattr(self, "_detected_at_us", None)

    def detection_reports(self) -> List[DetectionReportLike]:
        """Per-detector verdict reports, if the defense exposes any.

        Defenses running named detectors (e.g. RSSD's in-firmware window
        detector plus the offloaded full-history detector) return one
        report per detector after :meth:`detect` has run; defenses that
        only answer the boolean return an empty list, and the session
        facade synthesizes a single generic detection event instead.
        """
        return []

    def forensic_report(self) -> Optional[ForensicReportLike]:
        """A verified record of operations, if the defense supports forensics."""
        return None

    def forensics_engine(self) -> Optional[ForensicsEngineLike]:
        """The post-attack analysis service, if the defense supports one.

        Defenses with ``supports_forensics`` return a
        :class:`repro.forensics.engine.ForensicsEngine`-compatible
        object (structurally, a :class:`ForensicsEngineLike`); everything
        else returns ``None``.  This is the single capability probe the
        campaign engine and the ``repro recover`` CLI share.
        """
        return None


class SoftwareDefense(Defense):
    """Base for host-resident defenses: a plain SSD plus host-side state.

    The underlying device behaves exactly like a commodity drive
    (immediate release of stale data, eager trim), because software
    defenses cannot change firmware behaviour.
    """

    hardware_isolated = False

    def _build_device(self) -> SSD:
        device = SSD(geometry=self.geometry, clock=self.clock, eager_trim_gc=True)
        device.add_observer(self)
        return device

    # Observer hook: subclasses override to watch writes.
    def on_host_op(self, op: HostOp) -> None:  # pragma: no cover - default no-op
        return None


class SelectiveRetentionPolicy:
    """Retention policy used by the hardware baselines.

    Retains the stale pages selected by ``should_retain`` for at most
    ``window_us``, holding at most ``capacity_pages`` of them.  When GC
    pressure arrives, the policy either pins its retained set (stalling
    the device, as FlashGuard/TimeSSD effectively do) or releases the
    oldest entries (as the small buffers of detection-first designs do).

    The policy keeps its own index of retained versions; defenses answer
    ``pre_attack_version`` from that index, so expiry and eviction take
    effect immediately regardless of when GC physically erases pages.
    """

    def __init__(
        self,
        clock: SimClock,
        should_retain: Callable[[StalePage], bool],
        window_us: float = 3 * US_PER_DAY,
        capacity_pages: int = 1_000_000,
        pin_under_pressure: bool = True,
    ) -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be at least 1")
        self.clock = clock
        self.should_retain = should_retain
        self.window_us = window_us
        self.capacity_pages = capacity_pages
        self.pin_under_pressure = pin_under_pressure
        self._retained: List[StalePage] = []
        self._evicted = 0
        self._forced_releases = 0
        #: Passive callbacks invoked with ``(record, cause, timestamp_us)``
        #: when a retained version is dropped -- ``"capacity"`` for
        #: ring-buffer overflow, ``"gc-pressure"`` for forced releases
        #: under reclaim pressure.  The :mod:`repro.api` event bus taps
        #: this to publish typed ``RetentionEvictEvent`` records.
        self.evict_listeners: List[Callable[[StalePage, str, int], None]] = []

    # -- RetentionPolicy protocol -------------------------------------------------------

    def on_invalidate(self, record: StalePage) -> None:
        if not self.should_retain(record):
            return
        self._retained.append(record)
        while len(self._retained) > self.capacity_pages:
            evicted = self._retained.pop(0)
            evicted.released = True
            self._evicted += 1
            for listener in self.evict_listeners:
                listener(evicted, "capacity", self.clock.now_us)

    def _expired(self, record: StalePage) -> bool:
        return (self.clock.now_us - record.invalidated_us) > self.window_us

    def _is_retained(self, record: StalePage) -> bool:
        return record in self._retained and not record.released and not self._expired(record)

    def may_release(self, record: StalePage) -> bool:
        return not self._is_retained(record)

    def on_release(self, record: StalePage) -> None:
        if record in self._retained:
            self._retained.remove(record)

    def on_relocate(self, record: StalePage, new_ppn: int) -> None:
        return None

    def reclaim_pressure(self, ftl: FTL, needed_pages: int) -> int:
        if self.pin_under_pressure:
            return 0
        released = 0
        while self._retained and released < needed_pages:
            record = self._retained.pop(0)
            record.released = True
            self._forced_releases += 1
            released += 1
            for listener in self.evict_listeners:
                listener(record, "gc-pressure", self.clock.now_us)
        return released

    # -- queries used by the owning defense ------------------------------------------------

    @property
    def retained_count(self) -> int:
        return sum(1 for record in self._retained if self._is_retained(record))

    @property
    def evicted_count(self) -> int:
        return self._evicted + self._forced_releases

    def lookup(self, lba: int, before_us: int) -> Optional[PageContent]:
        """Newest retained version of ``lba`` written at or before ``before_us``."""
        best: Optional[StalePage] = None
        for record in self._retained:
            if record.lpn != lba or record.released or self._expired(record):
                continue
            if record.written_us <= before_us:
                if best is None or record.written_us > best.written_us:
                    best = record
        return best.content if best is not None else None


class HardwareDefense(Defense):
    """Base for firmware-level baselines built on a selective retention policy."""

    hardware_isolated = True
    #: Retention window (microseconds); subclasses override.
    window_us: float = 3 * US_PER_DAY
    #: Maximum retained pages; subclasses override.
    capacity_pages: int = 1_000_000
    #: Whether the policy pins retained data under GC pressure.
    pin_under_pressure: bool = True
    #: Whether trim on this device eagerly erases data (commodity behaviour).
    eager_trim_gc: bool = True

    def __init__(
        self, geometry: Optional[SSDGeometry] = None, clock: Optional[SimClock] = None
    ) -> None:
        self.policy: Optional[SelectiveRetentionPolicy] = None
        super().__init__(geometry=geometry, clock=clock)

    def _build_device(self) -> SSD:
        self.policy = SelectiveRetentionPolicy(
            clock=self.clock,
            should_retain=self._should_retain,
            window_us=self.window_us,
            capacity_pages=self.capacity_pages,
            pin_under_pressure=self.pin_under_pressure,
        )
        device = SSD(
            geometry=self.geometry,
            clock=self.clock,
            retention_policy=self.policy,
            eager_trim_gc=self.eager_trim_gc,
        )
        device.add_observer(self)
        return device

    def _should_retain(self, record: StalePage) -> bool:
        """Default selection: retain data invalidated by overwrites only."""
        return record.cause is InvalidationCause.OVERWRITE

    def on_host_op(self, op: HostOp) -> None:  # pragma: no cover - default no-op
        return None

    def pre_attack_version(
        self, lba: int, attack_start_us: int
    ) -> Optional[PageContent]:
        assert self.policy is not None
        return self.policy.lookup(lba, attack_start_us)
