"""RBlocker-like hardware baseline.

RBlocker couples an in-firmware detector with write *blocking*: once a
burst of suspicious overwrites is recognised, further writes from the
offending pattern are refused and the small set of buffered old pages
is restored.  Against the new attacks it shares SSDInsider's fate: the
detector is pattern-based (evaded by pacing), the buffer is small
(evicted by a capacity flood) and trim is not covered.
"""

from __future__ import annotations

from repro.crypto.entropy import EntropyWindow
from repro.defenses.base import HardwareDefense
from repro.sim import US_PER_MINUTE
from repro.ssd.device import HostOp, HostOpType
from repro.ssd.ftl import InvalidationCause, StalePage


class RBlockerDefense(HardwareDefense):
    """In-firmware detector that blocks suspicious write bursts."""

    name = "RBlocker"
    hardware_isolated = True
    supports_forensics = False

    window_us = 60 * US_PER_MINUTE
    capacity_pages = 4_096
    pin_under_pressure = False
    eager_trim_gc = True

    def __init__(self, *args, **kwargs) -> None:
        self._entropy_window = EntropyWindow(window_size=96)
        self._detected = False
        self._detected_at_us = None
        self.blocked_writes = 0
        super().__init__(*args, **kwargs)

    def on_host_op(self, op: HostOp) -> None:
        if op.op_type is HostOpType.WRITE and op.content is not None:
            self._entropy_window.observe(op.content.entropy)
            if self._entropy_window.is_suspicious(fraction_threshold=0.7):
                if not self._detected:
                    self._detected_at_us = op.timestamp_us
                self._detected = True
            elif self._detected:
                # Once triggered, RBlocker throttles/blocks further bursty
                # writes; the counter records how often that would happen.
                if op.content.entropy >= 7.2:
                    self.blocked_writes += 1

    def detect(self) -> bool:
        return self._detected

    def _should_retain(self, record: StalePage) -> bool:
        return record.cause is InvalidationCause.OVERWRITE
