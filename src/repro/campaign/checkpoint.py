"""Write-ahead checkpoint journal for resumable sweeps.

A sweep that dies mid-run -- OOM kill, pre-emption, SIGKILL -- should
restart where it stopped and still produce the *same bytes* as an
uninterrupted run.  The mechanism is a :class:`CheckpointJournal`: an
append-only JSONL file whose first line is a header pinning what the
sweep is (kind, seed, grid, artifact schema version, code fingerprint)
and every following line is one completed cell's JSON payload.  Each
append is flushed and ``fsync``'d before the sweep moves on, so the
journal always reflects every cell that finished -- the cell currently
executing is the only work a crash can lose.

Crash realities the loader handles:

* a **torn final line** (the process died mid-``write``) is truncated
  away with a warning -- that cell simply re-runs on resume; the loader
  never crashes on a partially written record;
* a **corrupt interior line** or a missing/mismatched header means the
  file is not a journal for this sweep, which raises
  :class:`CheckpointError` instead of silently resuming the wrong run.

:class:`CrashAfterNCells` is the fault-injection hook the resume test
harness (and the CI ``resume-smoke`` job, via
``REPRO_CRASH_AFTER_CELLS``) uses to kill a sweep at an exact cell
boundary.  Standard library only, like the runner and the cache.
"""

from __future__ import annotations

import io
import json
import os
import warnings
from typing import Dict, Iterator, List, Optional, Tuple

#: Bump when the journal record format changes; resumers refuse other
#: versions rather than guessing.
JOURNAL_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint journal cannot be used for this sweep.

    Raised for a missing journal on ``--resume``, a corrupt interior
    record, or a header that pins a different sweep (other grid, seed,
    artifact version or code fingerprint).
    """


class InjectedCrash(RuntimeError):
    """The fault-injection hook killed the sweep at a cell boundary."""


class CrashAfterNCells:
    """Fault-injection hook: kill the sweep after ``n`` durable cells.

    Passed as the ``after_cell`` hook of a sweep, it counts executed
    cells and, when the ``n``-th becomes durable, either raises
    :class:`InjectedCrash` (``mode="raise"``, the in-process harness)
    or exits the interpreter without any cleanup via ``os._exit(137)``
    (``mode="exit"``, indistinguishable from SIGKILL to the journal:
    no ``atexit``, no buffer flush beyond the journal's own fsync).
    """

    def __init__(self, n: int, mode: str = "raise") -> None:
        """Arm the hook to fire after the ``n``-th executed cell."""
        if n < 1:
            raise ValueError("n must be at least 1")
        if mode not in ("raise", "exit"):
            raise ValueError(f"unknown crash mode {mode!r}")
        self.n = n
        self.mode = mode
        self.cells_seen = 0

    def __call__(self, index: int, spec: object, result: object) -> None:
        """Count one durable cell; crash when the quota is reached."""
        self.cells_seen += 1
        if self.cells_seen >= self.n:
            if self.mode == "exit":
                os._exit(137)
            raise InjectedCrash(
                f"injected crash after {self.cells_seen} cells "
                f"(cell index {index})"
            )


def crash_hook_from_env() -> Optional[CrashAfterNCells]:
    """The CLI's fault hook: ``REPRO_CRASH_AFTER_CELLS=N`` arms a hard exit.

    Returns ``None`` when the variable is unset or empty, so production
    runs pay nothing; the CI ``resume-smoke`` job and the subprocess
    kill tests set it to die at a deterministic cell boundary.
    """
    raw = os.environ.get("REPRO_CRASH_AFTER_CELLS", "").strip()
    if not raw:
        return None
    return CrashAfterNCells(int(raw), mode="exit")


class CheckpointJournal:
    """An append-only, fsync'd JSONL journal of completed cells.

    One journal belongs to one sweep: :meth:`start` writes the header
    (truncating any previous journal -- a fresh run is a fresh
    journal), :meth:`append_cell` makes one cell durable, and
    :meth:`load` rebuilds the completed-cell map for ``--resume``.
    :meth:`iter_payloads_sorted` streams cells back in artifact order
    without holding every payload in memory, which is what lets
    million-cell grids serialize their artifact from disk.
    """

    def __init__(self, path: str) -> None:
        """Wrap the journal file at ``path`` (created on :meth:`start`)."""
        self.path = path
        self._handle: Optional[io.TextIOWrapper] = None
        #: Keys appended or loaded through this object (provenance for
        #: reports; the on-disk file is the source of truth).
        self.keys_written: List[str] = []

    # -- writing -----------------------------------------------------------

    def start(self, header: Dict[str, object]) -> None:
        """Begin a fresh journal: truncate and write the header record.

        ``header`` pins the sweep (see :func:`build_header`); resuming
        later verifies it field by field.
        """
        os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._append({"type": "header", **header})

    def resume(self) -> None:
        """Re-open an existing journal for appending (after :meth:`load`)."""
        self._handle = open(self.path, "a", encoding="utf-8")

    def append_cell(self, key: str, payload: object) -> None:
        """Make one completed cell durable: write, flush, fsync."""
        if self._handle is None:
            raise CheckpointError(
                "journal is not open for writing; call start() or resume()"
            )
        self._append({"type": "cell", "key": key, "payload": payload})
        self.keys_written.append(key)

    def _append(self, record: Dict[str, object]) -> None:
        """Write one record as a single line and force it to disk."""
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file handle (appends re-open lazily)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -----------------------------------------------------------

    def load(self) -> Tuple[Dict[str, object], Dict[str, object]]:
        """Read the journal back: ``(header, completed key->payload)``.

        A torn final line (the signature of a mid-write crash) is
        truncated off the file with a warning -- never an error; that
        cell re-runs.  A missing file, missing header or corrupt
        interior line raises :class:`CheckpointError`.  Duplicate keys
        keep the newest payload, so a journal that recorded a cache
        refresh stays loadable.
        """
        header, cells = self._scan(collect_payloads=True)
        completed = {key: payload for key, _, payload in cells}
        self.keys_written = [key for key, _, _ in cells]
        return header, completed

    def completed_keys(self) -> List[str]:
        """The distinct completed cell keys, in first-seen order."""
        _, cells = self._scan(collect_payloads=False)
        seen = []
        for key, _, _ in cells:
            if key not in seen:
                seen.append(key)
        return seen

    def iter_payloads_sorted(
        self, keys: Optional[set] = None
    ) -> Iterator[object]:
        """Yield cell payloads sorted by key, reading each lazily.

        Only the ``key -> file offset`` index is held in memory; each
        payload is re-read from disk when its turn comes, which is the
        streaming half of the artifact writer
        (:func:`repro.campaign.results.write_artifact_stream`).
        ``keys`` restricts the stream (a resumed run may carry journal
        cells a narrower ``--filter`` excludes from the artifact).
        """
        _, cells = self._scan(collect_payloads=False)
        offsets: Dict[str, int] = {}
        for key, offset, _ in cells:  # later records win, as in load()
            if keys is None or key in keys:
                offsets[key] = offset
        with open(self.path, "rb") as handle:
            for key in sorted(offsets):
                handle.seek(offsets[key])
                record = json.loads(handle.readline().decode("utf-8"))
                yield record["payload"]

    def _scan(
        self, collect_payloads: bool
    ) -> Tuple[Dict[str, object], List[Tuple[str, int, object]]]:
        """Parse the journal: header plus ``(key, offset, payload)`` rows.

        Implements the torn-final-line recovery: if the last line is
        incomplete (no newline, or not valid JSON), the file is
        truncated back to the end of the last good record and a
        warning names how many bytes were dropped.
        """
        if not os.path.exists(self.path):
            raise CheckpointError(f"no checkpoint journal at {self.path}")
        size = os.path.getsize(self.path)
        cells: List[Tuple[str, int, object]] = []
        header: Optional[Dict[str, object]] = None
        offset = 0
        lineno = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                lineno += 1
                try:
                    record = json.loads(raw.decode("utf-8"))
                    if not isinstance(record, dict) or "type" not in record:
                        raise ValueError("not a journal record")
                except (ValueError, UnicodeDecodeError):
                    if offset + len(raw) >= size:
                        # The line runs to end-of-file: the signature
                        # of a crash mid-append.  Drop it; the cell it
                        # would have recorded simply re-runs.
                        self._truncate(offset, len(raw))
                        break
                    raise CheckpointError(
                        f"corrupt journal record at {self.path}:{lineno}"
                    )
                if record["type"] == "header":
                    if lineno != 1:
                        raise CheckpointError(
                            f"unexpected header mid-journal at "
                            f"{self.path}:{lineno}"
                        )
                    header = {k: v for k, v in record.items() if k != "type"}
                elif record["type"] == "cell":
                    cells.append(
                        (
                            str(record["key"]),
                            offset,
                            record["payload"] if collect_payloads else None,
                        )
                    )
                offset += len(raw)
        if header is None:
            raise CheckpointError(f"journal {self.path} has no header record")
        return header, cells

    def _truncate(self, good_end: int, torn_bytes: int) -> None:
        """Drop a torn trailing record, warning about what was lost."""
        warnings.warn(
            f"checkpoint journal {self.path} ends in a torn record "
            f"({torn_bytes} bytes dropped); the interrupted cell will "
            "re-run on resume",
            RuntimeWarning,
            stacklevel=3,
        )
        with open(self.path, "r+b") as handle:
            handle.truncate(good_end)


def build_header(
    kind: str,
    artifact_version: int,
    campaign_seed: int,
    grid: Dict[str, object],
    fingerprint: Optional[str] = None,
) -> Dict[str, object]:
    """The header record pinning what sweep a journal belongs to."""
    from repro.campaign.cache import code_fingerprint

    return {
        "journal_version": JOURNAL_VERSION,
        "kind": kind,
        "artifact_version": artifact_version,
        "campaign_seed": campaign_seed,
        "grid": grid,
        "code_fingerprint": fingerprint or code_fingerprint(),
    }


def verify_header(found: Dict[str, object], expected: Dict[str, object]) -> None:
    """Refuse to resume a journal that pins a different sweep.

    Every header field must match: resuming with a different grid,
    seed, schema version or code fingerprint would splice cells from
    two different experiments into one artifact.
    """
    mismatched = sorted(
        name
        for name in set(found) | set(expected)
        if found.get(name) != expected.get(name)
    )
    if mismatched:
        details = "; ".join(
            f"{name}: journal has {found.get(name)!r}, "
            f"this run expects {expected.get(name)!r}"
            for name in mismatched
        )
        raise CheckpointError(
            f"checkpoint journal pins a different sweep ({details}); "
            "refusing to resume"
        )
