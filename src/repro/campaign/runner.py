"""Pluggable execution backends shared by every evaluation path.

:class:`ExperimentRunner` is a deliberately small abstraction: an
ordered ``map`` over independent work items with a choice of backend.
The campaign engine maps cell specs through it, and the fleet runner
maps per-device replays through it, so both evaluation paths share one
parallelism implementation.

The module depends only on the standard library so that low-level
packages (``repro.workloads``) can import it without pulling in the
defense or attack layers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Backends accepted by :class:`ExperimentRunner`.
BACKENDS = ("sequential", "thread", "process")


class ExperimentRunner:
    """Maps a function over work items with a selectable backend.

    Results are always returned in input order, whatever order the
    backend completes them in, so callers can rely on positional
    correspondence -- the property the determinism tests pin down.

    The ``process`` backend requires ``fn`` and the items to be
    picklable (module-level functions over plain dataclasses); use
    ``thread`` for closures over live simulator objects.
    """

    def __init__(self, backend: str = "sequential", jobs: int = 0) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if jobs < 0:
            raise ValueError("jobs must be non-negative (0 = auto)")
        self.backend = backend
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> List[ResultT]:
        """Apply ``fn`` to every item, returning results in input order."""
        return list(self.imap(fn, items))

    def imap(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> Iterator[ResultT]:
        """Apply ``fn`` to every item, yielding results in input order.

        The incremental form of :meth:`map`: results are handed back
        one at a time, in input order, as soon as each is available.
        The checkpoint journal rides on this -- every completed cell
        can be made durable before the next one is consumed, so a
        killed sweep loses at most the cells still in flight.
        """
        work: Sequence[ItemT] = list(items)
        if not work:
            return
        if self.backend == "sequential" or self.jobs == 1 or len(work) == 1:
            for item in work:
                yield fn(item)
            return
        executor_cls = (
            ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        )
        with executor_cls(max_workers=min(self.jobs, len(work))) as pool:
            yield from pool.map(fn, work)
