"""Declarative campaign grids and per-cell specifications.

A grid is the cartesian product of named defenses, attacks, workload
generators and device configs plus shared scenario parameters.  It
expands into :class:`CellSpec` records that carry everything a worker
process needs -- names and numbers only, so specs pickle cleanly and the
process-pool backend stays trivial.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Sequence

from repro.campaign import registries
from repro.campaign.seeding import derive_seed


@dataclass(frozen=True)
class CellSpec:
    """One fully-specified (defense, attack, workload, device) scenario.

    ``env_seed`` / ``workload_seed`` / ``attack_seed`` are materialized
    at grid expansion, derived from ``(campaign_seed, cell_key)``, so a
    spec is self-contained: executing it anywhere, in any order, on any
    backend gives the same result.
    """

    defense: str
    attack: str
    workload: str
    device_config: str
    victim_files: int
    file_size_bytes: int
    user_activity_hours: float
    recent_edit_fraction: float
    env_seed: int
    workload_seed: int
    attack_seed: int

    @property
    def cell_key(self) -> str:
        """Stable identifier: defense/attack/workload/device_config."""
        return f"{self.defense}/{self.attack}/{self.workload}/{self.device_config}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the spec (names and numbers only)."""
        return asdict(self)


def filter_specs(specs: Iterable[CellSpec], patterns: Sequence[str]) -> List[CellSpec]:
    """Keep specs whose cell key matches any shell-style pattern.

    A bare substring (no glob metacharacters) matches anywhere in the
    key, so ``--filter RSSD`` selects every RSSD cell.
    """
    if not patterns:
        return list(specs)
    globs = [
        pattern if any(ch in pattern for ch in "*?[") else f"*{pattern}*"
        for pattern in patterns
    ]
    return [
        spec
        for spec in specs
        if any(fnmatchcase(spec.cell_key, pattern) for pattern in globs)
    ]


@dataclass
class CampaignGrid:
    """The experiment grid a campaign executes.

    ``seed`` is the campaign seed every cell seed is derived from;
    change it and every cell changes, keep it and every cell reproduces
    bit-for-bit.
    """

    defenses: List[str] = field(
        default_factory=lambda: list(registries.DEFENSES)
    )
    attacks: List[str] = field(
        default_factory=lambda: list(registries.DEFAULT_ATTACKS)
    )
    workloads: List[str] = field(default_factory=lambda: ["office-edit"])
    device_configs: List[str] = field(default_factory=lambda: ["tiny"])
    victim_files: int = 24
    file_size_bytes: int = 8192
    user_activity_hours: float = 30.0
    recent_edit_fraction: float = 0.3
    seed: int = 23

    def __post_init__(self) -> None:
        registries.validate_names(
            self.defenses, self.attacks, self.workloads, self.device_configs
        )
        if self.victim_files < 1:
            raise ValueError("victim_files must be at least 1")
        if self.file_size_bytes < 1:
            raise ValueError("file_size_bytes must be at least 1")

    @classmethod
    def tiny(cls) -> "CampaignGrid":
        """The CI smoke / golden-run grid: small, fast, still cross-layer."""
        return cls(
            defenses=["LocalSSD", "FlashGuard", "RSSD"],
            attacks=["classic", "trimming-attack"],
            workloads=["office-edit"],
            device_configs=["tiny"],
            victim_files=12,
            file_size_bytes=8192,
            user_activity_hours=6.0,
            recent_edit_fraction=0.3,
            seed=71,
        )

    @classmethod
    def evasion_tiny(cls) -> "CampaignGrid":
        """The CI-sized detection-quality grid: adaptive attacks against
        an entropy-window defense, a firmware detector and RSSD."""
        return cls(
            defenses=["LocalSSD", "SSDInsider", "RSSD"],
            attacks=list(registries.EVASIVE_ATTACKS),
            workloads=["office-edit"],
            device_configs=["tiny"],
            victim_files=8,
            file_size_bytes=8192,
            user_activity_hours=4.0,
            recent_edit_fraction=0.3,
            seed=83,
        )

    @classmethod
    def evasion_full(cls) -> "CampaignGrid":
        """The nightly detection-quality sweep: every evasion-strength
        variant against every detection-capable defense row."""
        return cls(
            defenses=[
                "LocalSSD",
                "Unveil",
                "CryptoDrop",
                "ShieldFS",
                "SSDInsider",
                "RSSD",
            ],
            attacks=list(registries.EVASIVE_ATTACKS_FULL),
            workloads=["office-edit"],
            device_configs=["tiny"],
            victim_files=12,
            file_size_bytes=8192,
            user_activity_hours=8.0,
            recent_edit_fraction=0.3,
            seed=83,
        )

    def cells(self, filters: Optional[Sequence[str]] = None) -> List[CellSpec]:
        """Expand the grid (defense-major order) into seeded cell specs."""
        specs: List[CellSpec] = []
        for defense in self.defenses:
            for attack in self.attacks:
                for workload in self.workloads:
                    for device_config in self.device_configs:
                        key = f"{defense}/{attack}/{workload}/{device_config}"
                        specs.append(
                            CellSpec(
                                defense=defense,
                                attack=attack,
                                workload=workload,
                                device_config=device_config,
                                victim_files=self.victim_files,
                                file_size_bytes=self.file_size_bytes,
                                user_activity_hours=self.user_activity_hours,
                                recent_edit_fraction=self.recent_edit_fraction,
                                env_seed=derive_seed(self.seed, key, "env"),
                                workload_seed=derive_seed(self.seed, key, "workload"),
                                attack_seed=derive_seed(self.seed, key, "attack"),
                            )
                        )
        return filter_specs(specs, filters or [])

    def describe(self) -> Dict[str, object]:
        """JSON-ready description embedded in campaign artifacts."""
        return {
            "defenses": list(self.defenses),
            "attacks": list(self.attacks),
            "workloads": list(self.workloads),
            "device_configs": list(self.device_configs),
            "victim_files": self.victim_files,
            "file_size_bytes": self.file_size_bytes,
            "user_activity_hours": self.user_activity_hours,
            "recent_edit_fraction": self.recent_edit_fraction,
            "seed": self.seed,
        }
