"""Content-addressed result cache shared by every sweep path.

Re-running an unchanged cell is wasted work: ``ScenarioSpec.spec_hash``
already identifies a cell's *entire* input (names, sizes, resolved
seeds), and the golden suites prove execution is bit-identical across
backends -- so a stored result is as good as a fresh one.  This module
exploits that: a :class:`ResultCache` stores each cell's JSON payload
under a key derived from ``(spec_hash, artifact_version,
code_fingerprint)``, and :func:`map_with_cache` lets the campaign, ROC
and ablation sweeps serve cells from the store instead of executing
them, with hit/miss/invalidation accounting surfaced through
:class:`CacheStats`.

Invalidation is structural, never time-based:

* a different **spec** (any name, size or resolved seed) changes the
  spec hash, so the lookup simply misses;
* a different **artifact schema version** or **code fingerprint**
  (:func:`code_fingerprint` hashes every ``repro`` source file) makes a
  stored entry *stale*: it is counted, ignored and overwritten.

The module depends only on the standard library, like the runner, so
low-level callers can use it without pulling in the defense layers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from repro.campaign.runner import ExperimentRunner

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.campaign.checkpoint import CheckpointJournal

SpecT = TypeVar("SpecT")
ResultT = TypeVar("ResultT")

#: Environment variable overriding :func:`code_fingerprint` (the fault
#: -injection and invalidation tests pin it to known values).
FINGERPRINT_ENV = "REPRO_CODE_FINGERPRINT"

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path and contents).

    Any edit to the package changes the fingerprint, which invalidates
    every cached result -- the blunt but safe answer to "is this stored
    result still what the current code would produce?".  Computed once
    per process; the ``REPRO_CODE_FINGERPRINT`` environment variable
    overrides it (tests use this to simulate a code change without
    editing files).
    """
    env = os.environ.get(FINGERPRINT_ENV)
    if env:
        return env
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        sources: List[str] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(".py"):
                    sources.append(os.path.join(dirpath, name))
        for path in sources:
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            digest.update(b"\x00")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\x00")
        _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one sweep's cache use."""

    #: Cells served from the store instead of being executed.
    hits: int = 0
    #: Cells with no usable entry (executed, then stored).
    misses: int = 0
    #: Entries found but invalidated by an artifact-version or
    #: code-fingerprint change (counted inside ``misses`` too).
    stale: int = 0
    #: Fresh results written to the store.
    stores: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready view (for reports and sidecar files)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "stores": self.stores,
        }

    def summary(self) -> str:
        """One-line human-readable form for CLI reports."""
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({self.stale} stale), {self.stores} stored"
        )


class ResultCache:
    """A directory of content-addressed cell results.

    Entries live at ``root/objects/<kind>/<hh>/<spec_hash>.json`` where
    ``kind`` namespaces the payload shape (``campaign-cell``,
    ``roc-cell``, ``ablation-cell``) and ``hh`` is the first hash byte,
    keeping directories small on million-cell sweeps.  Each entry is a
    JSON envelope recording the artifact schema version and code
    fingerprint it was produced under; :meth:`get` refuses (and counts
    as *stale*) entries from other versions or fingerprints.

    Writes are atomic (temp file + ``os.replace``), so a killed run
    never leaves a torn entry behind; unreadable entries are treated as
    misses, never as errors.
    """

    def __init__(self, root: str, fingerprint: Optional[str] = None) -> None:
        """Open (creating on demand) the cache rooted at ``root``.

        ``fingerprint`` overrides :func:`code_fingerprint` -- tests use
        it to simulate code changes without touching the environment.
        """
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()

    def entry_path(self, kind: str, spec_hash: str) -> str:
        """Filesystem path of the entry for ``(kind, spec_hash)``."""
        return os.path.join(
            self.root, "objects", kind, spec_hash[:2], f"{spec_hash}.json"
        )

    def get(self, kind: str, spec_hash: str, artifact_version: int) -> Optional[object]:
        """The stored payload, or ``None`` on a miss or stale entry."""
        path = self.entry_path(kind, spec_hash)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if (
            envelope.get("artifact_version") != artifact_version
            or envelope.get("code_fingerprint") != self.fingerprint
        ):
            self.stats.stale += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return envelope.get("payload")

    def put(
        self, kind: str, spec_hash: str, artifact_version: int, payload: object
    ) -> None:
        """Store ``payload`` for ``(kind, spec_hash)``, atomically."""
        path = self.entry_path(kind, spec_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        envelope = {
            "kind": kind,
            "spec_hash": spec_hash,
            "artifact_version": artifact_version,
            "code_fingerprint": self.fingerprint,
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.stores += 1


def map_with_cache(
    runner: ExperimentRunner,
    fn: Callable[[SpecT], ResultT],
    specs: Sequence[SpecT],
    *,
    kind: str,
    artifact_version: int,
    key_fn: Callable[[SpecT], str],
    hash_fn: Callable[[SpecT], str],
    encode: Callable[[ResultT], object],
    decode: Callable[[object], ResultT],
    cache: Optional[ResultCache] = None,
    journal: Optional["CheckpointJournal"] = None,
    completed: Optional[Dict[str, object]] = None,
    after_cell: Optional[Callable[[int, SpecT, ResultT], None]] = None,
) -> List[ResultT]:
    """Map ``fn`` over ``specs``, serving what is already known.

    The persistence layer under every sweep path: each spec is resolved
    in priority order from ``completed`` (a resumed checkpoint
    journal's records), then the ``cache``, and only then executed
    through the ``runner`` -- results always come back in input order,
    exactly like :meth:`ExperimentRunner.map`.  Every freshly executed
    or cache-served cell is appended to ``journal`` (in JSON ``encode``
    form) the moment it completes, so a killed sweep can resume from
    the last durable cell; ``after_cell`` fires after each executed
    cell becomes durable, which is where the fault-injection harness
    hooks in.
    """
    completed = completed or {}
    results: List[Optional[ResultT]] = [None] * len(specs)
    pending: List[SpecT] = []
    pending_indices: List[int] = []
    for index, spec in enumerate(specs):
        key = key_fn(spec)
        if key in completed:
            results[index] = decode(completed[key])
            continue
        if cache is not None:
            payload = cache.get(kind, hash_fn(spec), artifact_version)
            if payload is not None:
                results[index] = decode(payload)
                if journal is not None:
                    journal.append_cell(key, payload)
                continue
        pending.append(spec)
        pending_indices.append(index)
    for index, result in zip(pending_indices, runner.imap(fn, pending)):
        spec = specs[index]
        payload = encode(result)
        if cache is not None:
            cache.put(kind, hash_fn(spec), artifact_version, payload)
        if journal is not None:
            journal.append_cell(key_fn(spec), payload)
        results[index] = result
        if after_cell is not None:
            after_cell(index, spec, result)
    # Every slot is filled: specs either resolved above or ran through
    # the runner, whose imap yields exactly one result per pending item.
    return results  # type: ignore[return-value]
