"""Campaign engine: declarative attack x defense x workload sweeps.

A *campaign* is an experiment grid -- defenses x attacks x workload
generators x device configs -- executed cell by cell through a shared
:class:`~repro.campaign.runner.ExperimentRunner` (sequential, thread or
process backend).  Every cell is seeded deterministically from
``(campaign_seed, cell_key)``, so the same grid and seed produce the
same :class:`~repro.campaign.results.CellResult` records regardless of
backend or execution order, and the whole run serializes to a versioned
JSON artifact that the golden-run regression suite pins bit-for-bit.

The capability matrix (``repro.defenses.matrix``) and the fleet runner
(``repro.workloads.fleet``) are thin facades over this package.
"""

from repro.campaign.engine import run_campaign, run_cell
from repro.campaign.grid import CampaignGrid, CellSpec
from repro.campaign.results import ARTIFACT_VERSION, CampaignArtifact, CellResult
from repro.campaign.roc import (
    ROC_ARTIFACT_VERSION,
    RocArtifact,
    RocCurve,
    RocPoint,
    run_roc,
    run_roc_cell,
)
from repro.campaign.runner import ExperimentRunner
from repro.campaign.seeding import derive_seed

__all__ = [
    "ARTIFACT_VERSION",
    "CampaignArtifact",
    "CampaignGrid",
    "CellResult",
    "CellSpec",
    "ExperimentRunner",
    "ROC_ARTIFACT_VERSION",
    "RocArtifact",
    "RocCurve",
    "RocPoint",
    "derive_seed",
    "run_campaign",
    "run_cell",
    "run_roc",
    "run_roc_cell",
]
