"""Campaign engine: declarative attack x defense x workload sweeps.

A *campaign* is an experiment grid -- defenses x attacks x workload
generators x device configs -- executed cell by cell through a shared
:class:`~repro.campaign.runner.ExperimentRunner` (sequential, thread or
process backend).  Every cell is seeded deterministically from
``(campaign_seed, cell_key)``, so the same grid and seed produce the
same :class:`~repro.campaign.results.CellResult` records regardless of
backend or execution order, and the whole run serializes to a versioned
JSON artifact that the golden-run regression suite pins bit-for-bit.

The capability matrix (``repro.defenses.matrix``) and the fleet runner
(``repro.workloads.fleet``) are thin facades over this package.

Long and repeated sweeps ride an opt-in persistence layer
(:mod:`repro.campaign.cache` and :mod:`repro.campaign.checkpoint`): a
content-addressed :class:`ResultCache` makes re-runs of unchanged cells
free, and an append-only fsync'd :class:`CheckpointJournal` lets a
killed campaign resume from its last durable cell with the final
artifact byte-identical to an uninterrupted run.
"""

from repro.campaign.cache import CacheStats, ResultCache, code_fingerprint
from repro.campaign.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CrashAfterNCells,
    InjectedCrash,
)
from repro.campaign.engine import run_campaign, run_cell
from repro.campaign.grid import CampaignGrid, CellSpec
from repro.campaign.results import (
    ARTIFACT_VERSION,
    CampaignArtifact,
    CellResult,
    write_artifact_stream,
)
from repro.campaign.roc import (
    ROC_ARTIFACT_VERSION,
    RocArtifact,
    RocCurve,
    RocPoint,
    run_roc,
    run_roc_cell,
)
from repro.campaign.runner import ExperimentRunner
from repro.campaign.seeding import derive_seed

__all__ = [
    "ARTIFACT_VERSION",
    "CacheStats",
    "CampaignArtifact",
    "CampaignGrid",
    "CellResult",
    "CellSpec",
    "CheckpointError",
    "CheckpointJournal",
    "CrashAfterNCells",
    "ExperimentRunner",
    "InjectedCrash",
    "ROC_ARTIFACT_VERSION",
    "ResultCache",
    "RocArtifact",
    "RocCurve",
    "RocPoint",
    "code_fingerprint",
    "derive_seed",
    "run_campaign",
    "run_cell",
    "run_roc",
    "run_roc_cell",
    "write_artifact_stream",
]
