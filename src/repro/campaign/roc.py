"""Detection-quality (ROC) evaluation over campaign cells.

The campaign artifact records whether each defense *eventually* fired;
this module measures how well the underlying detector primitives
separate malicious writes from benign ones.  Each cell of an evasion
grid is executed once with a
:class:`~repro.core.detection.DetectionTraceObserver` attached, then
every detector primitive (absolute entropy, entropy jump, sliding
window) is swept across its threshold grid offline, producing one ROC
curve per (defense, attack, workload, device, detector).

Everything is deterministic: cell seeds derive from the campaign seed,
the sweep is pure arithmetic over the recorded stream, and the artifact
serializes canonically -- so ROC artifacts are bit-identical across
backends and execution orders and can be pinned by a golden file, just
like campaign artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.campaign.grid import CampaignGrid, CellSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.campaign.cache import CacheStats, ResultCache
    from repro.campaign.checkpoint import CheckpointJournal
from repro.campaign.runner import ExperimentRunner
from repro.core.detection import (
    DETECTOR_DEFAULTS,
    DetectionTraceObserver,
    detector_names,
    sweep_detector,
)

#: Bump when the ROC artifact schema changes; readers refuse newer versions.
ROC_ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class RocPoint:
    """One detector threshold's confusion counts over a cell's write stream.

    Rates are stored (not recomputed) so the serialized artifact is
    self-contained and bit-comparable.
    """

    threshold: float
    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int
    true_positive_rate: float
    false_positive_rate: float
    precision: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the point."""
        return {
            "threshold": self.threshold,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "true_negatives": self.true_negatives,
            "false_negatives": self.false_negatives,
            "true_positive_rate": self.true_positive_rate,
            "false_positive_rate": self.false_positive_rate,
            "precision": self.precision,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RocPoint":
        """Rebuild a point from its JSON form."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RocCurve:
    """The full threshold sweep of one detector over one cell.

    ``auc`` is the trapezoidal area under the (FPR, TPR) curve anchored
    at (0,0) and (1,1); ``*_at_default`` report the operating point at
    the detector's deployed threshold; ``defense_detected`` is whether
    the cell's *actual* defense flagged the scenario, for comparing the
    swept primitive against the shipped detector.
    """

    cell_key: str
    defense: str
    attack: str
    workload: str
    device_config: str
    detector: str
    default_threshold: float
    tpr_at_default: float
    fpr_at_default: float
    auc: float
    defense_detected: bool
    samples: int
    points: List[RocPoint] = field(default_factory=list)

    @property
    def curve_key(self) -> str:
        """Stable identifier: cell key plus detector name."""
        return f"{self.cell_key}#{self.detector}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the curve (points in threshold order)."""
        return {
            "cell_key": self.cell_key,
            "defense": self.defense,
            "attack": self.attack,
            "workload": self.workload,
            "device_config": self.device_config,
            "detector": self.detector,
            "default_threshold": self.default_threshold,
            "tpr_at_default": self.tpr_at_default,
            "fpr_at_default": self.fpr_at_default,
            "auc": self.auc,
            "defense_detected": self.defense_detected,
            "samples": self.samples,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RocCurve":
        """Rebuild a curve from its JSON form."""
        payload = dict(data)
        points = [RocPoint.from_dict(point) for point in payload.pop("points", [])]
        return cls(points=points, **payload)  # type: ignore[arg-type]


def auc_from_points(points: Sequence[RocPoint]) -> float:
    """Trapezoidal area under the ROC curve described by ``points``.

    The curve is anchored at (0, 0) and (1, 1); duplicate FPR values
    collapse to their best TPR so the sweep grid's density does not
    change the area.
    """
    best_tpr: Dict[float, float] = {}
    for point in points:
        fpr = point.false_positive_rate
        best_tpr[fpr] = max(best_tpr.get(fpr, 0.0), point.true_positive_rate)
    coords = sorted(best_tpr.items())
    if not coords or coords[0][0] > 0.0:
        coords.insert(0, (0.0, 0.0))
    if coords[-1][0] < 1.0:
        coords.append((1.0, 1.0))
    area = 0.0
    for (fpr_a, tpr_a), (fpr_b, tpr_b) in zip(coords, coords[1:]):
        area += (fpr_b - fpr_a) * (tpr_a + tpr_b) / 2.0
    return area


def run_roc_cell(spec: CellSpec) -> List[RocCurve]:
    """Execute one cell with labelled-op capture and sweep every detector.

    Module-level (and returning plain dataclasses) so process pools can
    pickle it, exactly like :func:`repro.campaign.engine.run_cell`.  The
    cell runs as a ``ScenarioSpec`` + ``Session`` with the
    :class:`~repro.core.detection.DetectionTraceObserver` subscribed to
    the session's event bus -- ROC labelling is an ordinary subscriber.
    """
    from repro.campaign.engine import execute_cell_scenario

    observer = DetectionTraceObserver()
    scenario = execute_cell_scenario(spec, observers=[observer])
    samples = observer.samples(scenario.attack_outcome.malicious_streams)
    curves: List[RocCurve] = []
    for detector in detector_names():
        default_threshold = DETECTOR_DEFAULTS[detector]
        points = [
            RocPoint(
                threshold=threshold,
                true_positives=matrix.true_positives,
                false_positives=matrix.false_positives,
                true_negatives=matrix.true_negatives,
                false_negatives=matrix.false_negatives,
                true_positive_rate=matrix.true_positive_rate,
                false_positive_rate=matrix.false_positive_rate,
                precision=matrix.precision,
            )
            for threshold, matrix in sweep_detector(samples, detector)
        ]
        # The operating point is scored explicitly at the deployed
        # default, so it is correct even if the sweep grid is tuned to
        # no longer contain that exact threshold.
        ((_, default_matrix),) = sweep_detector(
            samples, detector, thresholds=(default_threshold,)
        )
        curves.append(
            RocCurve(
                cell_key=spec.cell_key,
                defense=spec.defense,
                attack=spec.attack,
                workload=spec.workload,
                device_config=spec.device_config,
                detector=detector,
                default_threshold=default_threshold,
                tpr_at_default=default_matrix.true_positive_rate,
                fpr_at_default=default_matrix.false_positive_rate,
                auc=auc_from_points(points),
                defense_detected=scenario.detected,
                samples=len(samples),
                points=points,
            )
        )
    return curves


@dataclass
class RocArtifact:
    """A completed detection-quality run: grid description plus curves.

    Mirrors :class:`~repro.campaign.results.CampaignArtifact`: curves
    are sorted by key, serialization is canonical, and :meth:`diff`
    explains regressions field by field for the golden suite and the
    CI baseline check.
    """

    campaign_seed: int
    grid: Dict[str, object]
    curves: List[RocCurve] = field(default_factory=list)
    version: int = ROC_ARTIFACT_VERSION
    #: Cache accounting for the run that built this artifact; in-memory
    #: provenance only, excluded from serialization and comparison so
    #: warm-cache runs stay bit-identical to cold ones.
    cache_stats: Optional["CacheStats"] = field(
        default=None, compare=False, repr=False
    )
    #: Cells served from a resumed checkpoint journal (provenance only,
    #: excluded from serialization and comparison like ``cache_stats``).
    cells_resumed: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.curves = sorted(self.curves, key=lambda curve: curve.curve_key)

    def curve(self, curve_key: str) -> RocCurve:
        """The curve for one ``cell_key#detector`` (``KeyError`` if absent)."""
        for candidate in self.curves:
            if candidate.curve_key == curve_key:
                return candidate
        raise KeyError(f"no curve named {curve_key!r} in this artifact")

    @property
    def curve_keys(self) -> List[str]:
        """All curve keys, in the sorted artifact order."""
        return [curve.curve_key for curve in self.curves]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: version, seed, grid description, sorted curves."""
        return {
            "version": self.version,
            "campaign_seed": self.campaign_seed,
            "grid": self.grid,
            "curves": [curve.to_dict() for curve in self.curves],
        }

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RocArtifact":
        """Rebuild an artifact, refusing versions newer than this reader."""
        version = int(data.get("version", -1))
        if version > ROC_ARTIFACT_VERSION:
            raise ValueError(
                f"ROC artifact version {version} is newer than supported "
                f"version {ROC_ARTIFACT_VERSION}"
            )
        return cls(
            campaign_seed=int(data["campaign_seed"]),  # type: ignore[arg-type]
            grid=dict(data.get("grid", {})),  # type: ignore[arg-type]
            curves=[RocCurve.from_dict(curve) for curve in data.get("curves", [])],  # type: ignore[union-attr]
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "RocArtifact":
        """Parse an artifact from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "RocArtifact":
        """Read an artifact previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def diff(self, baseline: "RocArtifact") -> List[str]:
        """Human-readable curve-level differences against ``baseline``."""
        differences: List[str] = []
        ours = {curve.curve_key: curve for curve in self.curves}
        theirs = {curve.curve_key: curve for curve in baseline.curves}
        for key in sorted(set(theirs) - set(ours)):
            differences.append(f"missing curve: {key}")
        for key in sorted(set(ours) - set(theirs)):
            differences.append(f"extra curve: {key}")
        for key in sorted(set(ours) & set(theirs)):
            mine, other = ours[key].to_dict(), theirs[key].to_dict()
            for fname in sorted(mine):
                if mine[fname] != other[fname]:
                    differences.append(
                        f"{key}: {fname} {other[fname]!r} -> {mine[fname]!r}"
                    )
        return differences


def _run_roc(
    grid: CampaignGrid,
    backend: str = "sequential",
    jobs: int = 0,
    filters: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    specs: Optional[List[CellSpec]] = None,
    cache: Optional["ResultCache"] = None,
    journal: Optional["CheckpointJournal"] = None,
    resume: bool = False,
    after_cell: Optional[Callable[[int, CellSpec, List[RocCurve]], None]] = None,
) -> RocArtifact:
    """Shared implementation behind :func:`repro.api.run_roc`.

    The same contract as :func:`repro.campaign.engine.run_campaign`:
    ``specs`` overrides the grid expansion, results are assembled
    order-independently, and any backend yields the same artifact.
    The ``cache`` / ``journal`` / ``resume`` persistence layer comes
    for free through :func:`repro.campaign.cache.map_with_cache` --
    one journal record per cell, carrying that cell's full curve list.
    """
    from repro.campaign.cache import map_with_cache
    from repro.campaign.checkpoint import build_header, verify_header
    from repro.campaign.engine import cell_spec_hash

    if specs is None:
        specs = grid.cells(filters)
    if runner is None:
        runner = ExperimentRunner(backend=backend, jobs=jobs)
    completed = None
    if journal is not None:
        header = build_header(
            "roc",
            ROC_ARTIFACT_VERSION,
            grid.seed,
            grid.describe(),
            fingerprint=cache.fingerprint if cache is not None else None,
        )
        if resume:
            found, completed = journal.load()
            verify_header(found, header)
            journal.resume()
        else:
            journal.start(header)
    elif resume:
        raise ValueError("resume=True needs a checkpoint journal")
    try:
        per_cell = map_with_cache(
            runner,
            run_roc_cell,
            specs,
            kind="roc-cell",
            artifact_version=ROC_ARTIFACT_VERSION,
            key_fn=lambda spec: spec.cell_key,
            hash_fn=cell_spec_hash,
            encode=lambda curves: [curve.to_dict() for curve in curves],
            decode=lambda payload: [RocCurve.from_dict(curve) for curve in payload],
            cache=cache,
            journal=journal,
            completed=completed,
            after_cell=after_cell,
        )
    finally:
        if journal is not None:
            journal.close()
    curves = [curve for cell_curves in per_cell for curve in cell_curves]
    artifact = RocArtifact(
        campaign_seed=grid.seed, grid=grid.describe(), curves=curves
    )
    artifact.cache_stats = cache.stats if cache is not None else None
    if completed:
        artifact.cells_resumed = sum(
            1 for spec in specs if spec.cell_key in completed
        )
    return artifact


def run_roc(
    grid: CampaignGrid,
    backend: str = "sequential",
    jobs: int = 0,
    filters: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    specs: Optional[List[CellSpec]] = None,
) -> RocArtifact:
    """Deprecated alias of :func:`repro.api.run_roc` (same contract).

    Kept as a warn-once shim so pre-facade callers keep working; new
    code imports ``run_roc`` from :mod:`repro.api`.
    """
    from repro._deprecation import warn_once

    warn_once("repro.campaign.roc.run_roc", "repro.api.run_roc")
    return _run_roc(
        grid, backend=backend, jobs=jobs, filters=filters, runner=runner, specs=specs
    )
