"""Campaign execution: thin cell-level wrappers over the scenario facade.

Scenario execution lives in :mod:`repro.api.session`; this module maps
campaign cells onto it.  ``execute_scenario`` runs one scenario from
live factories (the capability matrix's historical fixed-seed path),
``execute_cell_scenario`` turns a picklable :class:`CellSpec` into a
``ScenarioSpec`` + :class:`~repro.api.session.Session`, ``run_cell``
reduces the outcome to a :class:`~repro.campaign.results.CellResult`,
and ``run_campaign`` maps cells through the
:class:`~repro.campaign.runner.ExperimentRunner`.

The :mod:`repro.api` imports are deliberately function-level: the api
package imports campaign registries and results at module level, so the
campaign package must not import it back while initializing.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.campaign.grid import CampaignGrid, CellSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.api.session import SessionResult
    from repro.campaign.cache import ResultCache
    from repro.campaign.checkpoint import CheckpointJournal
from repro.campaign.results import CampaignArtifact, CellResult
from repro.campaign.runner import ExperimentRunner
from repro.defenses.base import Defense
from repro.sim import SimClock
from repro.ssd.geometry import SSDGeometry

#: Names forwarded lazily from :mod:`repro.api.session` (they moved
#: there when the facade became the implementation layer).
_API_ALIASES = {
    "ScenarioOutcome": "SessionResult",
    "SessionResult": "SessionResult",
    "score_recovery": "score_recovery",
    "score_forensics": "score_forensics",
}


def __getattr__(name: str) -> object:
    """Forward the moved scenario-scoring names to :mod:`repro.api.session`."""
    if name in _API_ALIASES:
        from repro.api import session as api_session

        return getattr(api_session, _API_ALIASES[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def execute_scenario(
    defense_factory: Callable[[SSDGeometry, SimClock], Defense],
    attack_factory: Callable[[], object],
    workload: Callable[..., None],
    geometry: SSDGeometry,
    victim_files: int,
    file_size_bytes: int,
    env_seed: int,
    workload_rng: random.Random,
    user_activity_hours: float,
    recent_edit_fraction: float,
    observers: Optional[Sequence[object]] = None,
) -> "SessionResult":
    """Run one (defense, attack, workload) scenario from live factories.

    A thin wrapper that builds a :class:`~repro.api.session.Session`
    from explicit overrides -- the path for callers outside the
    registries, such as the capability matrix with its historical fixed
    seeds.  ``observers`` are passive ``IOObserver`` objects subscribed
    to the session's bus; they must not perturb the scenario.  Returns
    the session's :class:`~repro.api.session.SessionResult`.
    """
    from repro.api.session import Session

    session = Session(
        defense_factory=defense_factory,
        attack_factory=attack_factory,
        workload=workload,
        geometry=geometry,
        victim_files=victim_files,
        file_size_bytes=file_size_bytes,
        user_activity_hours=user_activity_hours,
        recent_edit_fraction=recent_edit_fraction,
        env_seed=env_seed,
        workload_rng=workload_rng,
        observers=observers or (),
    )
    return session.run()


def execute_cell_scenario(
    spec: CellSpec, observers: Optional[Sequence[object]] = None
) -> "SessionResult":
    """Execute one cell spec and keep the live scenario objects.

    Builds the cell as a ``ScenarioSpec`` + ``Session`` (the facade
    path); ``run_cell`` reduces the result to a picklable
    :class:`~repro.campaign.results.CellResult`, while the
    ``repro recover`` CLI calls this directly so it can keep
    interrogating the defense (forensics, recovery) after the cell was
    scored.
    """
    from repro.api.session import Session
    from repro.api.spec import ScenarioSpec

    session = Session(ScenarioSpec.from_cell(spec), observers=observers or ())
    return session.run()


def run_cell(spec: CellSpec) -> CellResult:
    """Execute one cell spec (module-level, so process pools can pickle it)."""
    return execute_cell_scenario(spec).to_cell_result()


def cell_spec_hash(spec: CellSpec) -> str:
    """The content hash identifying a cell for the result cache.

    A cell's cache identity is its :class:`~repro.api.spec.ScenarioSpec`
    hash -- the canonical JSON of every name, size and *resolved* seed
    -- so any change to what the cell would execute changes the key,
    and nothing else does.
    """
    from repro.api.spec import ScenarioSpec

    return ScenarioSpec.from_cell(spec).spec_hash()


def run_campaign(
    grid: CampaignGrid,
    backend: str = "sequential",
    jobs: int = 0,
    filters: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    specs: Optional[List[CellSpec]] = None,
    cache: Optional["ResultCache"] = None,
    journal: Optional["CheckpointJournal"] = None,
    resume: bool = False,
    after_cell: Optional[Callable[[int, CellSpec, CellResult], None]] = None,
) -> CampaignArtifact:
    """Execute a grid and assemble the (order-independent) artifact.

    ``specs`` overrides the grid expansion (the determinism tests use it
    to prove execution order does not matter); the artifact sorts cells
    by key either way.

    The persistence layer is opt-in and changes nothing about the
    artifact's bytes: ``cache`` serves unchanged cells from a
    content-addressed store instead of executing them (accounting on
    the returned artifact's ``cache_stats``), ``journal`` makes every
    completed cell durable the moment it finishes, and ``resume=True``
    reloads the journal -- verifying its header pins *this* grid, seed,
    schema version and code fingerprint -- and re-runs only what is
    missing.  ``after_cell`` fires after each executed cell becomes
    durable (the fault-injection harness's hook point).
    """
    from repro.campaign.cache import map_with_cache
    from repro.campaign.checkpoint import build_header, verify_header
    from repro.campaign.results import ARTIFACT_VERSION

    if specs is None:
        specs = grid.cells(filters)
    if runner is None:
        runner = ExperimentRunner(backend=backend, jobs=jobs)
    completed: Optional[dict] = None
    if journal is not None:
        header = build_header(
            "campaign",
            ARTIFACT_VERSION,
            grid.seed,
            grid.describe(),
            fingerprint=cache.fingerprint if cache is not None else None,
        )
        if resume:
            found, completed = journal.load()
            verify_header(found, header)
            journal.resume()
        else:
            journal.start(header)
    elif resume:
        raise ValueError("resume=True needs a checkpoint journal")
    try:
        cells = map_with_cache(
            runner,
            run_cell,
            specs,
            kind="campaign-cell",
            artifact_version=ARTIFACT_VERSION,
            key_fn=lambda spec: spec.cell_key,
            hash_fn=cell_spec_hash,
            encode=lambda result: result.to_dict(),
            decode=CellResult.from_dict,
            cache=cache,
            journal=journal,
            completed=completed,
            after_cell=after_cell,
        )
    finally:
        if journal is not None:
            journal.close()
    resumed = (
        sum(1 for spec in specs if spec.cell_key in completed) if completed else 0
    )
    return CampaignArtifact(
        campaign_seed=grid.seed,
        grid=grid.describe(),
        cells=cells,
        cache_stats=cache.stats if cache is not None else None,
        cells_resumed=resumed,
    )
