"""Shared experiment execution: one scenario, one cell, one campaign.

``execute_scenario`` is the single implementation of the paper's
evaluation loop -- build a fresh victim environment on a defense's
device, run the pre-attack workload, let the attacker optionally
disable host defenses, execute the attack, score recovery and overhead.
The capability matrix calls it with live factories and its historical
fixed seeds; ``run_cell`` calls it from a (picklable) :class:`CellSpec`
with per-cell derived seeds; ``run_campaign`` maps cells through the
:class:`~repro.campaign.runner.ExperimentRunner`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.attacks.base import AttackEnvironment, AttackOutcome, build_environment
from repro.campaign import registries
from repro.campaign.grid import CampaignGrid, CellSpec
from repro.campaign.results import CampaignArtifact, CellResult
from repro.campaign.runner import ExperimentRunner
from repro.campaign.seeding import derive_seed
from repro.defenses.base import Defense
from repro.defenses.matrix import DEFENDED_THRESHOLD
from repro.forensics import TraceRecorder, reference_image
from repro.sim import SimClock
from repro.ssd.geometry import SSDGeometry


@dataclass
class ScenarioOutcome:
    """Everything a facade needs to grade one executed scenario.

    The forensic fields are populated only for defenses that support
    forensics (an evidence chain to analyze); ``defense`` keeps the live
    defense object so callers such as the ``repro recover`` CLI can keep
    interrogating the scenario after it was scored.  A
    :class:`ScenarioOutcome` never crosses a process boundary -- workers
    reduce it to a picklable :class:`~repro.campaign.results.CellResult`.
    """

    attack_outcome: AttackOutcome
    recovery_fraction: float
    pages_recovered: int
    defended: bool
    detected: bool
    detection_latency_us: Optional[int]
    compromised: bool
    write_amplification: float
    mean_write_latency_us: float
    mean_read_latency_us: float
    host_commands: int
    flash_pages_programmed: int
    oplog_hash: Optional[str]
    # -- forensics --------------------------------------------------------
    exact_pages_recovered: Optional[int] = None
    exact_pages_lost: Optional[int] = None
    recovery_exact: Optional[bool] = None
    forensic_pattern: Optional[str] = None
    first_malicious_us: Optional[int] = None
    blast_radius_pages: Optional[int] = None
    remote_time_order_ok: Optional[bool] = None
    integrity_errors: List[str] = field(default_factory=list)
    # -- live scenario objects (in-process consumers only) ----------------
    defense: Optional[Defense] = None
    recorder: Optional[TraceRecorder] = None


def score_recovery(
    defense: Defense, env: AttackEnvironment, outcome: AttackOutcome
) -> tuple:
    """Fraction of victim pages whose pre-attack version is producible."""
    recovered = 0
    total = 0
    for lba in outcome.victim_lbas:
        original = outcome.original_fingerprints.get(lba)
        if original is None:
            continue
        total += 1
        live = env.device.read_content(lba)  # type: ignore[attr-defined]
        if live is not None and live.fingerprint == original:
            recovered += 1
            continue
        version = defense.pre_attack_version(lba, outcome.start_us)
        if version is not None and version.fingerprint == original:
            recovered += 1
    fraction = recovered / total if total else 0.0
    return fraction, recovered


def score_forensics(
    defense: Defense,
    outcome: AttackOutcome,
    recorder: Optional[TraceRecorder],
) -> dict:
    """Exact post-attack metrics for defenses with an evidence chain.

    Runs the full forensic pipeline -- chain + remote-order verification,
    attack classification, and a read-only point-in-time rebuild of the
    pre-attack image -- and checks the rebuilt image page for page
    against an independent replay of the recorded command-stream prefix.
    Defenses whose :meth:`~repro.defenses.base.Defense.forensics_engine`
    returns ``None`` (the capability protocol, shared with the
    ``repro recover`` CLI) get the all-``None`` defaults.
    """
    engine = defense.forensics_engine()
    if engine is None:
        return {}
    status = engine.verify_chain()
    classification = engine.classify()
    image = engine.recover_to(outcome.start_us)
    exact = image.is_exact
    if recorder is not None:
        exact = exact and image.matches(reference_image(recorder.ops, outcome.start_us))
    return {
        "exact_pages_recovered": image.pages_recovered,
        "exact_pages_lost": image.pages_lost,
        "recovery_exact": exact,
        "forensic_pattern": classification.pattern,
        "first_malicious_us": classification.first_malicious_us,
        "blast_radius_pages": classification.blast_radius_pages,
        "remote_time_order_ok": status.remote_time_order_ok,
        "integrity_errors": status.errors(),
    }


def execute_scenario(
    defense_factory: Callable[[SSDGeometry, SimClock], Defense],
    attack_factory: Callable[[], object],
    workload: Callable[[AttackEnvironment, random.Random, float, float], None],
    geometry: SSDGeometry,
    victim_files: int,
    file_size_bytes: int,
    env_seed: int,
    workload_rng: random.Random,
    user_activity_hours: float,
    recent_edit_fraction: float,
    observers: Optional[Sequence[object]] = None,
) -> ScenarioOutcome:
    """Run one (defense, attack, workload) scenario and score it.

    ``observers`` are extra passive ``IOObserver`` objects attached to
    the raw SSD before any traffic runs (the detection-quality pipeline
    uses this to capture the labelled write stream); they must not
    perturb the scenario.
    """
    clock = SimClock()
    defense = defense_factory(geometry, clock)
    recorder: Optional[TraceRecorder] = None
    if defense.supports_forensics and hasattr(defense.device, "ssd"):
        # Ground truth for the exact-recovery check: record the raw host
        # command stream independently of the hardware evidence chain.
        recorder = TraceRecorder()
        defense.device.ssd.add_observer(recorder)  # type: ignore[attr-defined]
    for observer in observers or ():
        raw_device = getattr(defense.device, "ssd", defense.device)
        raw_device.add_observer(observer)  # type: ignore[attr-defined]
    env = build_environment(
        defense.device,
        victim_files=victim_files,
        file_size_bytes=file_size_bytes,
        seed=env_seed,
    )
    workload(env, workload_rng, user_activity_hours, recent_edit_fraction)
    attack = attack_factory()
    compromised = False
    if getattr(attack, "aggressive", False):
        compromised = defense.compromise()
    outcome: AttackOutcome = attack.execute(env)  # type: ignore[attr-defined]
    fraction, recovered = score_recovery(defense, env, outcome)

    detected = defense.detect()
    detection_latency_us: Optional[int] = None
    if detected:
        detected_at = defense.detection_time_us()
        if detected_at is not None:
            detection_latency_us = max(0, detected_at - outcome.start_us)
        else:
            # The defense flags but cannot timestamp the trigger: bound
            # the latency by the end of the attack.
            detection_latency_us = outcome.duration_us

    device = defense.device
    metrics = device.metrics  # type: ignore[attr-defined]
    oplog = getattr(device, "oplog", None)

    forensics = score_forensics(defense, outcome, recorder)
    return ScenarioOutcome(
        **forensics,
        defense=defense,
        recorder=recorder,
        attack_outcome=outcome,
        recovery_fraction=fraction,
        pages_recovered=recovered,
        defended=fraction >= DEFENDED_THRESHOLD,
        detected=detected,
        detection_latency_us=detection_latency_us,
        compromised=compromised,
        write_amplification=metrics.write_amplification,
        mean_write_latency_us=metrics.latency["write"].mean_us,
        mean_read_latency_us=metrics.latency["read"].mean_us,
        host_commands=(
            metrics.host_reads
            + metrics.host_writes
            + metrics.host_trims
            + metrics.host_flushes
        ),
        flash_pages_programmed=metrics.flash_pages_programmed,
        oplog_hash=oplog.chain.head.hex() if oplog is not None else None,
    )


def execute_cell_scenario(
    spec: CellSpec, observers: Optional[Sequence[object]] = None
) -> ScenarioOutcome:
    """Execute one cell spec and keep the live scenario objects.

    ``run_cell`` reduces the result to a picklable
    :class:`~repro.campaign.results.CellResult`; the ``repro recover``
    CLI calls this directly so it can keep interrogating the defense
    (forensics, recovery) after the cell was scored.  ``observers`` are
    forwarded to :func:`execute_scenario`.
    """
    defense_factory = registries.DEFENSES[spec.defense]
    attack_builder = registries.ATTACKS[spec.attack]
    workload = registries.WORKLOADS[spec.workload]
    geometry = registries.DEVICE_CONFIGS[spec.device_config]()
    return execute_scenario(
        observers=observers,
        defense_factory=defense_factory,
        attack_factory=lambda: attack_builder(spec.attack_seed),
        workload=workload,
        geometry=geometry,
        victim_files=spec.victim_files,
        file_size_bytes=spec.file_size_bytes,
        env_seed=spec.env_seed,
        workload_rng=random.Random(spec.workload_seed),
        user_activity_hours=spec.user_activity_hours,
        recent_edit_fraction=spec.recent_edit_fraction,
    )


def run_cell(spec: CellSpec) -> CellResult:
    """Execute one cell spec (module-level, so process pools can pickle it)."""
    scenario = execute_cell_scenario(spec)
    outcome = scenario.attack_outcome
    return CellResult(
        cell_key=spec.cell_key,
        defense=spec.defense,
        attack=spec.attack,
        workload=spec.workload,
        device_config=spec.device_config,
        recovery_fraction=scenario.recovery_fraction,
        defended=scenario.defended,
        victim_pages=len(outcome.victim_lbas),
        pages_recovered=scenario.pages_recovered,
        detected=scenario.detected,
        detection_latency_us=scenario.detection_latency_us,
        compromised=scenario.compromised,
        attack_duration_us=outcome.duration_us,
        write_amplification=scenario.write_amplification,
        mean_write_latency_us=scenario.mean_write_latency_us,
        mean_read_latency_us=scenario.mean_read_latency_us,
        host_commands=scenario.host_commands,
        flash_pages_programmed=scenario.flash_pages_programmed,
        oplog_hash=scenario.oplog_hash,
        env_seed=spec.env_seed,
        workload_seed=spec.workload_seed,
        attack_seed=spec.attack_seed,
        exact_pages_recovered=scenario.exact_pages_recovered,
        exact_pages_lost=scenario.exact_pages_lost,
        recovery_exact=scenario.recovery_exact,
        forensic_pattern=scenario.forensic_pattern,
        first_malicious_us=scenario.first_malicious_us,
        blast_radius_pages=scenario.blast_radius_pages,
        remote_time_order_ok=scenario.remote_time_order_ok,
        integrity_errors=list(scenario.integrity_errors),
    )


def run_campaign(
    grid: CampaignGrid,
    backend: str = "sequential",
    jobs: int = 0,
    filters: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
    specs: Optional[List[CellSpec]] = None,
) -> CampaignArtifact:
    """Execute a grid and assemble the (order-independent) artifact.

    ``specs`` overrides the grid expansion (the determinism tests use it
    to prove execution order does not matter); the artifact sorts cells
    by key either way.
    """
    if specs is None:
        specs = grid.cells(filters)
    if runner is None:
        runner = ExperimentRunner(backend=backend, jobs=jobs)
    cells = runner.map(run_cell, specs)
    return CampaignArtifact(
        campaign_seed=grid.seed,
        grid=grid.describe(),
        cells=cells,
    )
