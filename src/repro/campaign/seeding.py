"""Deterministic per-cell seed derivation.

Campaign cells must be reproducible independently of each other and of
the backend that happens to execute them, so every random stream a cell
consumes is seeded from ``(campaign_seed, cell_key, purpose)`` through a
cryptographic hash.  SHA-256 (unlike Python's built-in ``hash``) is
stable across processes, platforms and ``PYTHONHASHSEED`` values, which
is what lets the process-pool backend and the golden-run suite agree
bit-for-bit.
"""

from __future__ import annotations

import hashlib

#: Seeds are folded into 63 bits so they stay positive and fit every
#: consumer (``random.Random`` accepts arbitrary ints, but artifact
#: JSON readers in other languages may not).
_SEED_MASK = 0x7FFF_FFFF_FFFF_FFFF


def derive_seed(campaign_seed: int, *parts: object) -> int:
    """Derive a deterministic 63-bit seed from a campaign seed and labels.

    ``parts`` identify the consumer (typically the cell key plus a
    purpose tag such as ``"env"`` or ``"attack"``); distinct parts give
    statistically independent streams.
    """
    payload = "\x1f".join([str(campaign_seed), *[str(part) for part in parts]])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK
