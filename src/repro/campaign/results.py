"""Structured campaign results and the versioned JSON artifact.

A :class:`CellResult` is the scored outcome of one grid cell; a
:class:`CampaignArtifact` is the whole run -- grid description plus
cells, sorted by cell key so the serialized form is independent of
execution order and backend.  ``to_json`` is canonical (sorted keys,
fixed indentation, trailing newline), which is what lets the golden-run
suite compare artifacts bit-for-bit and ``diff`` explain regressions
field by field.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, TextIO, Union

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.campaign.cache import CacheStats

#: Bump when the artifact schema changes; readers refuse newer versions.
ARTIFACT_VERSION = 2


@dataclass(frozen=True)
class CellResult:
    """Scored outcome of one (defense, attack, workload, device) cell."""

    cell_key: str
    defense: str
    attack: str
    workload: str
    device_config: str
    # -- recovery ---------------------------------------------------------
    recovery_fraction: float
    defended: bool
    victim_pages: int
    pages_recovered: int
    # -- detection --------------------------------------------------------
    detected: bool
    #: Microseconds from attack start to the detector's first trigger;
    #: bounded by attack end when the defense cannot timestamp the
    #: trigger; ``None`` when nothing was detected.
    detection_latency_us: Optional[int]
    compromised: bool
    attack_duration_us: int
    # -- I/O overhead -----------------------------------------------------
    write_amplification: float
    mean_write_latency_us: float
    mean_read_latency_us: float
    host_commands: int
    flash_pages_programmed: int
    # -- provenance -------------------------------------------------------
    #: Hex head of the device's hardware operation-log hash chain (RSSD
    #: cells); ``None`` for devices without an oplog.  Pins the exact
    #: command stream the cell produced.
    oplog_hash: Optional[str]
    env_seed: int
    workload_seed: int
    attack_seed: int
    # -- forensics (populated for defenses with ``supports_forensics``;
    # -- defaults elsewhere, and in version-1 artifacts) -------------------
    #: Pages the point-in-time rebuild actually produced (exact count,
    #: not an estimate; ``None`` when the defense has no evidence chain).
    exact_pages_recovered: Optional[int] = None
    #: Pages mapped at the recovery target but not producible.
    exact_pages_lost: Optional[int] = None
    #: True when the rebuilt pre-attack image matched an independent
    #: replay of the recorded command-stream prefix page for page.
    recovery_exact: Optional[bool] = None
    #: Attack family the forensic classifier identified (e.g.
    #: ``"encrypt-then-trim"``); ``"none"`` when nothing malicious found.
    forensic_pattern: Optional[str] = None
    #: Device time of the first malicious operation in the evidence.
    first_malicious_us: Optional[int] = None
    #: Distinct logical pages the attacker wrote or trimmed.
    blast_radius_pages: Optional[int] = None
    #: Arrival-order check of the NVMe-oE remote tier.
    remote_time_order_ok: Optional[bool] = None
    #: Structured integrity failures (chain mismatch, remote-order
    #: violation).  Non-empty means the cell's evidence is not trusted.
    integrity_errors: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the cell (field names preserved verbatim)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellResult":
        """Rebuild a cell; fields newer than the artifact default themselves."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class CampaignArtifact:
    """A completed campaign: grid description plus per-cell results."""

    campaign_seed: int
    grid: Dict[str, object]
    cells: List[CellResult] = field(default_factory=list)
    version: int = ARTIFACT_VERSION
    #: Cache hit/miss accounting for the run that built this artifact.
    #: In-memory provenance only: deliberately excluded from
    #: :meth:`to_dict`, comparison and the goldens, so a warm-cache or
    #: resumed run serializes byte-identically to a cold one.
    cache_stats: Optional["CacheStats"] = field(
        default=None, compare=False, repr=False
    )
    #: Cells served from a resumed checkpoint journal (provenance only,
    #: excluded from serialization and comparison like ``cache_stats``).
    cells_resumed: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.cells = sorted(self.cells, key=lambda cell: cell.cell_key)

    # -- lookups ----------------------------------------------------------

    def cell(self, cell_key: str) -> CellResult:
        """The result for one cell key (raises ``KeyError`` if absent)."""
        for result in self.cells:
            if result.cell_key == cell_key:
                return result
        raise KeyError(f"no cell named {cell_key!r} in this artifact")

    @property
    def cell_keys(self) -> List[str]:
        """All cell keys, in the sorted artifact order."""
        return [result.cell_key for result in self.cells]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: version, seed, grid description, sorted cells."""
        return {
            "version": self.version,
            "campaign_seed": self.campaign_seed,
            "grid": self.grid,
            "cells": [result.to_dict() for result in self.cells],
        }

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignArtifact":
        """Rebuild an artifact, refusing versions newer than this reader."""
        version = int(data.get("version", -1))
        if version > ARTIFACT_VERSION:
            raise ValueError(
                f"artifact version {version} is newer than supported "
                f"version {ARTIFACT_VERSION}"
            )
        return cls(
            campaign_seed=int(data["campaign_seed"]),  # type: ignore[arg-type]
            grid=dict(data.get("grid", {})),  # type: ignore[arg-type]
            cells=[CellResult.from_dict(cell) for cell in data.get("cells", [])],  # type: ignore[union-attr]
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignArtifact":
        """Parse an artifact from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "CampaignArtifact":
        """Read an artifact previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- comparison -------------------------------------------------------

    def diff(self, baseline: "CampaignArtifact") -> List[str]:
        """Human-readable field-level differences against ``baseline``.

        Returns an empty list when the artifacts agree on every cell
        they share and neither has cells the other lacks.
        """
        differences: List[str] = []
        ours = {cell.cell_key: cell for cell in self.cells}
        theirs = {cell.cell_key: cell for cell in baseline.cells}
        for key in sorted(set(theirs) - set(ours)):
            differences.append(f"missing cell: {key}")
        for key in sorted(set(ours) - set(theirs)):
            differences.append(f"extra cell: {key}")
        for key in sorted(set(ours) & set(theirs)):
            mine, other = ours[key].to_dict(), theirs[key].to_dict()
            for fname in sorted(mine):
                if mine[fname] != other[fname]:
                    differences.append(
                        f"{key}: {fname} {other[fname]!r} -> {mine[fname]!r}"
                    )
        return differences


def _indent_block(value: object, level: int) -> str:
    """``json.dumps(value, indent=2, sort_keys=True)`` nested at ``level``.

    The first line carries no padding (it follows a key or a comma the
    caller already wrote); every continuation line is shifted by the
    nesting depth, exactly as ``json.dumps`` would have placed it had
    ``value`` been embedded in the enclosing document.
    """
    text = json.dumps(value, indent=2, sort_keys=True)
    return text.replace("\n", "\n" + "  " * level)


def write_artifact_stream(
    destination: Union[str, "TextIO"],
    campaign_seed: int,
    grid: Dict[str, object],
    cells: Iterable[Dict[str, object]],
    version: int = ARTIFACT_VERSION,
) -> int:
    """Write a campaign artifact incrementally, one cell at a time.

    Produces **exactly** the bytes of :meth:`CampaignArtifact.to_json`
    (canonical key order, two-space indentation, trailing newline)
    without ever materializing the cell list: ``cells`` is an iterable
    of JSON-ready cell dicts **already sorted by** ``cell_key`` --
    typically :meth:`CheckpointJournal.iter_payloads_sorted
    <repro.campaign.checkpoint.CheckpointJournal.iter_payloads_sorted>`,
    which holds only a key->offset index in memory.  That pair is what
    keeps million-cell grids from holding every ``CellResult`` at once.
    Returns the number of cells written.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_artifact_stream(
                handle, campaign_seed, grid, cells, version=version
            )
    out = destination
    out.write("{\n")
    out.write(f'  "campaign_seed": {json.dumps(campaign_seed, sort_keys=True)},\n')
    out.write('  "cells": [')
    count = 0
    for cell in cells:
        out.write(",\n    " if count else "\n    ")
        out.write(_indent_block(cell, 2))
        count += 1
    out.write("\n  ],\n" if count else "],\n")
    out.write(f'  "grid": {_indent_block(grid, 1)},\n')
    out.write(f'  "version": {json.dumps(version, sort_keys=True)}\n')
    out.write("}\n")
    return count
