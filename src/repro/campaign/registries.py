"""Named factories for every grid dimension.

The campaign engine executes cells in worker processes, so a cell spec
carries only *names*; this module resolves them to live objects.  The
defense registry is the canonical list of Table-1 rows (the capability
matrix re-exports it), the attack registry covers the paper's attack
families plus the classic-ransomware destruction variants, workload
registries describe the pre-attack victim activity, and device configs
map to SSD geometries.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.attacks.adaptive import (
    EntropyMimicryAttack,
    EvasionPolicy,
    IntermittentEncryptionAttack,
    RateThrottledAttack,
    TrimInterleavedWipeAttack,
)
from repro.attacks.base import AttackEnvironment, NoOpAttack, RansomwareAttack
from repro.attacks.classic import ClassicRansomware, DestructionMode
from repro.attacks.gc_attack import GCAttack
from repro.attacks.timing_attack import TimingAttack
from repro.attacks.trimming_attack import TrimmingAttack
from repro.defenses.base import Defense
from repro.defenses.flashguard import FlashGuardDefense
from repro.defenses.rblocker import RBlockerDefense
from repro.defenses.rssd_adapter import RSSDDefense
from repro.defenses.software import (
    CloudBackupDefense,
    CryptoDropDefense,
    JournalingFSDefense,
    ShieldFSDefense,
    UnveilDefense,
)
from repro.defenses.ssdinsider import SSDInsiderDefense
from repro.defenses.timessd import TimeSSDDefense
from repro.defenses.unprotected import UnprotectedSSD
from repro.sim import SimClock, US_PER_HOUR
from repro.ssd.geometry import SSDGeometry

DefenseFactory = Callable[[SSDGeometry, SimClock], Defense]
AttackBuilder = Callable[[int], RansomwareAttack]

# ---------------------------------------------------------------------------
# Defenses (the rows of the paper's Table 1, plus the unprotected floor)
# ---------------------------------------------------------------------------

DEFENSES: Dict[str, DefenseFactory] = {
    "LocalSSD": lambda geometry, clock: UnprotectedSSD(geometry=geometry, clock=clock),
    "Unveil": lambda geometry, clock: UnveilDefense(geometry=geometry, clock=clock),
    "CryptoDrop": lambda geometry, clock: CryptoDropDefense(geometry=geometry, clock=clock),
    "CloudBackup": lambda geometry, clock: CloudBackupDefense(geometry=geometry, clock=clock),
    "ShieldFS": lambda geometry, clock: ShieldFSDefense(geometry=geometry, clock=clock),
    "JFS": lambda geometry, clock: JournalingFSDefense(geometry=geometry, clock=clock),
    "FlashGuard": lambda geometry, clock: FlashGuardDefense(geometry=geometry, clock=clock),
    "TimeSSD": lambda geometry, clock: TimeSSDDefense(geometry=geometry, clock=clock),
    "SSDInsider": lambda geometry, clock: SSDInsiderDefense(geometry=geometry, clock=clock),
    "RBlocker": lambda geometry, clock: RBlockerDefense(geometry=geometry, clock=clock),
    "RSSD": lambda geometry, clock: RSSDDefense(geometry=geometry, clock=clock),
}

# ---------------------------------------------------------------------------
# Attacks (column families; each builder takes the cell's attack seed)
# ---------------------------------------------------------------------------

ATTACKS: Dict[str, AttackBuilder] = {
    # -- the benign column: no attack at all (pure workload measurement;
    # -- the offload-throughput and false-positive experiments use it).
    "none": lambda seed: NoOpAttack(seed=seed),
    "classic": lambda seed: ClassicRansomware(
        destruction=DestructionMode.OVERWRITE, seed=seed
    ),
    "classic-delete": lambda seed: ClassicRansomware(
        destruction=DestructionMode.DELETE, seed=seed
    ),
    "classic-trim": lambda seed: ClassicRansomware(
        destruction=DestructionMode.TRIM, seed=seed
    ),
    "gc-attack": lambda seed: GCAttack(seed=seed),
    "timing-attack": lambda seed: TimingAttack(seed=seed),
    "trimming-attack": lambda seed: TrimmingAttack(seed=seed),
    # -- adaptive (detection-aware) family; the suffix-less names run the
    # -- light policy, the suffixed variants are the evasion-strength axis.
    "entropy-mimicry": lambda seed: EntropyMimicryAttack(seed=seed),
    "entropy-mimicry-strong": lambda seed: EntropyMimicryAttack(
        policy=EvasionPolicy.strong(), seed=seed
    ),
    "intermittent-encrypt": lambda seed: IntermittentEncryptionAttack(seed=seed),
    "intermittent-encrypt-sparse": lambda seed: IntermittentEncryptionAttack(
        policy=EvasionPolicy.strong(), seed=seed
    ),
    "low-slow-v2": lambda seed: RateThrottledAttack(seed=seed),
    "low-slow-v2-strong": lambda seed: RateThrottledAttack(
        policy=EvasionPolicy.strong(), seed=seed
    ),
    "trim-interleave": lambda seed: TrimInterleavedWipeAttack(seed=seed),
}

#: The four attack columns the paper's Table 1 scores.
DEFAULT_ATTACKS: List[str] = ["classic", "gc-attack", "timing-attack", "trimming-attack"]

#: The adaptive-attack columns the detection-quality (ROC) pipeline
#: scores by default; the ``-strong`` / ``-sparse`` registry variants
#: extend the sweep along the evasion-strength axis.
EVASIVE_ATTACKS: List[str] = [
    "entropy-mimicry",
    "intermittent-encrypt",
    "low-slow-v2",
    "trim-interleave",
]

#: Every evasion-strength variant, for the nightly full sweep.
EVASIVE_ATTACKS_FULL: List[str] = EVASIVE_ATTACKS + [
    "entropy-mimicry-strong",
    "intermittent-encrypt-sparse",
    "low-slow-v2-strong",
]

# ---------------------------------------------------------------------------
# Pre-attack workload generators
# ---------------------------------------------------------------------------


def office_edit_activity(
    env: AttackEnvironment,
    rng: random.Random,
    hours: float,
    recent_edit_fraction: float,
    sessions: int = 6,
) -> None:
    """Simulate a user working on the victim files before the attack.

    Edits are spread over ``hours``; a final burst of edits lands
    shortly before the attack so that snapshot-based defenses have
    changes they have not yet backed up -- the reason backup recovery is
    partial rather than complete.  (This is the capability matrix's
    historical user-activity model, verbatim.)
    """
    files = env.fs.list_files()
    if not files:
        return
    session_gap_us = int(hours * US_PER_HOUR / sessions)
    for session in range(sessions):
        env.clock.advance(session_gap_us)
        for name in rng.sample(files, max(1, len(files) // 4)):
            data = env.fs.read_file(name)
            edited = data[: len(data) // 2] + b" edited v%d " % session + data[len(data) // 2 :]
            env.fs.overwrite_file(name, edited[: len(data)])
    # Recent, not-yet-backed-up edits right before the attack.
    recent = rng.sample(files, max(1, int(len(files) * recent_edit_fraction)))
    env.clock.advance(US_PER_HOUR // 2)
    for name in recent:
        data = env.fs.read_file(name)
        edited = (b"last minute change " + data)[: len(data)]
        env.fs.overwrite_file(name, edited)
    env.clock.advance(US_PER_HOUR // 4)


def idle_activity(
    env: AttackEnvironment,
    rng: random.Random,
    hours: float,
    recent_edit_fraction: float,
) -> None:
    """A victim machine that merely ages: time passes, nothing is edited.

    Exercises defenses whose retention windows expire on wall-clock time
    even without write traffic.
    """
    env.clock.advance(int(hours * US_PER_HOUR))


#: Workload generators share one signature: (env, rng, hours, recent_fraction).
ActivityFn = Callable[[AttackEnvironment, random.Random, float, float], None]


def trace_replay_activity(volume: str) -> ActivityFn:
    """Build a workload replaying a profiled MSR/FIU storage trace.

    The returned activity synthesizes a trace matching the named
    volume's profile (:func:`repro.analysis.retention.lookup_volume`)
    over half the device's exported capacity and replays it in
    timestamp order under 30,000x time compression -- the retention
    experiments' standard setting.  ``hours`` is interpreted as seconds
    of original (uncompressed) trace time, so the legacy experiments'
    ``duration_s=0.1`` maps to ``user_activity_hours=0.1``; a
    non-positive duration replays nothing.  The trace seed is drawn
    from the workload rng, so campaign cells reproduce bit-identically.
    """

    def activity(
        env: AttackEnvironment,
        rng: random.Random,
        hours: float,
        recent_edit_fraction: float,
    ) -> None:
        if hours <= 0:
            return
        from repro.analysis.retention import lookup_volume
        from repro.workloads.replay import TraceReplayer
        from repro.workloads.synthetic import profile_workload

        profile = lookup_volume(volume)
        records = profile_workload(
            profile,
            capacity_pages=env.device.capacity_pages // 2,  # type: ignore[attr-defined]
            duration_s=hours,
            seed=rng.randrange(1 << 31),
            stream_id=env.user_stream,
            time_compression=30_000.0,
        )
        TraceReplayer(env.device).replay(records)  # type: ignore[arg-type]

    return activity


#: Every trace volume the retention analysis knows (MSR plus FIU).
TRACE_VOLUMES: List[str] = [
    "hm", "prn", "proj", "rsrch", "src", "stg", "ts", "usr", "wdev", "web",
    "email", "fiu-res", "online", "webresearch", "webusers",
]

WORKLOADS: Dict[str, ActivityFn] = {
    "office-edit": office_edit_activity,
    "idle": idle_activity,
}
WORKLOADS.update(
    {f"trace-{volume}": trace_replay_activity(volume) for volume in TRACE_VOLUMES}
)

# ---------------------------------------------------------------------------
# Device configurations
# ---------------------------------------------------------------------------

DEVICE_CONFIGS: Dict[str, Callable[[], SSDGeometry]] = {
    "tiny": SSDGeometry.tiny,
    "small": SSDGeometry.small,
}


def _check(registry: Dict[str, object], names: List[str], kind: str) -> None:
    unknown = [name for name in names if name not in registry]
    if unknown:
        raise KeyError(
            f"unknown {kind} {sorted(unknown)}; known: {sorted(registry)}"
        )


def validate_names(
    defenses: List[str],
    attacks: List[str],
    workloads: List[str],
    device_configs: List[str],
) -> None:
    """Fail fast (with the full known list) on any unknown grid name."""
    _check(DEFENSES, defenses, "defenses")
    _check(ATTACKS, attacks, "attacks")
    _check(WORKLOADS, workloads, "workloads")
    _check(DEVICE_CONFIGS, device_configs, "device configs")
