"""Small compatibility shims.

``DATACLASS_SLOTS`` expands to ``{"slots": True}`` on interpreters that
support it (3.10+) and to nothing on 3.9, so hot-path dataclasses can be
declared once as ``@dataclass(**DATACLASS_SLOTS)`` without a version
fork.  Slots cut per-instance memory and attribute-lookup cost for the
records that still cross the kernel boundary as objects.
"""

import sys

DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}
