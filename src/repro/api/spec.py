"""Declarative, validated scenario specifications.

A :class:`ScenarioSpec` is the single description of one
device-under-attack scenario: which defense protects which device
geometry, which workload ages the victim, which attack runs, and the
seed every random stream derives from.  It is a frozen dataclass of
names and numbers only, so a spec can be

* **validated** eagerly (unknown registry names and nonsensical sizes
  fail at construction, not deep inside a worker process),
* **serialized** canonically to JSON (stable key order, trailing
  newline) and rebuilt bit-identically,
* **diffed** field by field and **hashed** (:meth:`ScenarioSpec.spec_hash`)
  so two hosts can agree they are about to run the same experiment, and
* **shipped** -- to a process pool, a fleet, or a future remote backend
  -- and executed anywhere with identical results.

Seeds follow the campaign engine's derivation exactly: every stream is
seeded from ``(seed, scenario_key, purpose)`` through SHA-256
(:func:`repro.campaign.seeding.derive_seed`), so a ``ScenarioSpec``
built from a campaign cell reproduces that cell bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional

from repro.campaign import registries
from repro.campaign.grid import CellSpec
from repro.campaign.seeding import derive_seed

#: Bump when the spec schema changes; readers refuse newer versions.
SPEC_VERSION = 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified, registry-validated scenario.

    ``defense``, ``attack``, ``workload`` and ``device`` are names in
    the campaign registries (:mod:`repro.campaign.registries`); unknown
    names raise :class:`KeyError` at construction with the full known
    list.  ``env_seed`` / ``workload_seed`` / ``attack_seed`` default to
    ``None``, meaning *derive from* ``seed`` *the SHA-256 way*; explicit
    values override the derivation (campaign cells carry their
    grid-derived seeds explicitly).
    """

    defense: str = "RSSD"
    attack: str = "classic"
    workload: str = "office-edit"
    device: str = "tiny"
    victim_files: int = 24
    file_size_bytes: int = 8192
    user_activity_hours: float = 30.0
    recent_edit_fraction: float = 0.3
    seed: int = 23
    env_seed: Optional[int] = None
    workload_seed: Optional[int] = None
    attack_seed: Optional[int] = None

    def __post_init__(self) -> None:
        registries.validate_names(
            [self.defense], [self.attack], [self.workload], [self.device]
        )
        if self.victim_files < 1:
            raise ValueError("victim_files must be at least 1")
        if self.file_size_bytes < 1:
            raise ValueError("file_size_bytes must be at least 1")
        if self.user_activity_hours < 0:
            raise ValueError("user_activity_hours must be non-negative")
        if not 0.0 <= self.recent_edit_fraction <= 1.0:
            raise ValueError("recent_edit_fraction must be within [0, 1]")

    # -- identity ----------------------------------------------------------

    @property
    def scenario_key(self) -> str:
        """Stable identifier: defense/attack/workload/device.

        Identical to the campaign engine's cell key, so specs and cells
        name the same scenario the same way.
        """
        return f"{self.defense}/{self.attack}/{self.workload}/{self.device}"

    # -- seed resolution ---------------------------------------------------

    @property
    def resolved_env_seed(self) -> int:
        """The environment seed: explicit override or SHA-256 derivation."""
        if self.env_seed is not None:
            return self.env_seed
        return derive_seed(self.seed, self.scenario_key, "env")

    @property
    def resolved_workload_seed(self) -> int:
        """The workload-rng seed: explicit override or SHA-256 derivation."""
        if self.workload_seed is not None:
            return self.workload_seed
        return derive_seed(self.seed, self.scenario_key, "workload")

    @property
    def resolved_attack_seed(self) -> int:
        """The attack-rng seed: explicit override or SHA-256 derivation."""
        if self.attack_seed is not None:
            return self.attack_seed
        return derive_seed(self.seed, self.scenario_key, "attack")

    def resolve_seeds(self) -> "ScenarioSpec":
        """A copy with every per-stream seed materialized explicitly.

        The resolved form is what should be shipped to a fleet: it is
        self-contained (no derivation step on the receiving side) and
        hashes identically everywhere.
        """
        return replace(
            self,
            env_seed=self.resolved_env_seed,
            workload_seed=self.resolved_workload_seed,
            attack_seed=self.resolved_attack_seed,
        )

    # -- campaign interop --------------------------------------------------

    @classmethod
    def from_cell(cls, cell: CellSpec, campaign_seed: int = 0) -> "ScenarioSpec":
        """Adopt a campaign cell spec, keeping its grid-derived seeds.

        The cell's materialized seeds become explicit overrides, so the
        resulting spec executes bit-identically to the cell regardless
        of ``campaign_seed`` (kept only as provenance).
        """
        return cls(
            defense=cell.defense,
            attack=cell.attack,
            workload=cell.workload,
            device=cell.device_config,
            victim_files=cell.victim_files,
            file_size_bytes=cell.file_size_bytes,
            user_activity_hours=cell.user_activity_hours,
            recent_edit_fraction=cell.recent_edit_fraction,
            seed=campaign_seed,
            env_seed=cell.env_seed,
            workload_seed=cell.workload_seed,
            attack_seed=cell.attack_seed,
        )

    def to_cell(self) -> CellSpec:
        """The campaign-engine view of this spec (seeds resolved)."""
        return CellSpec(
            defense=self.defense,
            attack=self.attack,
            workload=self.workload,
            device_config=self.device,
            victim_files=self.victim_files,
            file_size_bytes=self.file_size_bytes,
            user_activity_hours=self.user_activity_hours,
            recent_edit_fraction=self.recent_edit_fraction,
            env_seed=self.resolved_env_seed,
            workload_seed=self.resolved_workload_seed,
            attack_seed=self.resolved_attack_seed,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the spec, seeds resolved, schema-versioned."""
        payload = asdict(self.resolve_seeds())
        payload["version"] = SPEC_VERSION
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec, refusing schema versions newer than this reader."""
        payload = dict(data)
        version = int(payload.pop("version", SPEC_VERSION))  # type: ignore[arg-type]
        if version > SPEC_VERSION:
            raise ValueError(
                f"scenario spec version {version} is newer than supported "
                f"version {SPEC_VERSION}"
            )
        unknown = set(payload) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(f"unknown scenario spec fields: {sorted(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Read a spec previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- comparison --------------------------------------------------------

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON form (stable across processes).

        Per-stream seeds are compared in resolved form, so a spec whose
        seeds were derived hashes the same as its explicitly-resolved
        copy; any difference in names, sizes or resolved seeds changes
        the hash.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def diff(self, other: "ScenarioSpec") -> List[str]:
        """Human-readable field-level differences against ``other``."""
        mine, theirs = self.to_dict(), other.to_dict()
        return [
            f"{name}: {theirs[name]!r} -> {mine[name]!r}"
            for name in sorted(mine)
            if mine[name] != theirs[name]
        ]
