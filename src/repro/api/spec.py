"""Declarative, validated scenario specifications.

A :class:`ScenarioSpec` is the single description of one
device-under-attack scenario: which defense protects which device
geometry, which workload ages the victim, which attack runs, and the
seed every random stream derives from.  It is a frozen dataclass of
names and numbers only, so a spec can be

* **validated** eagerly (unknown registry names and nonsensical sizes
  fail at construction, not deep inside a worker process),
* **serialized** canonically to JSON (stable key order, trailing
  newline) and rebuilt bit-identically,
* **diffed** field by field and **hashed** (:meth:`ScenarioSpec.spec_hash`)
  so two hosts can agree they are about to run the same experiment, and
* **shipped** -- to a process pool, a fleet, or a future remote backend
  -- and executed anywhere with identical results.

Seeds follow the campaign engine's derivation exactly: every stream is
seeded from ``(seed, scenario_key, purpose)`` through SHA-256
(:func:`repro.campaign.seeding.derive_seed`), so a ``ScenarioSpec``
built from a campaign cell reproduces that cell bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.campaign import registries
from repro.campaign.grid import CellSpec
from repro.campaign.seeding import derive_seed

#: Bump when the spec schema changes; readers refuse newer versions.
#: Version 2 added the optional ``ablation`` field; specs that leave it
#: empty still serialize as version 1, so their hashes (and every
#: pre-ablation artifact) are unchanged.
SPEC_VERSION = 2


class SpecValidationError(ValueError):
    """A spec payload failed schema validation.

    Carries the offending schema ``version`` (for version errors) or
    ``field`` name (for field errors) so callers can report precisely
    what to fix instead of guessing from a bare ``KeyError``.
    """

    def __init__(
        self,
        message: str,
        *,
        field: Optional[str] = None,
        version: Optional[object] = None,
    ) -> None:
        super().__init__(message)
        #: The first offending top-level field name, if the error is
        #: about a field; ``None`` for version errors.
        self.field = field
        #: The offending schema version, if the error is about the
        #: version; ``None`` for field errors.
        self.version = version


def _require_int(name: str, value: object, *, minimum: int) -> None:
    """Reject non-integer (including bool/NaN) or below-minimum values.

    Raises :class:`SpecValidationError` naming the offending field, so
    the scenario fuzzer (and every other caller) can rely on a single
    structured rejection path for geometry knobs.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecValidationError(
            f"{name} must be an integer, got {value!r}", field=name
        )
    if value < minimum:
        raise SpecValidationError(
            f"{name} must be at least {minimum}, got {value!r}", field=name
        )


def _require_finite(name: str, value: object) -> None:
    """Reject non-numeric, NaN, and infinite values for float knobs.

    NaN compares false against every bound, so plain range checks let it
    through silently; finiteness must be checked explicitly.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecValidationError(
            f"{name} must be a finite number, got {value!r}", field=name
        )
    if not math.isfinite(value):
        raise SpecValidationError(
            f"{name} must be finite, got {value!r}", field=name
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified, registry-validated scenario.

    ``defense``, ``attack``, ``workload`` and ``device`` are names in
    the campaign registries (:mod:`repro.campaign.registries`); unknown
    names raise :class:`KeyError` at construction with the full known
    list.  ``env_seed`` / ``workload_seed`` / ``attack_seed`` default to
    ``None``, meaning *derive from* ``seed`` *the SHA-256 way*; explicit
    values override the derivation (campaign cells carry their
    grid-derived seeds explicitly).
    """

    defense: str = "RSSD"
    attack: str = "classic"
    workload: str = "office-edit"
    device: str = "tiny"
    victim_files: int = 24
    file_size_bytes: int = 8192
    user_activity_hours: float = 30.0
    recent_edit_fraction: float = 0.3
    seed: int = 23
    env_seed: Optional[int] = None
    workload_seed: Optional[int] = None
    attack_seed: Optional[int] = None
    #: Defense features *disabled* for this scenario (ablation).  Names
    #: come from :data:`repro.ablation.registry.FEATURES`; the empty
    #: tuple (default) is the full design and keeps the spec on schema
    #: version 1 so pre-ablation hashes are unchanged.  Deliberately
    #: excluded from :attr:`scenario_key`, so every ablation variant of
    #: a scenario shares the same derived rng streams and deltas are
    #: attributable purely to the toggled component.
    ablation: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        registries.validate_names(
            [self.defense], [self.attack], [self.workload], [self.device]
        )
        from repro.ablation.registry import validate_features

        object.__setattr__(self, "ablation", validate_features(self.ablation))
        _require_int("victim_files", self.victim_files, minimum=1)
        _require_int("file_size_bytes", self.file_size_bytes, minimum=1)
        _require_finite("user_activity_hours", self.user_activity_hours)
        _require_finite("recent_edit_fraction", self.recent_edit_fraction)
        if self.user_activity_hours < 0:
            raise SpecValidationError(
                f"user_activity_hours must be non-negative, got "
                f"{self.user_activity_hours!r}",
                field="user_activity_hours",
            )
        if not 0.0 <= self.recent_edit_fraction <= 1.0:
            raise SpecValidationError(
                f"recent_edit_fraction must be within [0, 1], got "
                f"{self.recent_edit_fraction!r}",
                field="recent_edit_fraction",
            )

    # -- identity ----------------------------------------------------------

    @property
    def scenario_key(self) -> str:
        """Stable identifier: defense/attack/workload/device.

        Identical to the campaign engine's cell key, so specs and cells
        name the same scenario the same way.
        """
        return f"{self.defense}/{self.attack}/{self.workload}/{self.device}"

    # -- seed resolution ---------------------------------------------------

    @property
    def resolved_env_seed(self) -> int:
        """The environment seed: explicit override or SHA-256 derivation."""
        if self.env_seed is not None:
            return self.env_seed
        return derive_seed(self.seed, self.scenario_key, "env")

    @property
    def resolved_workload_seed(self) -> int:
        """The workload-rng seed: explicit override or SHA-256 derivation."""
        if self.workload_seed is not None:
            return self.workload_seed
        return derive_seed(self.seed, self.scenario_key, "workload")

    @property
    def resolved_attack_seed(self) -> int:
        """The attack-rng seed: explicit override or SHA-256 derivation."""
        if self.attack_seed is not None:
            return self.attack_seed
        return derive_seed(self.seed, self.scenario_key, "attack")

    def resolve_seeds(self) -> "ScenarioSpec":
        """A copy with every per-stream seed materialized explicitly.

        The resolved form is what should be shipped to a fleet: it is
        self-contained (no derivation step on the receiving side) and
        hashes identically everywhere.
        """
        return replace(
            self,
            env_seed=self.resolved_env_seed,
            workload_seed=self.resolved_workload_seed,
            attack_seed=self.resolved_attack_seed,
        )

    # -- campaign interop --------------------------------------------------

    @classmethod
    def from_cell(cls, cell: CellSpec, campaign_seed: int = 0) -> "ScenarioSpec":
        """Adopt a campaign cell spec, keeping its grid-derived seeds.

        The cell's materialized seeds become explicit overrides, so the
        resulting spec executes bit-identically to the cell regardless
        of ``campaign_seed`` (kept only as provenance).
        """
        return cls(
            defense=cell.defense,
            attack=cell.attack,
            workload=cell.workload,
            device=cell.device_config,
            victim_files=cell.victim_files,
            file_size_bytes=cell.file_size_bytes,
            user_activity_hours=cell.user_activity_hours,
            recent_edit_fraction=cell.recent_edit_fraction,
            seed=campaign_seed,
            env_seed=cell.env_seed,
            workload_seed=cell.workload_seed,
            attack_seed=cell.attack_seed,
        )

    def to_cell(self) -> CellSpec:
        """The campaign-engine view of this spec (seeds resolved).

        Campaign cells are always the full design, so a spec with a
        non-empty ``ablation`` set has no cell form and raises.
        """
        if self.ablation:
            raise ValueError(
                "campaign cells cannot carry an ablation; run this spec "
                "through repro.api.Session or an AblationStudy instead"
            )
        return CellSpec(
            defense=self.defense,
            attack=self.attack,
            workload=self.workload,
            device_config=self.device,
            victim_files=self.victim_files,
            file_size_bytes=self.file_size_bytes,
            user_activity_hours=self.user_activity_hours,
            recent_edit_fraction=self.recent_edit_fraction,
            env_seed=self.resolved_env_seed,
            workload_seed=self.resolved_workload_seed,
            attack_seed=self.resolved_attack_seed,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the spec, seeds resolved, schema-versioned.

        A spec with no ablation serializes exactly as it did before the
        ``ablation`` field existed -- version 1, no ``ablation`` key --
        so its :meth:`spec_hash` is unchanged.  Ablated specs carry the
        field and declare version 2.
        """
        payload = asdict(self.resolve_seeds())
        if self.ablation:
            payload["ablation"] = list(self.ablation)
            payload["version"] = SPEC_VERSION
        else:
            del payload["ablation"]
            payload["version"] = 1
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec, refusing schema versions newer than this reader.

        Malformed payloads raise :class:`SpecValidationError` naming the
        offending schema version or field, never a bare ``KeyError`` or
        ``TypeError``.
        """
        payload = dict(data)
        raw_version = payload.pop("version", 1)
        if not isinstance(raw_version, int) or isinstance(raw_version, bool):
            raise SpecValidationError(
                f"scenario spec version must be an integer, got {raw_version!r}",
                version=raw_version,
            )
        if raw_version > SPEC_VERSION:
            raise SpecValidationError(
                f"scenario spec version {raw_version} is newer than supported "
                f"version {SPEC_VERSION}",
                version=raw_version,
            )
        unknown = sorted(set(payload) - {f for f in cls.__dataclass_fields__})
        if unknown:
            raise SpecValidationError(
                f"unknown scenario spec fields: {unknown}", field=unknown[0]
            )
        ablation = payload.get("ablation", ())
        if not isinstance(ablation, (list, tuple)) or not all(
            isinstance(name, str) for name in ablation
        ):
            raise SpecValidationError(
                f"scenario spec field 'ablation' must be a list of feature "
                f"names, got {ablation!r}",
                field="ablation",
            )
        payload["ablation"] = tuple(ablation)
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self) -> str:
        """Canonical serialization: stable key order, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from its canonical JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON serialization to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Read a spec previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- comparison --------------------------------------------------------

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON form (stable across processes).

        Per-stream seeds are compared in resolved form, so a spec whose
        seeds were derived hashes the same as its explicitly-resolved
        copy; any difference in names, sizes or resolved seeds changes
        the hash.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def diff(self, other: "ScenarioSpec") -> List[str]:
        """Human-readable field-level differences against ``other``."""
        mine, theirs = self.to_dict(), other.to_dict()
        return [
            f"{name}: {theirs.get(name)!r} -> {mine.get(name)!r}"
            for name in sorted(set(mine) | set(theirs))
            if mine.get(name) != theirs.get(name)
        ]
